//! Quickstart: build a multiplex heterogeneous graph, train HybridGNN, and
//! predict relationship-specific links.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybridgnn_repro::datasets::{DatasetKind, EdgeSplit};
use hybridgnn_repro::eval;
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A Taobao-like multiplex graph: users × items under four behaviours
    //    (page-view, item-favoring, purchase, add-to-cart).
    let dataset = DatasetKind::Taobao.generate(0.02, 42);
    let graph = &dataset.graph;
    println!(
        "graph: {} nodes, {} edges, {} node types, {} relations",
        graph.num_nodes(),
        graph.num_edges(),
        graph.schema().num_node_types(),
        graph.schema().num_relations()
    );

    // 2. Hold out edges: 85% train / 5% validation / 10% test, per relation,
    //    with one sampled negative per evaluation positive.
    let mut rng = StdRng::seed_from_u64(7);
    let split = EdgeSplit::default_split(graph, &mut rng);

    // 3. Train HybridGNN. `HybridConfig::default()` uses the paper's
    //    hyper-parameters (d_m = 128, d_e = 8, 5 negatives, depth-2
    //    randomized exploration); the fast profile keeps this example quick.
    let mut config = HybridConfig::fast();
    config.common.epochs = 12;
    config.common.patience = 6;
    let mut model = HybridGnn::new(config);
    let report = model
        .fit(
            &FitData {
                graph: &split.train_graph,
                metapath_shapes: &dataset.metapath_shapes,
                val: &split.val,
            },
            &mut rng,
        )
        .expect("fit must succeed");
    println!(
        "trained {} epochs, final loss {:.4}, best val ROC-AUC {:.4}",
        report.epochs_run, report.final_loss, report.best_val_auc
    );

    // 4. Score held-out edges and measure link-prediction quality.
    let scores: Vec<f32> = split
        .test
        .iter()
        .map(|e| model.score(e.u, e.v, e.relation))
        .collect();
    let labels: Vec<bool> = split.test.iter().map(|e| e.label).collect();
    println!(
        "test ROC-AUC {:.4}, PR-AUC {:.4}",
        eval::roc_auc(&scores, &labels),
        eval::pr_auc(&scores, &labels)
    );

    // 5. Relationship-specific predictions: the same user–item pair can
    //    score very differently under different behaviours — that is the
    //    point of multiplex representations.
    if let Some(edge) = split.test.iter().find(|e| e.label) {
        println!("\npair {} → {} scored per relation:", edge.u, edge.v);
        for r in graph.schema().relations() {
            println!(
                "  {:<14} {:+.4}",
                graph.schema().relation_name(r),
                model.score(edge.u, edge.v, r)
            );
        }
    }
}
