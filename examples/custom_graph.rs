//! Bring your own graph: build a multiplex heterogeneous network with
//! `GraphBuilder`, persist it, reload it, and train on it — the workflow a
//! downstream user with real interaction logs would follow.
//!
//! ```sh
//! cargo run --release --example custom_graph
//! ```

use hybridgnn_repro::datasets::{EdgeSplit, SplitConfig};
use hybridgnn_repro::eval;
use hybridgnn_repro::graph::{persist, GraphBuilder, NodeId, Schema};
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 1. Define the schema: a small social-commerce network.
    let mut schema = Schema::new();
    let person = schema.add_node_type("person");
    let product = schema.add_node_type("product");
    let follows = schema.add_relation("follows");
    let buys = schema.add_relation("buys");
    let reviews = schema.add_relation("reviews");

    // 2. Build the graph: two latent interest groups; follows / buys /
    //    reviews all correlate with group membership.
    let mut rng = StdRng::seed_from_u64(21);
    let mut b = GraphBuilder::new(schema);
    let people: Vec<NodeId> = (0..120).map(|_| b.add_node(person)).collect();
    let products: Vec<NodeId> = (0..60).map(|_| b.add_node(product)).collect();
    let group = |n: NodeId| (n.0 % 2) as usize;

    for (i, &p) in people.iter().enumerate() {
        for _ in 0..4 {
            // Follow someone in your own group (mostly).
            let mut other = people[rng.gen_range(0..people.len())];
            if rng.gen::<f32>() < 0.85 {
                while group(other) != group(p) || other == p {
                    other = people[rng.gen_range(0..people.len())];
                }
            }
            if other != p {
                b.add_edge(p, other, follows);
            }
        }
        for _ in 0..3 {
            let mut item = products[rng.gen_range(0..products.len())];
            if rng.gen::<f32>() < 0.85 {
                while group(item) != group(p) {
                    item = products[rng.gen_range(0..products.len())];
                }
            }
            b.add_edge(p, item, buys);
            if i % 3 == 0 {
                b.add_edge(p, item, reviews); // multiplex: same pair, 2nd relation
            }
        }
    }
    let graph = b.build();
    println!(
        "built graph: {} nodes, {} edges across {} relations",
        graph.num_nodes(),
        graph.num_edges(),
        graph.schema().num_relations()
    );

    // 3. Persist and reload (binary snapshot).
    let path = std::env::temp_dir().join("custom_graph.mhg");
    persist::save(&graph, &path).expect("save snapshot");
    let reloaded = persist::load(&path).expect("load snapshot");
    assert_eq!(reloaded.num_edges(), graph.num_edges());
    println!(
        "snapshot round-trip OK ({} bytes)",
        std::fs::metadata(&path).unwrap().len()
    );

    // 4. Train HybridGNN with custom metapath shapes (P-P-P follower
    //    chains and P-Pr-P co-purchase paths).
    let shapes = vec![
        vec![person, person, person],
        vec![person, product, person],
        vec![product, person, product],
    ];
    let mut rng = StdRng::seed_from_u64(22);
    let split = EdgeSplit::new(&reloaded, SplitConfig::default(), &mut rng);
    let mut config = HybridConfig::fast();
    config.common.epochs = 12;
    config.common.patience = 6;
    let mut model = HybridGnn::new(config);
    model
        .fit(
            &FitData {
                graph: &split.train_graph,
                metapath_shapes: &shapes,
                val: &split.val,
            },
            &mut rng,
        )
        .expect("fit must succeed");

    let scores: Vec<f32> = split
        .test
        .iter()
        .map(|e| model.score(e.u, e.v, e.relation))
        .collect();
    let labels: Vec<bool> = split.test.iter().map(|e| e.label).collect();
    println!(
        "test ROC-AUC on the custom graph: {:.4}",
        eval::roc_auc(&scores, &labels)
    );

    std::fs::remove_file(path).ok();
}
