//! E-commerce cold-relation prediction: purchases are sparse, page-views
//! plentiful. This example shows the paper's core claim in action — the
//! randomized inter-relationship exploration lets HybridGNN predict the
//! *sparse* relation from evidence in the *dense* ones, while the ablated
//! model (`w/o randomized exploration`) cannot.
//!
//! ```sh
//! cargo run --release --example ecommerce_cold_relation
//! ```

use hybridgnn_repro::datasets::{DatasetKind, EdgeSplit, LabeledEdge};
use hybridgnn_repro::eval;
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dataset = DatasetKind::Taobao.generate(0.03, 42);
    let graph = &dataset.graph;
    let schema = graph.schema();
    let purchase = schema.relation_id("purchase").expect("purchase relation");

    println!("edges per relation:");
    for r in schema.relations() {
        println!(
            "  {:<14} {:>6}",
            schema.relation_name(r),
            graph.num_edges_in(r)
        );
    }

    let mut rng = StdRng::seed_from_u64(11);
    let split = EdgeSplit::default_split(graph, &mut rng);
    let purchase_test: Vec<LabeledEdge> = split
        .test
        .iter()
        .filter(|e| e.relation == purchase)
        .copied()
        .collect();
    println!(
        "\npredicting {} held-out purchase edges (+ negatives)",
        purchase_test.iter().filter(|e| e.label).count()
    );

    let mut base = HybridConfig::fast();
    base.common.epochs = 12;
    base.common.patience = 6;

    for (name, config) in [
        ("HybridGNN (full)", base.clone()),
        (
            "HybridGNN w/o randomized exploration",
            base.clone().without_randomized_exploration(),
        ),
    ] {
        let mut rng = StdRng::seed_from_u64(13);
        let mut model = HybridGnn::new(config);
        model
            .fit(
                &FitData {
                    graph: &split.train_graph,
                    metapath_shapes: &dataset.metapath_shapes,
                    val: &split.val,
                },
                &mut rng,
            )
            .expect("fit must succeed");
        let scores: Vec<f32> = purchase_test
            .iter()
            .map(|e| model.score(e.u, e.v, e.relation))
            .collect();
        let labels: Vec<bool> = purchase_test.iter().map(|e| e.label).collect();
        println!(
            "  {:<40} purchase ROC-AUC {:.4}",
            name,
            eval::roc_auc(&scores, &labels)
        );
    }

    println!(
        "\nThe full model sees page-view/cart/favoring evidence through the \
         two-phase exploration walks; the ablation is confined to the sparse \
         purchase subgraph."
    );
}
