//! Short-video recommendation (the paper's motivating Kuaishou scenario):
//! recommend videos to users under the *like* relationship, and inspect
//! which aggregation flows the hierarchical attention actually uses.
//!
//! ```sh
//! cargo run --release --example short_video_recommendation
//! ```

use hybridgnn_repro::datasets::{DatasetKind, EdgeSplit};
use hybridgnn_repro::graph::NodeId;
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Users, videos and authors under click / like / comment / download.
    let dataset = DatasetKind::Kuaishou.generate(0.02, 42);
    let graph = &dataset.graph;
    let schema = graph.schema();
    let like = schema.relation_id("like").expect("like relation");
    let video_ty = schema.node_type_id("video").expect("video type");
    let user_ty = schema.node_type_id("user").expect("user type");

    let mut rng = StdRng::seed_from_u64(9);
    let split = EdgeSplit::default_split(graph, &mut rng);

    let mut config = HybridConfig::fast();
    config.common.epochs = 12;
    config.common.patience = 6;
    let mut model = HybridGnn::new(config);
    model
        .fit(
            &FitData {
                graph: &split.train_graph,
                metapath_shapes: &dataset.metapath_shapes,
                val: &split.val,
            },
            &mut rng,
        )
        .expect("fit must succeed");

    // Pick an active user and rank every video they haven't liked yet.
    let user = *graph
        .nodes_of_type(user_ty)
        .iter()
        .max_by_key(|&&u| graph.degree(u, like))
        .expect("at least one user");
    println!(
        "recommending for {user} ({} liked videos in the full graph)",
        graph.degree(user, like)
    );

    let mut candidates: Vec<(NodeId, f32)> = graph
        .nodes_of_type(video_ty)
        .iter()
        .filter(|&&v| !split.train_graph.has_edge(user, v, like))
        .map(|&v| (v, model.score(user, v, like)))
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("top-10 like recommendations:");
    for (rank, (video, score)) in candidates.iter().take(10).enumerate() {
        let held_out = graph.has_edge(user, *video, like);
        println!(
            "  {:>2}. {video}  score {score:+.4}{}",
            rank + 1,
            if held_out {
                "  (held-out true like!)"
            } else {
                ""
            }
        );
    }

    // Which flows does the metapath-level attention trust, per relation?
    // (The data behind the paper's Fig. 4.)
    println!("\nmetapath-level attention profile:");
    for (ri, rows) in model.attention_profile().iter().enumerate() {
        let rel = schema.relation_name(hybridgnn_repro::graph::RelationId(ri as u16));
        let total: f64 = rows.iter().map(|(_, m)| m).sum();
        print!("  {rel:<10}");
        for (label, mass) in rows {
            print!(" {label}={:.2}", mass / total.max(1e-12));
        }
        println!();
    }
}
