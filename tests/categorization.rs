//! Tests for the paper's §III-F categorization of heterogeneous networks:
//! which HybridGNN modules are meaningful on which graph class.
//!
//! * `G₁` (`|O| = 1, |R| ≥ 2`, e.g. Amazon/YouTube): metapaths degrade
//!   toward random walks; the relationship machinery carries the signal.
//! * `G₂` (`|O| ≥ 2, |R| = 1`, e.g. IMDb): relationship-level attention
//!   degenerates (a single relation); metapath diversity carries the
//!   signal.
//! * `G₃` (`|O| ≥ 2, |R| ≥ 2`, e.g. Taobao/Kuaishou): every module is
//!   active.

use hybridgnn_repro::datasets::{DatasetKind, EdgeSplit};
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{evaluate, FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit(kind: DatasetKind, cfg: HybridConfig, scale: f64, seed: u64) -> (HybridGnn, f64) {
    let dataset = kind.generate(scale, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    let mut model = HybridGnn::new(cfg);
    model
        .fit(
            &FitData {
                graph: &split.train_graph,
                metapath_shapes: &dataset.metapath_shapes,
                val: &split.val,
            },
            &mut rng,
        )
        .expect("fit must succeed");
    let auc = evaluate(&model, &split.test).roc_auc;
    (model, auc)
}

fn quick() -> HybridConfig {
    let mut cfg = HybridConfig::fast();
    cfg.common.epochs = 3;
    cfg
}

/// G₁: with one node type, every flow's metapath collapses to the same
/// type sequence — the flow set per relation is {I-I-I, random}.
#[test]
fn g1_single_node_type_flows() {
    let (model, auc) = fit(DatasetKind::Amazon, quick(), 0.008, 50);
    assert!(auc > 0.5, "auc {auc}");
    for rel in model.attention_profile() {
        let labels: Vec<&str> = rel.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"random"));
        // The only metapath label possible is the I-I-I instantiation.
        assert!(
            labels
                .iter()
                .all(|&l| l == "random" || l == "item-item-item"),
            "{labels:?}"
        );
    }
}

/// G₂: one relation ⇒ the relationship-level attention *mechanism* is a
/// 1×1 softmax whose weight is identically 1 — it cannot re-weight
/// anything (its value projection still applies, so the ablation is not a
/// no-op; see §III-F). Both variants must still train.
#[test]
fn g2_single_relation_relationship_attention_degenerates() {
    let (model_full, auc_full) = fit(DatasetKind::Imdb, quick(), 0.015, 51);
    let (_, auc_ablated) = fit(
        DatasetKind::Imdb,
        quick().without_relationship_attention(),
        0.015,
        51,
    );
    // One relation → one attention profile entry, and both variants learn.
    assert_eq!(model_full.attention_profile().len(), 1);
    assert!(auc_full > 0.55, "full model auc {auc_full}");
    assert!(auc_ablated > 0.55, "ablated model auc {auc_ablated}");
}

/// G₂: IMDb's six metapath shapes all materialise as flows somewhere.
#[test]
fn g2_metapath_diversity_present() {
    let (model, _) = fit(DatasetKind::Imdb, quick(), 0.015, 52);
    let labels: Vec<String> = model.attention_profile()[0]
        .iter()
        .map(|(l, _)| l.clone())
        .collect();
    // At least three distinct metapath flows beyond the random flow (all
    // six need every intermediate hop present, which tiny graphs may not
    // sample).
    let metapath_count = labels.iter().filter(|l| l.as_str() != "random").count();
    assert!(metapath_count >= 3, "{labels:?}");
}

/// G₃: all modules active — the attention profile covers every relation
/// and contains both metapath and random flows.
#[test]
fn g3_full_machinery_active() {
    let (model, auc) = fit(DatasetKind::Kuaishou, quick(), 0.008, 53);
    assert!(auc > 0.5, "auc {auc}");
    let profile = model.attention_profile();
    assert_eq!(profile.len(), 4);
    for rel in profile {
        let has_random = rel.iter().any(|(l, _)| l == "random");
        let has_metapath = rel.iter().any(|(l, _)| l != "random" && l != "self");
        assert!(has_random && has_metapath, "{rel:?}");
    }
}
