//! Determinism regression tests for the `mhg-train` pipeline.
//!
//! Two knobs must be purely throughput knobs, never semantics knobs:
//!
//! * the background sampler (double-buffered prefetch thread) — with the
//!   same seed, training with background sampling on and off must produce
//!   **byte-identical** embeddings. The pipeline guarantees this by
//!   deriving each epoch's sampler RNG from a per-run base seed
//!   (`epoch_seed`), independent of when the sampling actually executes;
//! * the `mhg-par` worker count (`MHG_THREADS`) — kernels partition work
//!   into fixed ranges and walk generation uses fixed shards with one
//!   derived sub-RNG each, so 1 thread and 4 threads must also produce
//!   byte-identical embeddings.
//!
//! Each test also pins a golden FNV-1a hash of the final embedding bits so
//! that *any* unintended change to the sampling order, seeding scheme or
//! numeric path fails loudly. If a PR changes the training pipeline's RNG
//! contract on purpose, re-pin the constants from the failure message.

use hybridgnn_repro::datasets::{DatasetKind, EdgeSplit};
use hybridgnn_repro::graph::MultiplexGraph;
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{CommonConfig, DeepWalk, EmbeddingScores, FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over a stream of `u32` words (little-endian byte order).
fn fnv1a(words: impl Iterator<Item = u32>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Hashes every embedding bit of `scores` over all nodes × relations.
fn hash_embeddings(scores: &EmbeddingScores, graph: &MultiplexGraph) -> u64 {
    let mut bits: Vec<u32> = Vec::new();
    for v in graph.nodes() {
        for r in graph.schema().relations() {
            bits.extend(scores.embedding(v, r).iter().map(|x| x.to_bits()));
        }
    }
    fnv1a(bits.into_iter())
}

fn deepwalk_hash(background: bool) -> u64 {
    let dataset = DatasetKind::Amazon.generate(0.006, 7);
    let mut rng = StdRng::seed_from_u64(7);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    let mut cfg = CommonConfig::fast();
    cfg.epochs = 3;
    cfg.dim = 16;
    cfg.background_sampling = background;
    let mut model = DeepWalk::new(cfg);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    let report = model.fit(&data, &mut rng).expect("fit must succeed");
    assert!(report.epochs_run > 0, "DeepWalk ran zero epochs");
    hash_embeddings(model.embedding_scores(), &split.train_graph)
}

fn hybridgnn_hash(background: bool) -> u64 {
    let dataset = DatasetKind::Amazon.generate(0.004, 9);
    let mut rng = StdRng::seed_from_u64(9);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    let mut cfg = HybridConfig {
        common: CommonConfig::fast(),
        ..HybridConfig::default()
    };
    cfg.common.epochs = 2;
    cfg.common.dim = 16;
    cfg.common.background_sampling = background;
    let mut model = HybridGnn::new(cfg);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    let report = model.fit(&data, &mut rng).expect("fit must succeed");
    assert!(report.epochs_run > 0, "HybridGNN ran zero epochs");
    let graph = &split.train_graph;
    let mut bits: Vec<u32> = Vec::new();
    for v in graph.nodes() {
        for r in graph.schema().relations() {
            bits.extend(model.embedding(v, r).iter().map(|x| x.to_bits()));
        }
    }
    fnv1a(bits.into_iter())
}

/// Pinned from the current pipeline; re-pin only on an intentional change
/// to the sampling/seeding contract. (Last re-pin: walk generation moved to
/// fixed shards with per-shard derived RNGs for the `mhg-par` pool.)
const DEEPWALK_GOLDEN: u64 = 0x3efb_bf03_adea_3a51;
const HYBRIDGNN_GOLDEN: u64 = 0x5ba1_2d5b_9c5c_91de;

/// FNV-1a over raw bytes (for hashing a rendered `metrics.jsonl`).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The [`hybridgnn_hash`] recipe instrumented with a deterministic fake
/// clock (`Obs::deterministic`, 1ms per reading); returns the rendered
/// `metrics.jsonl` text instead of the embedding hash.
fn hybridgnn_metrics_jsonl(background: bool) -> String {
    let dataset = DatasetKind::Amazon.generate(0.004, 9);
    let mut rng = StdRng::seed_from_u64(9);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    let mut cfg = HybridConfig {
        common: CommonConfig::fast(),
        ..HybridConfig::default()
    };
    cfg.common.epochs = 2;
    cfg.common.dim = 16;
    cfg.common.background_sampling = background;
    let obs = hybridgnn_repro::obs::Obs::deterministic(1_000_000);
    cfg.common.obs = obs.clone();
    let mut model = HybridGnn::new(cfg);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    let report = model.fit(&data, &mut rng).expect("fit must succeed");
    assert!(report.epochs_run > 0, "HybridGNN ran zero epochs");
    obs.render_jsonl()
}

/// Pinned from the 2-epoch HybridGNN run above under the fake clock; the
/// rendered metrics.jsonl contains only durations (never absolute
/// timestamps) and is recorded from deterministic coordinating threads, so
/// it must be byte-identical across reruns, `MHG_THREADS` values, and the
/// background-sampling toggle. Re-pin only when the instrumentation schema
/// changes on purpose.
const METRICS_GOLDEN: u64 = 0xc3ca_b3bd_c0fc_f6dc;

/// A fresh, empty checkpoint directory unique to `tag` (and this process).
fn fresh_ckpt_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mhg_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// DeepWalk trained as two processes would run it: fit 1 of 3 epochs with
/// checkpointing on, drop everything, then a *fresh* model — seeded with an
/// unrelated RNG — resumes from the checkpoint directory and finishes the
/// 3-epoch budget. Must hash identically to the uninterrupted run.
fn deepwalk_split_hash(background: bool, tag: &str) -> u64 {
    let dir = fresh_ckpt_dir(tag);
    let configure = |epochs: usize, resume: bool| {
        let mut cfg = CommonConfig::fast();
        cfg.epochs = epochs;
        cfg.dim = 16;
        cfg.background_sampling = background;
        cfg.checkpoint_every = 1;
        cfg.checkpoint_dir = Some(dir.clone());
        cfg.resume = resume;
        cfg
    };
    // Phase 1: the "crashed" run — 1 epoch, checkpointed.
    {
        let dataset = DatasetKind::Amazon.generate(0.006, 7);
        let mut rng = StdRng::seed_from_u64(7);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut model = DeepWalk::new(configure(1, false));
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model
            .fit(&data, &mut rng)
            .expect("phase-1 fit must succeed");
    }
    // Phase 2: a fresh model resumes; its own RNG seed (999) must be
    // irrelevant because the checkpoint restores the full loop state.
    let dataset = DatasetKind::Amazon.generate(0.006, 7);
    let mut split_rng = StdRng::seed_from_u64(7);
    let split = EdgeSplit::default_split(&dataset.graph, &mut split_rng);
    let mut model = DeepWalk::new(configure(3, true));
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    let mut rng = StdRng::seed_from_u64(999);
    let report = model
        .fit(&data, &mut rng)
        .expect("resumed fit must succeed");
    assert_eq!(
        report.recovery.resumed_from,
        Some(1),
        "resume must pick up after the checkpointed epoch"
    );
    let hash = hash_embeddings(model.embedding_scores(), &split.train_graph);
    let _ = std::fs::remove_dir_all(&dir);
    hash
}

/// HybridGNN variant of [`deepwalk_split_hash`]: 1 of 2 epochs, then resume.
fn hybridgnn_split_hash(background: bool, tag: &str) -> u64 {
    let dir = fresh_ckpt_dir(tag);
    let configure = |epochs: usize, resume: bool| {
        let mut cfg = HybridConfig {
            common: CommonConfig::fast(),
            ..HybridConfig::default()
        };
        cfg.common.epochs = epochs;
        cfg.common.dim = 16;
        cfg.common.background_sampling = background;
        cfg.common.checkpoint_every = 1;
        cfg.common.checkpoint_dir = Some(dir.clone());
        cfg.common.resume = resume;
        cfg
    };
    {
        let dataset = DatasetKind::Amazon.generate(0.004, 9);
        let mut rng = StdRng::seed_from_u64(9);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut model = HybridGnn::new(configure(1, false));
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model
            .fit(&data, &mut rng)
            .expect("phase-1 fit must succeed");
    }
    let dataset = DatasetKind::Amazon.generate(0.004, 9);
    let mut split_rng = StdRng::seed_from_u64(9);
    let split = EdgeSplit::default_split(&dataset.graph, &mut split_rng);
    let mut model = HybridGnn::new(configure(2, true));
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    let mut rng = StdRng::seed_from_u64(999);
    let report = model
        .fit(&data, &mut rng)
        .expect("resumed fit must succeed");
    assert_eq!(report.recovery.resumed_from, Some(1));
    let graph = &split.train_graph;
    let mut bits: Vec<u32> = Vec::new();
    for v in graph.nodes() {
        for r in graph.schema().relations() {
            bits.extend(model.embedding(v, r).iter().map(|x| x.to_bits()));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    fnv1a(bits.into_iter())
}

#[test]
fn hybridgnn_metrics_jsonl_is_byte_identical_across_threads_and_modes() {
    // Fault injection rewrites the event stream (nan_rollback / retry
    // events) by design; the golden only holds on the clean path.
    if hybridgnn_repro::faults::is_active() {
        return;
    }
    let base = hybridgnn_repro::par::with_threads(1, || hybridgnn_metrics_jsonl(false));
    assert!(
        base.lines().any(|l| l.contains("\"event\":\"epoch\"")),
        "metrics.jsonl must contain per-epoch events:\n{base}"
    );
    assert!(
        !base.contains("\"loss\":null"),
        "non-finite loss leaked into the golden run:\n{base}"
    );
    for (threads, background) in [(1, true), (4, false), (4, true)] {
        let other =
            hybridgnn_repro::par::with_threads(threads, || hybridgnn_metrics_jsonl(background));
        assert_eq!(
            base, other,
            "metrics.jsonl changed under threads={threads}, background={background}"
        );
    }
    let rerun = hybridgnn_repro::par::with_threads(1, || hybridgnn_metrics_jsonl(false));
    assert_eq!(base, rerun, "metrics.jsonl not reproducible across reruns");
    assert_eq!(
        fnv1a_bytes(base.as_bytes()),
        METRICS_GOLDEN,
        "metrics.jsonl drifted from the golden hash: got {:#018x}\n{base}",
        fnv1a_bytes(base.as_bytes())
    );
}

#[test]
fn deepwalk_is_bit_identical_with_and_without_background_sampling() {
    let inline = deepwalk_hash(false);
    let background = deepwalk_hash(true);
    assert_eq!(
        inline, background,
        "background sampling changed DeepWalk's result: inline {inline:#018x} vs background {background:#018x}"
    );
    assert_eq!(
        inline, DEEPWALK_GOLDEN,
        "DeepWalk embeddings drifted from the golden hash: got {inline:#018x}"
    );
}

#[test]
fn hybridgnn_is_bit_identical_with_and_without_background_sampling() {
    let inline = hybridgnn_hash(false);
    let background = hybridgnn_hash(true);
    assert_eq!(
        inline, background,
        "background sampling changed HybridGNN's result: inline {inline:#018x} vs background {background:#018x}"
    );
    assert_eq!(
        inline, HYBRIDGNN_GOLDEN,
        "HybridGNN embeddings drifted from the golden hash: got {inline:#018x}"
    );
}

#[test]
fn deepwalk_resume_is_bit_identical_to_uninterrupted_run() {
    for background in [false, true] {
        let split_run = deepwalk_split_hash(background, &format!("dw_bg{background}"));
        assert_eq!(
            split_run, DEEPWALK_GOLDEN,
            "checkpoint/resume changed DeepWalk's result (background={background}): \
             got {split_run:#018x}"
        );
    }
}

#[test]
fn hybridgnn_resume_is_bit_identical_to_uninterrupted_run() {
    for background in [false, true] {
        let split_run = hybridgnn_split_hash(background, &format!("hy_bg{background}"));
        assert_eq!(
            split_run, HYBRIDGNN_GOLDEN,
            "checkpoint/resume changed HybridGNN's result (background={background}): \
             got {split_run:#018x}"
        );
    }
}

#[test]
fn resume_is_bit_identical_across_thread_counts() {
    let dw_one = hybridgnn_repro::par::with_threads(1, || deepwalk_split_hash(true, "dw_t1"));
    let dw_four = hybridgnn_repro::par::with_threads(4, || deepwalk_split_hash(true, "dw_t4"));
    assert_eq!(dw_one, DEEPWALK_GOLDEN, "1-thread resume drifted");
    assert_eq!(dw_four, DEEPWALK_GOLDEN, "4-thread resume drifted");
    let hy_one = hybridgnn_repro::par::with_threads(1, || hybridgnn_split_hash(true, "hy_t1"));
    let hy_four = hybridgnn_repro::par::with_threads(4, || hybridgnn_split_hash(true, "hy_t4"));
    assert_eq!(hy_one, HYBRIDGNN_GOLDEN, "1-thread resume drifted");
    assert_eq!(hy_four, HYBRIDGNN_GOLDEN, "4-thread resume drifted");
}

#[test]
fn deepwalk_is_bit_identical_across_thread_counts() {
    let one = hybridgnn_repro::par::with_threads(1, || deepwalk_hash(true));
    let four = hybridgnn_repro::par::with_threads(4, || deepwalk_hash(true));
    assert_eq!(
        one, four,
        "thread count changed DeepWalk's result: 1 thread {one:#018x} vs 4 threads {four:#018x}"
    );
    assert_eq!(
        one, DEEPWALK_GOLDEN,
        "DeepWalk embeddings drifted from the golden hash under the thread matrix: got {one:#018x}"
    );
}

#[test]
fn hybridgnn_is_bit_identical_across_thread_counts() {
    let one = hybridgnn_repro::par::with_threads(1, || hybridgnn_hash(true));
    let four = hybridgnn_repro::par::with_threads(4, || hybridgnn_hash(true));
    assert_eq!(
        one, four,
        "thread count changed HybridGNN's result: 1 thread {one:#018x} vs 4 threads {four:#018x}"
    );
    assert_eq!(
        one, HYBRIDGNN_GOLDEN,
        "HybridGNN embeddings drifted from the golden hash under the thread matrix: got {one:#018x}"
    );
}
