//! Cross-crate integration tests: miniature versions of the paper's
//! experiments running through the full public API.

use hybridgnn_repro::datasets::{DatasetKind, EdgeSplit};
use hybridgnn_repro::eval;
use hybridgnn_repro::graph::{persist, GraphStats, RelationId};
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{
    evaluate, ranking_queries, CommonConfig, DeepWalk, FitData, Gatne, LinkPredictor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_fit<M: LinkPredictor>(
    mut model: M,
    kind: DatasetKind,
    scale: f64,
    seed: u64,
) -> (M, hybridgnn_repro::datasets::Dataset, EdgeSplit) {
    let dataset = kind.generate(scale, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    model
        .fit(
            &FitData {
                graph: &split.train_graph,
                metapath_shapes: &dataset.metapath_shapes,
                val: &split.val,
            },
            &mut rng,
        )
        .expect("fit must succeed");
    (model, dataset, split)
}

/// Miniature Table II: all five generators match the paper's schema shape.
#[test]
fn all_datasets_match_paper_schema() {
    let expectations = [
        (DatasetKind::Amazon, 1, 2),
        (DatasetKind::YouTube, 1, 5),
        (DatasetKind::Imdb, 3, 1),
        (DatasetKind::Taobao, 2, 4),
        (DatasetKind::Kuaishou, 3, 4),
    ];
    for (kind, types, relations) in expectations {
        let d = kind.generate(0.01, 5);
        let stats = GraphStats::compute(&d.graph);
        assert_eq!(stats.num_node_types, types, "{kind}");
        assert_eq!(stats.num_relations, relations, "{kind}");
        assert!(stats.num_edges > 0, "{kind}");
    }
}

/// Miniature Tables IV/V: a baseline and HybridGNN both train through the
/// shared pipeline and produce sane metrics.
#[test]
fn link_prediction_pipeline_end_to_end() {
    let cfg = CommonConfig::fast();
    let (model, dataset, split) = tiny_fit(DeepWalk::new(cfg), DatasetKind::Amazon, 0.008, 1);
    let m = evaluate(&model, &split.test);
    assert!(m.roc_auc > 0.5, "DeepWalk auc {}", m.roc_auc);

    let mut qrng = StdRng::seed_from_u64(2);
    let queries = ranking_queries(&model, &dataset.graph, &split.test, 30, 20, &mut qrng);
    assert!(!queries.is_empty());
    let ranked: Vec<_> = queries.into_iter().map(|q| q.query).collect();
    let topk = eval::topk_metrics(&ranked, 10);
    assert!(topk.precision >= 0.0 && topk.hit_ratio <= 1.0);
}

/// Miniature Table VII: the relation-subset induction used by the uplift
/// experiment keeps ids stable for the kept prefix.
#[test]
fn relation_induction_for_uplift() {
    let d = DatasetKind::YouTube.generate(0.05, 3);
    let mut rng = StdRng::seed_from_u64(4);
    let split = EdgeSplit::default_split(&d.graph, &mut rng);
    for keep in 1..=5usize {
        let rels: Vec<RelationId> = (0..keep as u16).map(RelationId).collect();
        let sub = split.train_graph.induce_relations(&rels);
        assert_eq!(sub.schema().num_relations(), keep);
        assert_eq!(sub.num_nodes(), d.graph.num_nodes());
        // Relation 0 is preserved under every prefix.
        assert_eq!(
            sub.num_edges_in(RelationId(0)),
            split.train_graph.num_edges_in(RelationId(0))
        );
    }
}

/// Miniature Table VIII: every ablation variant trains through the public
/// API and scores test edges.
#[test]
fn ablation_variants_end_to_end() {
    let variants = [
        HybridConfig::fast(),
        HybridConfig::fast().without_metapath_attention(),
        HybridConfig::fast().without_relationship_attention(),
        HybridConfig::fast().without_randomized_exploration(),
        HybridConfig::fast().without_hybrid_flows(),
    ];
    for (i, mut cfg) in variants.into_iter().enumerate() {
        cfg.common.epochs = 2;
        let (model, _, split) = tiny_fit(
            HybridGnn::new(cfg),
            DatasetKind::Taobao,
            0.005,
            10 + i as u64,
        );
        let m = evaluate(&model, &split.test);
        assert!(m.roc_auc.is_finite(), "variant {i}");
    }
}

/// Miniature Fig. 4: attention profiles come out of the full pipeline.
#[test]
fn attention_profile_via_public_api() {
    let mut cfg = HybridConfig::fast();
    cfg.common.epochs = 2;
    let (model, dataset, _) = tiny_fit(HybridGnn::new(cfg), DatasetKind::Kuaishou, 0.006, 20);
    let profile = model.attention_profile();
    assert_eq!(
        profile.len(),
        dataset.graph.schema().num_relations(),
        "one profile per relation"
    );
}

/// GATNE and HybridGNN share evaluation machinery (Table IX pairing).
#[test]
fn gatne_and_hybrid_comparable() {
    let (gatne, _, split) = tiny_fit(
        Gatne::new(CommonConfig::fast()),
        DatasetKind::Imdb,
        0.01,
        30,
    );
    let mut cfg = HybridConfig::fast();
    cfg.common.epochs = 3;
    let (hybrid, _, split2) = tiny_fit(HybridGnn::new(cfg), DatasetKind::Imdb, 0.01, 30);
    let a = evaluate(&gatne, &split.test).roc_auc;
    let b = evaluate(&hybrid, &split2.test).roc_auc;
    assert!(a.is_finite() && b.is_finite());
}

/// Graph persistence survives a full dataset round-trip.
#[test]
fn dataset_snapshot_roundtrip() {
    let d = DatasetKind::Taobao.generate(0.01, 40);
    let bytes = persist::encode(&d.graph);
    let restored = persist::decode(&bytes).expect("decode");
    assert_eq!(restored.num_edges(), d.graph.num_edges());
    let s1 = GraphStats::compute(&d.graph);
    let s2 = GraphStats::compute(&restored);
    assert_eq!(s1, s2);
}

/// The t-test helper separates clearly different metric samples — the
/// machinery behind the paper's p < 0.01 claims.
#[test]
fn significance_testing_pipeline() {
    let better = [0.93, 0.94, 0.92, 0.95, 0.93];
    let worse = [0.88, 0.89, 0.87, 0.88, 0.90];
    let t = eval::welch_t_test(&better, &worse).expect("t-test");
    assert!(t.p_two_tailed < 0.01, "p = {}", t.p_two_tailed);
    assert!(t.t > 0.0);
}
