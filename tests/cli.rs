//! End-to-end tests for `hybridgnn-cli`: generate → stats → train →
//! recommend over a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_hybridgnn-cli"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hybridgnn_cli_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn full_workflow() {
    let graph_path = temp_path("workflow.mhg");
    let model_path = temp_path("workflow.emb");

    // generate
    let out = cli()
        .args([
            "generate",
            "--dataset",
            "taobao",
            "--scale",
            "0.005",
            "--seed",
            "3",
            "--out",
        ])
        .arg(&graph_path)
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(graph_path.exists());

    // stats
    let out = cli()
        .args(["stats", "--graph"])
        .arg(&graph_path)
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("|R|=4"), "{text}");
    assert!(text.contains("page-view"), "{text}");

    // train (tiny budget)
    let out = cli()
        .args(["train", "--graph"])
        .arg(&graph_path)
        .args(["--epochs", "2", "--dim", "16", "--out"])
        .arg(&model_path)
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("ROC-AUC"), "{text}");
    assert!(model_path.exists());

    // recommend
    let out = cli()
        .args(["recommend", "--graph"])
        .arg(&graph_path)
        .args(["--model"])
        .arg(&model_path)
        .args(["--node", "0", "--relation", "page-view", "--k", "3"])
        .output()
        .expect("run recommend");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("top-3"), "{text}");

    std::fs::remove_file(graph_path).ok();
    std::fs::remove_file(model_path).ok();
}

#[test]
fn helpful_errors() {
    // Unknown command.
    let out = cli().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing flags.
    let out = cli().arg("train").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--graph"));

    // Unknown dataset.
    let out = cli()
        .args(["generate", "--dataset", "nope", "--out", "/tmp/x.mhg"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));

    // Unknown relation on a real graph.
    let graph_path = temp_path("errors.mhg");
    let out = cli()
        .args([
            "generate",
            "--dataset",
            "amazon",
            "--scale",
            "0.005",
            "--out",
        ])
        .arg(&graph_path)
        .output()
        .expect("run");
    assert!(out.status.success());
    let out = cli()
        .args(["recommend", "--graph"])
        .arg(&graph_path)
        .args([
            "--model",
            "/nonexistent.emb",
            "--node",
            "0",
            "--relation",
            "buy",
        ])
        .output()
        .expect("run");
    assert!(!out.status.success());
    std::fs::remove_file(graph_path).ok();
}
