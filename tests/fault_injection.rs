//! End-to-end fault-injection suite: every model in the zoo must survive a
//! combined fault plan (background-sampler panic + NaN epoch loss) and still
//! produce a valid training report, and the recovery machinery must keep
//! faulted runs bit-identical to clean runs.
//!
//! All tests hold [`hybridgnn_repro::faults::test_guard`] because the fault
//! plan and its occurrence counters are process-global.

use hybridgnn_repro::datasets::{DatasetKind, EdgeSplit};
use hybridgnn_repro::faults::{self, FaultPlan, FaultSite};
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{
    CommonConfig, DeepWalk, FitData, Gatne, Gcn, GraphSage, Han, Line, LinkPredictor, Magnn,
    Node2Vec, RGcn, TrainError, TrainReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tiny shared training config: 2 epochs, dim 8, background sampling on so
/// the sampler-panic site is actually exercised.
fn tiny_common() -> CommonConfig {
    let mut cfg = CommonConfig::fast();
    cfg.epochs = 2;
    cfg.dim = 8;
    cfg.background_sampling = true;
    cfg
}

/// The full ten-model zoo under the tiny config, in paper order.
fn tiny_zoo() -> Vec<Box<dyn LinkPredictor>> {
    let c = tiny_common();
    vec![
        Box::new(DeepWalk::new(c.clone())),
        Box::new(Node2Vec::new(c.clone())),
        Box::new(Line::new(c.clone())),
        Box::new(Gcn::new(c.clone())),
        Box::new(GraphSage::new(c.clone())),
        Box::new(Han::new(c.clone())),
        Box::new(Magnn::new(c.clone())),
        Box::new(RGcn::new(c.clone())),
        Box::new(Gatne::new(c.clone())),
        Box::new(HybridGnn::new(HybridConfig {
            common: c,
            ..HybridConfig::default()
        })),
    ]
}

/// Fits `model` on a small Amazon-style graph and returns its report.
fn fit_tiny(model: &mut dyn LinkPredictor, seed: u64) -> Result<TrainReport, TrainError> {
    let dataset = DatasetKind::Amazon.generate(0.004, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    model.fit(&data, &mut rng)
}

#[test]
fn every_model_survives_sampler_panic_and_nan_loss() {
    let _guard = faults::test_guard();
    for model in tiny_zoo().iter_mut() {
        faults::install(
            FaultPlan::new()
                .inject(FaultSite::SamplerPanic, 1)
                .inject(FaultSite::NanLoss, 1),
        );
        let report = fit_tiny(model.as_mut(), 5)
            .unwrap_or_else(|e| panic!("{} died under the fault plan: {e}", model.name()));
        let fired = faults::fired();
        faults::clear();
        assert!(
            report.epochs_run > 0,
            "{} ran zero epochs under faults",
            model.name()
        );
        assert!(
            fired.contains(&(FaultSite::SamplerPanic, 1)),
            "{}: sampler panic never fired (site not exercised)",
            model.name()
        );
        assert!(
            fired.contains(&(FaultSite::NanLoss, 1)),
            "{}: NaN loss never fired (site not exercised)",
            model.name()
        );
        assert!(
            report.recovery.sampler_fallbacks >= 1,
            "{}: sampler panic fired but no inline fallback was recorded",
            model.name()
        );
        assert!(
            report.recovery.nan_rollbacks >= 1,
            "{}: NaN loss fired but no rollback was recorded",
            model.name()
        );
    }
}

/// A faulted run must end in exactly the same place as a clean run: the
/// inline fallback replays the same epoch and the NaN rollback restores the
/// exact pre-epoch state before the deterministic re-run.
#[test]
fn faulted_run_is_bit_identical_to_clean_run() {
    let _guard = faults::test_guard();
    let embeddings = |faulted: bool| {
        if faulted {
            faults::install(
                FaultPlan::new()
                    .inject(FaultSite::SamplerPanic, 1)
                    .inject(FaultSite::NanLoss, 2),
            );
        } else {
            faults::clear();
        }
        let mut model = DeepWalk::new(tiny_common());
        fit_tiny(&mut model, 11).expect("fit must succeed");
        faults::clear();
        let dataset = DatasetKind::Amazon.generate(0.004, 11);
        let mut rng = StdRng::seed_from_u64(11);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let graph = &split.train_graph;
        let mut bits: Vec<u32> = Vec::new();
        for v in graph.nodes() {
            for r in graph.schema().relations() {
                bits.extend(
                    model
                        .embedding_scores()
                        .embedding(v, r)
                        .iter()
                        .map(|x| x.to_bits()),
                );
            }
        }
        bits
    };
    let clean = embeddings(false);
    let faulted = embeddings(true);
    assert_eq!(
        clean, faulted,
        "fault recovery changed the final embeddings bit-for-bit"
    );
}

/// An injected write failure during checkpointing is absorbed by the bounded
/// retry; the run completes and the directory still resumes cleanly.
#[test]
fn checkpoint_write_fault_is_retried_and_training_completes() {
    let _guard = faults::test_guard();
    let dir = std::env::temp_dir().join(format!("mhg_fault_iowrite_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    faults::install(FaultPlan::new().inject(FaultSite::IoWrite, 1));
    let mut cfg = tiny_common();
    cfg.checkpoint_every = 1;
    cfg.checkpoint_dir = Some(dir.clone());
    let mut model = DeepWalk::new(cfg.clone());
    let report = fit_tiny(&mut model, 13).expect("write fault must be retried, not fatal");
    assert!(faults::fired().contains(&(FaultSite::IoWrite, 1)));
    faults::clear();
    assert!(report.epochs_run > 0);
    // The surviving checkpoints must still be loadable: a resumed run over
    // the same directory restores instead of restarting.
    cfg.resume = true;
    let mut resumed = DeepWalk::new(cfg);
    let resumed_report = fit_tiny(&mut resumed, 13).expect("resume after write fault");
    assert!(resumed_report.recovery.resumed_from.is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected read failure while restoring surfaces as a typed checkpoint
/// error — never a panic.
#[test]
fn checkpoint_read_fault_on_resume_is_a_typed_error() {
    let _guard = faults::test_guard();
    let dir = std::env::temp_dir().join(format!("mhg_fault_ioread_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = tiny_common();
    cfg.checkpoint_every = 1;
    cfg.checkpoint_dir = Some(dir.clone());
    let mut model = DeepWalk::new(cfg.clone());
    fit_tiny(&mut model, 17).expect("seed run must succeed");
    faults::install(FaultPlan::new().inject(FaultSite::IoRead, 1));
    cfg.resume = true;
    let mut resumed = DeepWalk::new(cfg);
    let err = fit_tiny(&mut resumed, 17).expect_err("injected read fault must surface");
    faults::clear();
    assert!(
        matches!(err, TrainError::Checkpoint(_)),
        "expected a typed checkpoint error, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt checkpoint on disk (torn write, bit rot) surfaces as a typed
/// error on resume — never a panic, never silent acceptance.
#[test]
fn corrupt_checkpoint_file_on_resume_is_a_typed_error() {
    let _guard = faults::test_guard();
    let dir = std::env::temp_dir().join(format!("mhg_fault_corrupt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = tiny_common();
    cfg.checkpoint_every = 1;
    cfg.checkpoint_dir = Some(dir.clone());
    let mut model = DeepWalk::new(cfg.clone());
    fit_tiny(&mut model, 19).expect("seed run must succeed");
    // Corrupt the newest checkpoint: flip bytes in the middle of the file.
    let newest = std::fs::read_dir(&dir)
        .expect("checkpoint dir must exist")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "mhgc"))
        .max()
        .expect("at least one checkpoint must exist");
    let mut bytes = std::fs::read(&newest).expect("read checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).expect("corrupt checkpoint");
    cfg.resume = true;
    let mut resumed = DeepWalk::new(cfg);
    let err = fit_tiny(&mut resumed, 19).expect_err("corrupt checkpoint must surface");
    assert!(
        matches!(err, TrainError::Checkpoint(_)),
        "expected a typed checkpoint error, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
