//! End-to-end chaos soak: full HybridGNN training on the sharded graph
//! store while the storage layer is actively failing underneath it.
//!
//! The soak damages **every** shard file on disk (bit flips, a truncation,
//! a deletion) and layers a seeded `mhg-faults` schedule over the per-shard
//! read, decode and io-read sites, then trains end to end. The pipeline
//! must absorb all of it through the self-healing ladder — bounded retries,
//! rebuild-from-source repair, checksum re-verification — and produce
//! embeddings **bit-identical** to a clean run, with the retries and
//! repairs visible as `mhg-obs` counters in the rendered `metrics.jsonl`.
//!
//! Scheduled fault occurrences are spaced at least three apart per site so
//! the 3-attempt retry budget (page loads *and* the repair re-verify loop)
//! always absorbs the worst-case consecutive hits; closer spacing would be
//! testing quarantine, which `graph/tests/heal.rs` covers separately.
//!
//! CI runs this under `MHG_THREADS=1` and `MHG_THREADS=4`; when
//! `MHG_SOAK_METRICS_OUT` is set, the faulted run's metrics stream is
//! written there as a build artifact.
//!
//! All tests hold [`hybridgnn_repro::faults::test_guard`] because the fault
//! plan and its occurrence counters are process-global.

use std::path::PathBuf;
use std::sync::Arc;

use hybridgnn_repro::datasets::{EdgeSplit, LabeledEdge, SyntheticTier};
use hybridgnn_repro::faults::{self, FaultPlan, FaultSite};
use hybridgnn_repro::graph::{
    GraphStore, HealPolicy, MultiplexGraph, NodeTypeId, ShardError, ShardedCsr, ShardedCsrOptions,
};
use hybridgnn_repro::model::{HybridConfig, HybridGnn};
use hybridgnn_repro::models::{CommonConfig, FitData};
use hybridgnn_repro::obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 2022;

/// Small shards + a tight page budget: the training run pages shards in
/// and out continuously, so the read/decode fault sites fire mid-epoch,
/// not just at warm-up.
fn soak_opts() -> ShardedCsrOptions {
    ShardedCsrOptions {
        shard_target_cap: 512,
        page_budget_bytes: 4096,
        build_budget_bytes: 1 << 20,
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhg_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The train/val material shared by every run in the soak: a tiny
/// Taobao-shaped tier materialised in RAM, split, and the user–item–user
/// metapath shape the model trains on.
struct SoakData {
    train_graph: MultiplexGraph,
    val: Vec<LabeledEdge>,
    shapes: Vec<Vec<NodeTypeId>>,
}

fn soak_data() -> SoakData {
    let ram = SyntheticTier::taobao(0.0005, SEED).materialize();
    let mut rng = StdRng::seed_from_u64(SEED);
    let split = EdgeSplit::default_split(&ram, &mut rng);
    SoakData {
        train_graph: split.train_graph,
        val: split.val,
        shapes: vec![vec![NodeTypeId(0), NodeTypeId(1), NodeTypeId(0)]],
    }
}

/// Trains HybridGNN over `graph` with the fixed soak seed and returns the
/// final embedding bits over every (node, relation) of `ram`.
fn fit_bits<G: GraphStore>(graph: &G, data: &SoakData, obs: &Obs) -> Vec<u32> {
    let mut cfg = HybridConfig {
        common: CommonConfig::fast(),
        ..HybridConfig::default()
    };
    cfg.common.epochs = 2;
    cfg.common.dim = 8;
    cfg.common.background_sampling = true;
    cfg.common.obs = obs.clone();
    let mut model = HybridGnn::new(cfg);
    let fit = FitData {
        graph,
        metapath_shapes: &data.shapes,
        val: &data.val,
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let report = model
        .fit_store(&fit, &mut rng)
        .expect("soak fit must succeed");
    assert!(report.epochs_run > 0, "soak ran zero epochs");
    let ram = &data.train_graph;
    let mut bits: Vec<u32> = Vec::new();
    for v in ram.nodes() {
        for r in ram.schema().relations() {
            bits.extend(model.embedding(v, r).iter().map(|x| x.to_bits()));
        }
    }
    bits
}

fn shard_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir must exist")
        .map(|e| e.expect("read_dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "shard"))
        .collect();
    files.sort();
    files
}

/// Opens the store with the soak's heal source, policy and obs attached.
fn healing_store(dir: &PathBuf, data: &SoakData, obs: &Obs) -> ShardedCsr {
    ShardedCsr::open(dir, soak_opts())
        .expect("store must open")
        .with_heal_source(Arc::new(data.train_graph.clone()))
        .with_heal_policy(HealPolicy::default())
        .with_heal_obs(obs.clone())
}

/// The centerpiece: damage the whole store, layer a seeded fault schedule
/// on top, train end to end, and demand a bit-identical result.
#[test]
fn training_on_a_failing_store_is_bit_identical_to_clean_runs() {
    let _guard = faults::test_guard();
    faults::clear();
    let data = soak_data();
    let dir = fresh_dir("soak");
    drop(ShardedCsr::build(&data.train_graph, &dir, soak_opts()).expect("build store"));

    // Reference runs: the in-RAM backend and the pristine sharded store
    // must already agree (the store determinism contract).
    let ram_bits = fit_bits(&data.train_graph, &data, &Obs::deterministic(1_000_000));
    let clean_store = healing_store(&dir, &data, &Obs::deterministic(1_000_000));
    let clean_bits = fit_bits(&clean_store, &data, &Obs::deterministic(1_000_000));
    drop(clean_store);
    assert_eq!(
        ram_bits, clean_bits,
        "pristine sharded store diverged from the in-RAM backend"
    );

    // Damage every shard file: one payload bit flipped each, the first
    // additionally truncated to half, the last deleted outright.
    let files = shard_files(&dir);
    assert!(
        files.len() >= 4,
        "soak needs several shards, got {}",
        files.len()
    );
    for file in &files {
        let mut bytes = std::fs::read(file).expect("read shard");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(file, &bytes).expect("damage shard");
    }
    let bytes = std::fs::read(&files[0]).expect("read first shard");
    std::fs::write(&files[0], &bytes[..bytes.len() / 2]).expect("truncate shard");
    std::fs::remove_file(files.last().expect("nonempty")).expect("delete shard");

    // The faulted run: open over the wreckage, then schedule transient
    // faults on the shard read/decode/io sites (occurrences ≥3 apart per
    // site — see the module docs) and train with the same seed.
    let obs = Obs::deterministic(1_000_000);
    let store = healing_store(&dir, &data, &obs);
    faults::install(
        FaultPlan::new()
            .inject(FaultSite::ShardRead, 1)
            .inject(FaultSite::ShardRead, 5)
            .inject(FaultSite::ShardRead, 9)
            .inject(FaultSite::ShardDecode, 2)
            .inject(FaultSite::ShardDecode, 7)
            .inject(FaultSite::ShardDecode, 12)
            .inject(FaultSite::IoRead, 4)
            .inject(FaultSite::IoRead, 11),
    );
    let faulted_bits = fit_bits(&store, &data, &obs);
    let fired = faults::fired();
    faults::clear();
    assert_eq!(
        clean_bits, faulted_bits,
        "self-healing changed the final embeddings bit-for-bit"
    );
    assert!(
        fired.contains(&(FaultSite::ShardRead, 1)),
        "shard_read site never exercised: {fired:?}"
    );
    assert!(
        fired.contains(&(FaultSite::IoRead, 4)),
        "io_read site never exercised under paging: {fired:?}"
    );

    // The ladder's work is observable: retries and rebuilds happened, and
    // nothing was bad enough to quarantine.
    let stats = store.heal_stats();
    assert!(stats.retries > 0, "damaged store trained without any retry");
    assert!(
        stats.repairs > 0,
        "damaged store trained without any repair"
    );
    assert!(
        store.quarantined().is_empty(),
        "transient faults must not quarantine: {:?}",
        store.quarantined()
    );

    // Operator sweep after the storm: any shard training never touched is
    // still damaged, so fsck+repair the remainder, after which the whole
    // store re-verifies from disk — including with a fresh, heal-less open.
    let leftover = store.verify_all();
    if !leftover.is_clean() {
        let outcome = store.repair();
        assert!(outcome.is_complete(), "repair failed: {:?}", outcome.failed);
    }
    assert!(store.verify_all().is_clean());
    ShardedCsr::open(&dir, soak_opts())
        .expect("reopen")
        .verify()
        .expect("repaired store must verify without a heal source");

    // The retries/repairs surfaced as obs counters in the JSONL stream;
    // export it when CI asked for an artifact.
    let jsonl = obs.render_jsonl();
    for counter in ["graph/shard_retries", "graph/shard_repairs"] {
        assert!(
            jsonl.contains(counter),
            "{counter} missing from metrics:\n{jsonl}"
        );
    }
    if let Some(out) = std::env::var_os("MHG_SOAK_METRICS_OUT") {
        std::fs::write(&out, &jsonl).expect("write soak metrics artifact");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// An injected read fault while opening the manifest surfaces as a typed
/// error — and the very next open succeeds, because nothing was mutated.
#[test]
fn injected_open_fault_is_typed_and_the_store_reopens_cleanly() {
    let _guard = faults::test_guard();
    faults::clear();
    let data = soak_data();
    let dir = fresh_dir("open_fault");
    drop(ShardedCsr::build(&data.train_graph, &dir, soak_opts()).expect("build store"));

    faults::install(FaultPlan::new().inject(FaultSite::IoRead, 1));
    let err = match ShardedCsr::open(&dir, soak_opts()) {
        Err(e) => e,
        Ok(_) => panic!("injected open fault must surface"),
    };
    faults::clear();
    assert!(
        matches!(err, ShardError::Io(_)),
        "expected a typed I/O error at open, got {err}"
    );
    ShardedCsr::open(&dir, soak_opts())
        .expect("store must reopen once the fault clears")
        .verify()
        .expect("store content untouched by the failed open");
    let _ = std::fs::remove_dir_all(&dir);
}
