//! Allowlist handling, workspace scanning and report rendering.
//!
//! The allowlist format is one entry per line, `rule <path-suffix>
//! <needle…>`, with `#` comments and blank lines ignored. Every entry must
//! be *justified* — its contiguous block of non-blank lines must contain at
//! least one comment explaining why the finding is acceptable — and *live* —
//! it must suppress at least one current finding. Violations of either
//! policy are findings themselves ([`Rule::UnjustifiedAllow`],
//! [`Rule::DeadAllow`]) so the allowlist cannot silently rot.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{classify, scan_file, Diagnostic, Rule};

/// One allowlist entry: `rule path-suffix needle…`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule name the entry suppresses.
    pub rule: String,
    /// Suffix the diagnostic's file path must end with.
    pub path_suffix: String,
    /// Substring the offending source line must contain.
    pub needle: String,
    /// 1-based line of the entry in the allowlist file.
    pub line: usize,
    /// A comment line exists in the entry's contiguous block.
    pub justified: bool,
}

/// Parses the allowlist format: one entry per line,
/// `rule <path-suffix> <needle…>`, with `#` comments and blank lines
/// ignored. The needle is the rest of the line (it may contain spaces) and
/// is matched as a substring of the offending source line, so entries
/// survive unrelated line-number churn. A comment anywhere in an entry's
/// contiguous non-blank block counts as its justification.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    let mut block_has_comment = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            block_has_comment = false;
            continue;
        }
        if line.starts_with('#') {
            block_has_comment = true;
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(path), Some(needle)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path_suffix: path.to_string(),
            needle: needle.trim().to_string(),
            line: idx + 1,
            justified: block_has_comment,
        });
    }
    entries
}

/// Whether one entry suppresses one diagnostic.
fn entry_matches(entry: &AllowEntry, diag: &Diagnostic) -> bool {
    entry.rule == diag.rule.name()
        && diag.file.ends_with(&entry.path_suffix)
        && diag.snippet.contains(&entry.needle)
}

/// Whether a diagnostic is suppressed by the allowlist.
pub fn is_allowed(diag: &Diagnostic, allow: &[AllowEntry]) -> bool {
    allow.iter().any(|e| entry_matches(e, diag))
}

/// Policy findings for the allowlist itself: entries that match no current
/// diagnostic are dead; entries whose block carries no comment are
/// unjustified. `all` must be the *unfiltered* scan results.
pub fn audit_allowlist(allow: &[AllowEntry], all: &[Diagnostic]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for entry in allow {
        let snippet = format!("{} {} {}", entry.rule, entry.path_suffix, entry.needle);
        if !all.iter().any(|d| entry_matches(entry, d)) {
            out.push(Diagnostic {
                file: "lint.allow".to_string(),
                line: entry.line,
                col: 1,
                rule: Rule::DeadAllow,
                message: format!(
                    "dead allowlist entry — no current `{}` finding matches `{}` / `{}`; \
                     delete it",
                    entry.rule, entry.path_suffix, entry.needle
                ),
                snippet: snippet.clone(),
            });
        }
        if !entry.justified {
            out.push(Diagnostic {
                file: "lint.allow".to_string(),
                line: entry.line,
                col: 1,
                rule: Rule::UnjustifiedAllow,
                message: "allowlist entry without a justification comment in its block".to_string(),
                snippet,
            });
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `crates/*/src/**.rs` file under `root` and returns all
/// findings (before allowlist filtering), sorted by path and line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for file in files {
        let rel: String = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel).is_none() {
            continue;
        }
        let source = fs::read_to_string(&file)?;
        diags.extend(scan_file(&rel, &source));
    }
    Ok(diags)
}

/// Report output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Human-readable `file:line:col: [rule] message` lines.
    Text,
    /// Machine-readable JSON document (consumed by CI).
    Json,
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full scan as a JSON document: every violation (reported and
/// allowlisted, with an `allowed` flag) plus a summary block.
pub fn render_json(reported: &[Diagnostic], suppressed: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"violations\": [\n");
    let total = reported.len() + suppressed.len();
    let mut first = true;
    for (diags, allowed) in [(reported, false), (suppressed, true)] {
        for d in diags {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
                 \"message\": \"{}\", \"snippet\": \"{}\", \"allowed\": {}}}",
                json_escape(&d.file),
                d.line,
                d.col,
                d.rule.name(),
                json_escape(&d.message),
                json_escape(&d.snippet),
                allowed
            ));
        }
    }
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"total\": {}, \"reported\": {}, \"allowlisted\": {}}}\n}}\n",
        total,
        reported.len(),
        suppressed.len()
    ));
    out
}

/// Scans the workspace, applies and audits the allowlist, and prints a
/// report in the requested format to stdout.
///
/// Returns `Ok(true)` when no unsuppressed finding remains (allowlist
/// policy findings — dead or unjustified entries — count as findings).
pub fn run(root: &Path, allowlist_path: &Path, format: OutputFormat) -> io::Result<bool> {
    let allow = match fs::read_to_string(allowlist_path) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let all = scan_workspace(root)?;
    let (suppressed, mut reported): (Vec<_>, Vec<_>) =
        all.iter().cloned().partition(|d| is_allowed(d, &allow));
    reported.extend(audit_allowlist(&allow, &all));
    match format {
        OutputFormat::Text => {
            for d in &reported {
                println!("{d}");
            }
            println!(
                "mhg-lint: {} violation(s), {} allowlisted",
                reported.len(),
                suppressed.len()
            );
        }
        OutputFormat::Json => {
            print!("{}", render_json(&reported, &suppressed));
        }
    }
    Ok(reported.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_roundtrip() {
        let entries = parse_allowlist(
            "# justified: degree fits by construction\nno-panic crates/graph/src/csr.rs .expect(\"degree fits\n",
        );
        assert_eq!(entries.len(), 1);
        assert!(entries[0].justified);
        assert_eq!(entries[0].line, 2);
        let diag = Diagnostic {
            file: "crates/graph/src/csr.rs".to_string(),
            line: 10,
            col: 13,
            rule: Rule::NoPanic,
            message: String::new(),
            snippet: "let d = n.expect(\"degree fits in u32\");".to_string(),
        };
        assert!(is_allowed(&diag, &entries));
    }

    #[test]
    fn blank_line_resets_justification() {
        let entries = parse_allowlist("# a comment\n\nno-panic crates/x/src/a.rs .unwrap()\n");
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].justified);
    }

    #[test]
    fn audit_flags_dead_and_unjustified_entries() {
        let entries = parse_allowlist(
            "# live and justified\nno-panic crates/x/src/a.rs .unwrap()\nwall-clock crates/x/src/a.rs Instant\n\nno-panic crates/x/src/b.rs .expect(\n",
        );
        let all = vec![Diagnostic {
            file: "crates/x/src/a.rs".to_string(),
            line: 1,
            col: 1,
            rule: Rule::NoPanic,
            message: String::new(),
            snippet: "x.unwrap()".to_string(),
        }];
        let audit = audit_allowlist(&entries, &all);
        let dead: Vec<_> = audit.iter().filter(|d| d.rule == Rule::DeadAllow).collect();
        let unjust: Vec<_> = audit
            .iter()
            .filter(|d| d.rule == Rule::UnjustifiedAllow)
            .collect();
        assert_eq!(dead.len(), 2, "{audit:?}");
        assert_eq!(unjust.len(), 1, "{audit:?}");
        assert_eq!(unjust[0].line, 5);
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let reported = vec![Diagnostic {
            file: "crates/x/src/a.rs".to_string(),
            line: 3,
            col: 5,
            rule: Rule::NoPanic,
            message: "has \"quotes\"".to_string(),
            snippet: "tab\there".to_string(),
        }];
        let json = render_json(&reported, &[]);
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("has \\\"quotes\\\""));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"reported\": 1"));
        assert!(json.contains("\"allowed\": false"));
    }
}
