//! Workspace-specific static checks for the HybridGNN reproduction.
//!
//! `cargo run -p mhg-lint` walks every `crates/*/src/**.rs` file and enforces
//! invariants that rustc and clippy cannot express for us:
//!
//! * **no-panic** — no `.unwrap()` / `.expect(` / `panic!` family in library
//!   code. Experiment binaries (`src/bin/`) and `#[cfg(test)]` blocks are
//!   exempt: a driver or test may abort, a library must return errors or
//!   assert with context.
//! * **unseeded-rng** — no `thread_rng` / `from_entropy` / `rand::random`
//!   outside tests. Every random stream in the reproduction must be derived
//!   from an explicit seed so experiments replay exactly.
//! * **wall-clock** — no `std::time` in model/forward code (`tensor`,
//!   `autograd`, `sampling`, `models`, `hybridgnn`). Timing belongs to the
//!   bench harness; a forward pass that reads the clock cannot be replayed.
//! * **missing-docs** — every `pub fn` in the `tensor`, `autograd` and
//!   `graph` substrate crates carries a doc comment.
//! * **shape-assert** — every tensor-op entry point combining two or more
//!   tensors (in `crates/tensor/src/{ops,tensor}.rs`) contains a shape
//!   assertion in its body.
//! * **epoch-loop** — no `for epoch in` loops outside `crates/train`. The
//!   training epoch loop (sampling, stepping, early stopping, reporting)
//!   is owned by `mhg_train::train`; a model writing its own loop forks
//!   the pipeline's determinism and timing contracts.
//! * **raw-thread** — no `std::thread::spawn` / `thread::scope` outside
//!   `crates/par` and `crates/train`. All data parallelism must go through
//!   the `mhg-par` pool, whose fixed-partition contract keeps results
//!   bit-identical for any thread count; ad-hoc threads have no such
//!   guarantee.
//! * **raw-file-write** — no `File::create` / `fs::write` outside
//!   `crates/ckpt`. Every persistent artifact (checkpoints, graphs, bench
//!   results) must go through `mhg_ckpt::atomic_write`, which stages to a
//!   temp file, fsyncs and renames — a direct write can be torn by a crash
//!   and is invisible to the fault-injection schedule.
//! * **no-eprintln** — no raw `eprintln!` outside `crates/obs` and binary
//!   entry points. All progress reporting and diagnostics go through the
//!   `mhg-obs` registry and sinks (`Obs::note`, events, the stderr
//!   summary), so human output and `metrics.jsonl` can never disagree.
//!
//! Findings that are individually justified live in the `lint.allow` file at
//! the workspace root; see [`parse_allowlist`] for the format. The scanner is
//! a line-oriented token cleaner (strings, comments and char literals are
//! stripped before matching), not a full parser — rules are chosen so that
//! this approximation has no false negatives on the workspace's style.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A lint rule identifier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` family in library code.
    NoPanic,
    /// Unseeded randomness outside tests.
    UnseededRng,
    /// `std::time` usage in model/forward code.
    WallClock,
    /// Undocumented `pub fn` in a substrate crate.
    MissingDocs,
    /// Multi-tensor op entry point without a shape assertion.
    ShapeAssert,
    /// Hand-rolled training epoch loop outside `crates/train`.
    EpochLoop,
    /// Raw `std::thread` usage outside the sanctioned pool crates.
    RawThread,
    /// Direct file write bypassing `mhg_ckpt::atomic_write`.
    RawFileWrite,
    /// Raw `eprintln!` bypassing the `mhg-obs` sinks.
    NoEprintln,
}

impl Rule {
    /// Stable rule name used in reports and the allowlist.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::UnseededRng => "unseeded-rng",
            Rule::WallClock => "wall-clock",
            Rule::MissingDocs => "missing-docs",
            Rule::ShapeAssert => "shape-assert",
            Rule::EpochLoop => "epoch-loop",
            Rule::RawThread => "raw-thread",
            Rule::RawFileWrite => "raw-file-write",
            Rule::NoEprintln => "no-eprintln",
        }
    }
}

/// A single finding: file, 1-based line, rule and message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed source line, used for allowlist matching.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rules apply to a given file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Panic-freedom applies.
    pub no_panic: bool,
    /// Seeded-randomness rule applies.
    pub unseeded_rng: bool,
    /// Wall-clock rule applies.
    pub wall_clock: bool,
    /// Doc-coverage rule applies.
    pub missing_docs: bool,
    /// Shape-assertion rule applies.
    pub shape_assert: bool,
    /// Epoch-loop rule applies.
    pub epoch_loop: bool,
    /// Raw-thread rule applies.
    pub raw_thread: bool,
    /// Raw-file-write rule applies.
    pub raw_file_write: bool,
    /// No-eprintln rule applies.
    pub no_eprintln: bool,
}

/// Crates whose forward/training path must never read the wall clock.
const WALL_CLOCK_CRATES: &[&str] = &["tensor", "autograd", "sampling", "models", "hybridgnn"];

/// Substrate crates whose public API must be documented.
const DOCS_CRATES: &[&str] = &["tensor", "autograd", "graph"];

/// Decides which rules apply to `rel_path` (workspace-relative, `/`
/// separators). Returns `None` for files the linter does not scan.
pub fn classify(rel_path: &str) -> Option<FileClass> {
    if !rel_path.ends_with(".rs") || !rel_path.starts_with("crates/") {
        return None;
    }
    let rest = &rel_path["crates/".len()..];
    let (krate, tail) = rest.split_once('/')?;
    if !tail.starts_with("src/") {
        return None;
    }
    let is_bin = tail.starts_with("src/bin/") || tail == "src/main.rs";
    Some(FileClass {
        no_panic: !is_bin,
        unseeded_rng: true,
        wall_clock: WALL_CLOCK_CRATES.contains(&krate),
        missing_docs: DOCS_CRATES.contains(&krate) && !is_bin,
        shape_assert: rel_path == "crates/tensor/src/ops.rs"
            || rel_path == "crates/tensor/src/tensor.rs",
        epoch_loop: krate != "train",
        raw_thread: krate != "par" && krate != "train",
        raw_file_write: krate != "ckpt",
        no_eprintln: krate != "obs" && !is_bin,
    })
}

/// One source line after comment/string/char-literal stripping.
#[derive(Debug)]
struct CleanLine {
    /// Code content with comments removed and string bodies blanked.
    code: String,
    /// The raw line is a `///` or `//!` doc comment.
    doc: bool,
}

/// Lexer state that survives across lines.
enum LexState {
    Normal,
    /// Inside a (possibly nested) block comment.
    Block(u32),
    /// Inside a regular string literal.
    Str,
    /// Inside a raw string literal with the given number of `#`s.
    RawStr(u32),
}

/// Strips comments, string bodies and char literals, preserving line
/// structure so findings keep their original line numbers.
fn clean(source: &str) -> Vec<CleanLine> {
    let mut out = Vec::new();
    let mut state = LexState::Normal;
    for raw in source.lines() {
        let trimmed = raw.trim_start();
        let doc = matches!(state, LexState::Normal)
            && (trimmed.starts_with("///") || trimmed.starts_with("//!"));
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut i = 0;
        while i < chars.len() {
            match state {
                LexState::Block(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth > 1 {
                            LexState::Block(depth - 1)
                        } else {
                            LexState::Normal
                        };
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                LexState::Str => {
                    if chars[i] == '\\' {
                        i += 2;
                    } else {
                        if chars[i] == '"' {
                            state = LexState::Normal;
                        }
                        i += 1;
                    }
                }
                LexState::RawStr(hashes) => {
                    if chars[i] == '"' {
                        let h = hashes as usize;
                        if chars[i + 1..].iter().take(h).filter(|&&c| c == '#').count() == h {
                            state = LexState::Normal;
                            i += 1 + h;
                            continue;
                        }
                    }
                    i += 1;
                }
                LexState::Normal => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        break; // line comment: rest of line is not code
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = LexState::Block(1);
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        state = LexState::Str;
                        i += 1;
                        continue;
                    }
                    // Raw string start: r" or r#…" (not part of an identifier).
                    if c == 'r'
                        && (i == 0 || !is_ident(chars[i - 1]))
                        && matches!(chars.get(i + 1), Some(&'"') | Some(&'#'))
                    {
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            state = LexState::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    if c == '\'' {
                        // Char literal or lifetime.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char: skip to the closing quote.
                            let mut j = i + 2;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            i = j + 1;
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') {
                            i += 3; // plain char literal 'x'
                            continue;
                        }
                        // Lifetime: drop the quote, keep scanning.
                        i += 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                }
            }
        }
        out.push(CleanLine { code, doc });
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Patterns for the three substring rules: `(rule, needle, message)`.
const PATTERNS: &[(Rule, &str, &str)] = &[
    (
        Rule::NoPanic,
        ".unwrap()",
        "`.unwrap()` in library code — return a Result or assert with context",
    ),
    (
        Rule::NoPanic,
        ".expect(",
        "`.expect(...)` in library code — return a Result or assert with context",
    ),
    (
        Rule::NoPanic,
        "panic!",
        "`panic!` in library code — return a Result or assert with context",
    ),
    (
        Rule::NoPanic,
        "unreachable!",
        "`unreachable!` in library code — encode the invariant in the types",
    ),
    (
        Rule::NoPanic,
        "todo!(",
        "`todo!` must not ship in library code",
    ),
    (
        Rule::NoPanic,
        "unimplemented!",
        "`unimplemented!` must not ship in library code",
    ),
    (
        Rule::UnseededRng,
        "thread_rng",
        "unseeded RNG — derive the stream from an explicit seed",
    ),
    (
        Rule::UnseededRng,
        "from_entropy",
        "entropy-seeded RNG — derive the stream from an explicit seed",
    ),
    (
        Rule::UnseededRng,
        "rand::random",
        "unseeded RNG — derive the stream from an explicit seed",
    ),
    (
        Rule::WallClock,
        "std::time",
        "wall clock in model code — timing belongs to the bench harness",
    ),
    (
        Rule::WallClock,
        "Instant::now",
        "wall clock in model code — timing belongs to the bench harness",
    ),
    (
        Rule::WallClock,
        "SystemTime::now",
        "wall clock in model code — timing belongs to the bench harness",
    ),
    (
        Rule::EpochLoop,
        "for epoch in",
        "hand-rolled epoch loop — drive training through `mhg_train::train`",
    ),
    (
        Rule::RawThread,
        "thread::spawn",
        "raw thread spawn — use the deterministic `mhg_par` pool",
    ),
    (
        Rule::RawThread,
        "thread::scope",
        "raw scoped threads — use the deterministic `mhg_par` pool",
    ),
    (
        Rule::RawFileWrite,
        "File::create",
        "raw file write — route persistence through `mhg_ckpt::atomic_write`",
    ),
    (
        Rule::RawFileWrite,
        "fs::write",
        "raw file write — route persistence through `mhg_ckpt::atomic_write`",
    ),
    (
        Rule::NoEprintln,
        "eprintln!",
        "raw `eprintln!` — route reporting through the `mhg-obs` registry/sinks",
    ),
];

fn rule_enabled(class: &FileClass, rule: Rule) -> bool {
    match rule {
        Rule::NoPanic => class.no_panic,
        Rule::UnseededRng => class.unseeded_rng,
        Rule::WallClock => class.wall_clock,
        Rule::MissingDocs => class.missing_docs,
        Rule::ShapeAssert => class.shape_assert,
        Rule::EpochLoop => class.epoch_loop,
        Rule::RawThread => class.raw_thread,
        Rule::RawFileWrite => class.raw_file_write,
        Rule::NoEprintln => class.no_eprintln,
    }
}

/// Scans one file's source and returns every finding.
///
/// `rel_path` selects the applicable rules via [`classify`]; files the
/// linter does not cover yield no findings.
pub fn scan_file(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let Some(class) = classify(rel_path) else {
        return Vec::new();
    };
    let lines = clean(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut diags = Vec::new();

    // Pass 1: brace-depth + #[cfg(test)] region tracking, substring rules,
    // and doc-coverage bookkeeping.
    let mut depth: i64 = 0;
    let mut test_region: Option<i64> = None;
    let mut pending_cfg_test = false;
    let mut pending_doc = false;
    let mut in_test = vec![false; lines.len()];

    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let raw = raw_lines.get(idx).copied().unwrap_or("");
        in_test[idx] = test_region.is_some();

        if test_region.is_none() && (code.contains("cfg(test)") || code.contains("cfg(all(test")) {
            pending_cfg_test = true;
            in_test[idx] = true;
        }
        if pending_cfg_test && code.contains('{') {
            test_region = Some(depth);
            pending_cfg_test = false;
            in_test[idx] = true;
        } else if pending_cfg_test && code.trim_end().ends_with(';') {
            // `#[cfg(test)]` on a braceless item (use, type alias): the
            // item ends here and opens no region.
            pending_cfg_test = false;
            in_test[idx] = true;
        }
        for c in code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(d) = test_region {
            in_test[idx] = true;
            if depth <= d {
                test_region = None;
            }
        }

        if !in_test[idx] {
            for &(rule, needle, message) in PATTERNS {
                if rule_enabled(&class, rule) && code.contains(needle) {
                    diags.push(Diagnostic {
                        file: rel_path.to_string(),
                        line: idx + 1,
                        rule,
                        message: message.to_string(),
                        snippet: raw.trim().to_string(),
                    });
                }
            }
        }

        // Doc-coverage: a `pub fn` item must be preceded by a doc comment
        // (attributes between the doc and the item are fine).
        let trimmed = raw.trim();
        if line.doc {
            pending_doc = true;
        } else if trimmed.is_empty() || trimmed.starts_with("#[") {
            // keep pending_doc
        } else {
            if !in_test[idx] && class.missing_docs && is_pub_fn(code) && !pending_doc {
                diags.push(Diagnostic {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: Rule::MissingDocs,
                    message: "undocumented `pub fn` in substrate crate".to_string(),
                    snippet: trimmed.to_string(),
                });
            }
            pending_doc = false;
        }
    }

    // Pass 2: shape assertions in multi-tensor op entry points.
    if class.shape_assert {
        diags.extend(check_shape_asserts(rel_path, &lines, &raw_lines, &in_test));
    }

    diags.sort_by_key(|d| d.line);
    diags
}

fn is_pub_fn(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("pub fn ") || t.starts_with("pub const fn ") || t.starts_with("pub unsafe fn ")
}

/// Finds `pub fn` items whose parameter list mentions two or more tensors
/// (counting `&self` in an `impl Tensor` file) but whose body contains no
/// `assert`. Works on the cleaned text so strings cannot confuse matching.
fn check_shape_asserts(
    rel_path: &str,
    lines: &[CleanLine],
    raw_lines: &[&str],
    in_test: &[bool],
) -> Vec<Diagnostic> {
    // Join cleaned lines, remembering each line's start offset.
    let mut text = String::new();
    let mut starts = Vec::with_capacity(lines.len());
    for line in lines {
        starts.push(text.len());
        text.push_str(&line.code);
        text.push('\n');
    }
    let line_of = |pos: usize| starts.partition_point(|&s| s <= pos).saturating_sub(1);

    let mut diags = Vec::new();
    let bytes = text.as_bytes();
    let mut search_from = 0;
    while let Some(off) = text[search_from..].find("pub fn ") {
        let fn_pos = search_from + off;
        search_from = fn_pos + "pub fn ".len();
        let line_idx = line_of(fn_pos);
        if in_test.get(line_idx).copied().unwrap_or(false) {
            continue;
        }
        // Parameter list: first '(' after the fn keyword, balanced to ')'.
        let Some(open_rel) = text[fn_pos..].find('(') else {
            continue;
        };
        let open = fn_pos + open_rel;
        let Some(close) = matching(bytes, open, b'(', b')') else {
            continue;
        };
        let params = &text[open + 1..close];
        let mut tensors = params
            .replace("[&Tensor]", "Tensor Tensor")
            .matches("Tensor")
            .count();
        if params.contains("self") {
            tensors += 1; // methods on Tensor: the receiver is a tensor
        }
        if tensors < 2 {
            continue;
        }
        // Body: first '{' after the parameter list, balanced to '}'.
        let Some(body_open_rel) = text[close..].find('{') else {
            continue;
        };
        let body_open = close + body_open_rel;
        let Some(body_close) = matching(bytes, body_open, b'{', b'}') else {
            continue;
        };
        if !text[body_open..body_close].contains("assert") {
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line: line_idx + 1,
                rule: Rule::ShapeAssert,
                message: "multi-tensor op entry point without a shape assertion".to_string(),
                snippet: raw_lines
                    .get(line_idx)
                    .map(|l| l.trim())
                    .unwrap_or("")
                    .to_string(),
            });
        }
    }
    diags
}

/// Byte offset of the delimiter matching the one at `open`, or `None`.
fn matching(bytes: &[u8], open: usize, open_b: u8, close_b: u8) -> Option<usize> {
    let mut depth = 0i64;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if b == open_b {
            depth += 1;
        } else if b == close_b {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// One allowlist entry: `rule path-suffix needle…`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule name the entry suppresses.
    pub rule: String,
    /// Suffix the diagnostic's file path must end with.
    pub path_suffix: String,
    /// Substring the offending source line must contain.
    pub needle: String,
}

/// Parses the allowlist format: one entry per line,
/// `rule <path-suffix> <needle…>`, with `#` comments and blank lines
/// ignored. The needle is the rest of the line (it may contain spaces) and
/// is matched as a substring of the offending source line, so entries
/// survive unrelated line-number churn.
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(rule), Some(path), Some(needle)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path_suffix: path.to_string(),
            needle: needle.trim().to_string(),
        });
    }
    entries
}

/// Whether a diagnostic is suppressed by the allowlist.
pub fn is_allowed(diag: &Diagnostic, allow: &[AllowEntry]) -> bool {
    allow.iter().any(|e| {
        e.rule == diag.rule.name()
            && diag.file.ends_with(&e.path_suffix)
            && diag.snippet.contains(&e.needle)
    })
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every `crates/*/src/**.rs` file under `root` and returns all
/// findings (before allowlist filtering), sorted by path and line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for file in files {
        let rel: String = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel).is_none() {
            continue;
        }
        let source = fs::read_to_string(&file)?;
        diags.extend(scan_file(&rel, &source));
    }
    Ok(diags)
}

/// Scans the workspace, applies the allowlist, and prints a report.
///
/// Returns `Ok(true)` when no unsuppressed finding remains.
pub fn run(root: &Path, allowlist_path: &Path) -> io::Result<bool> {
    let allow = match fs::read_to_string(allowlist_path) {
        Ok(text) => parse_allowlist(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let all = scan_workspace(root)?;
    let (suppressed, reported): (Vec<_>, Vec<_>) =
        all.into_iter().partition(|d| is_allowed(d, &allow));
    for d in &reported {
        println!("{d}");
    }
    println!(
        "mhg-lint: {} violation(s), {} allowlisted",
        reported.len(),
        suppressed.len()
    );
    Ok(reported.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaning_strips_strings_and_comments() {
        let src = "let x = \"panic!\"; // panic!\nlet y = 1; /* .unwrap() */ let z = 2;\n";
        let lines = clean(src);
        assert!(!lines[0].code.contains("panic!"));
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[1].code.contains("let z = 2;"));
    }

    #[test]
    fn cleaning_handles_lifetimes_and_chars() {
        let src = "impl<'a> Foo<'a> { fn f(c: char) -> bool { c == '\"' || c == '\\'' } }";
        let lines = clean(src);
        assert!(lines[0].code.contains("impl<a> Foo<a>"));
        assert!(!lines[0].code.contains('"'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let s = r#\"contains .unwrap() here\"#; let t = 3;";
        let lines = clean(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("let t = 3;"));
    }

    #[test]
    fn classify_selects_rules_by_crate() {
        let t = classify("crates/tensor/src/ops.rs").expect("tensor file is scanned");
        assert!(t.no_panic && t.wall_clock && t.missing_docs && t.shape_assert);
        let b = classify("crates/bench/src/bin/exp_table4.rs").expect("bin file is scanned");
        assert!(!b.no_panic && b.unseeded_rng && !b.wall_clock);
        assert!(classify("crates/lint/tests/fixtures/x.rs").is_none());
        assert!(classify("third_party/rand/src/lib.rs").is_none());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() { y.unwrap(); }\n";
        let diags = scan_file("crates/eval/src/fake.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn allowlist_roundtrip() {
        let entries = parse_allowlist(
            "# comment\n\nno-panic crates/graph/src/csr.rs .expect(\"degree fits\n",
        );
        assert_eq!(entries.len(), 1);
        let diag = Diagnostic {
            file: "crates/graph/src/csr.rs".to_string(),
            line: 10,
            rule: Rule::NoPanic,
            message: String::new(),
            snippet: "let d = n.expect(\"degree fits in u32\");".to_string(),
        };
        assert!(is_allowed(&diag, &entries));
    }
}
