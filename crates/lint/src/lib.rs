//! Workspace-specific static checks for the HybridGNN reproduction.
//!
//! `cargo run -p mhg-lint` (or the `cargo lint` alias) walks every
//! `crates/*/src/**.rs` file and enforces invariants that rustc and clippy
//! cannot express for us. The scanner is a real lossless lexer
//! ([`lexer`]) — every byte of the source lands in exactly one token, so
//! raw strings, block comments and multi-line expressions can neither hide
//! nor fabricate findings — with structural analyses ([`engine`]) layered
//! on the significant-token stream.
//!
//! Rules ([`rules`]):
//!
//! * **no-panic** — no `.unwrap()` / `.expect(` / `panic!` family in library
//!   code. Experiment binaries (`src/bin/`) and `#[cfg(test)]` items are
//!   exempt: a driver or test may abort, a library must return errors or
//!   assert with context.
//! * **unseeded-rng** — no `thread_rng` / `from_entropy` / `rand::random`
//!   outside tests. Every random stream in the reproduction must be derived
//!   from an explicit seed so experiments replay exactly.
//! * **wall-clock** — no `std::time` in model/forward code (`tensor`,
//!   `autograd`, `sampling`, `models`, `hybridgnn`). Timing belongs to the
//!   bench harness; a forward pass that reads the clock cannot be replayed.
//! * **missing-docs** — every `pub fn` in the `tensor`, `autograd` and
//!   `graph` substrate crates carries a doc comment.
//! * **shape-assert** — every tensor-op entry point combining two or more
//!   tensors (in `crates/tensor/src/{ops,tensor}.rs`) contains a shape
//!   assertion in its body.
//! * **epoch-loop** — no `for epoch in` loops outside `crates/train`; the
//!   epoch loop is owned by `mhg_train::train`.
//! * **raw-thread** — no `std::thread::spawn` / `thread::scope` outside
//!   `crates/par` and `crates/train`; all data parallelism goes through the
//!   fixed-partition `mhg-par` pool.
//! * **raw-file-write** — no `File::create` / `fs::write` outside
//!   `crates/ckpt`; persistence goes through `mhg_ckpt::atomic_write`.
//! * **no-eprintln** — no raw `eprintln!` outside `crates/obs` and binary
//!   entry points; reporting goes through the `mhg-obs` registry and sinks.
//! * **ordered-iteration** — no iteration over `HashMap`/`HashSet` whose
//!   order can leak into serialized, reduced or RNG-consuming state; use
//!   `BTreeMap`/`BTreeSet` or sort before use. Hash iteration order varies
//!   per process (SipHash keys are randomized), so any order leak breaks
//!   the byte-identical replay contract.
//! * **atomic-ordering** — `Ordering::Relaxed` counters are permitted only
//!   in `crates/obs`; every other atomic-ordering use anywhere (including
//!   `Acquire`/`Release`/`SeqCst`) needs a justified `lint.allow` entry
//!   naming the happens-before edge it creates.
//! * **unchecked-arith** — length/size narrowing and length multiplication
//!   on persistence paths (`crates/ckpt`, `crates/graph/src/persist.rs`)
//!   must go through checked helpers: a silently wrapped length corrupts
//!   the archive instead of failing loudly.
//! * **crate-layering** — source references to sibling workspace crates
//!   must follow the substrate DAG; `tensor`/`autograd`/`par` can never
//!   depend on `train`/`models`/`bench`.
//! * **dead-allow** / **unjustified-allow** — `lint.allow` entries that
//!   match no current finding, or carry no justification comment in their
//!   block, are findings themselves.
//!
//! Findings that are individually justified live in the `lint.allow` file
//! at the workspace root; see [`parse_allowlist`] for the format and
//! justification policy. The CLI renders text or machine-readable JSON
//! (`--format json`) for CI consumption.

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{
    audit_allowlist, is_allowed, parse_allowlist, render_json, run, scan_workspace, AllowEntry,
    OutputFormat,
};
pub use rules::{classify, scan_file, Diagnostic, FileClass, Rule};
