//! Lossless, std-only Rust lexer for the workspace linter.
//!
//! The old linter was a line-oriented cleaner: it blanked strings and
//! comments per line and matched rule needles as substrings. That design
//! cannot see item boundaries or multi-line constructs — a call split as
//! `.expect\n(` hides from it, and an identifier like `memfs` fabricates a
//! `fs::write` match. This lexer replaces it with a real token stream:
//!
//! * **Lossless** — every byte of the input belongs to exactly one token,
//!   so concatenating token texts reproduces the source verbatim (pinned by
//!   the proptests in `tests/lexer_props.rs`).
//! * **Total** — arbitrary input lexes without panicking; unterminated
//!   strings and comments simply extend to end of input.
//! * **Structure-aware** — raw strings with any number of `#`s, nested
//!   block comments, char literals vs lifetimes, raw identifiers, byte and
//!   raw-byte strings, and numeric literals (including `0..n` ranges) are
//!   all tokenized correctly, across lines.
//!
//! Rule matching then happens over *significant* tokens (everything except
//! whitespace and comments), which makes needles whitespace- and
//! line-break-insensitive and identifier-boundary-exact for free.

/// Kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs and newlines.
    Whitespace,
    /// `// …` (non-doc).
    LineComment,
    /// `/* … */`, possibly nested (non-doc).
    BlockComment,
    /// `/// …`, `//! …`, `/** … */` or `/*! … */`.
    DocComment,
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`, `'_`).
    Lifetime,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    CharLit,
    /// String or byte-string literal (`"…"`, `b"…"`), possibly multi-line.
    StrLit,
    /// Raw string literal (`r"…"`, `r##"…"##`, `br#"…"#`), any hash count.
    RawStrLit,
    /// Numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// A single punctuation character.
    Punct,
}

/// One token: its kind, byte span, and the 1-based line/column it starts at.
#[derive(Clone, Copy, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based column (in characters) of the first byte.
    pub col: usize,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Whether the token is code rather than whitespace or a comment.
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokenKind::Whitespace
                | TokenKind::LineComment
                | TokenKind::BlockComment
                | TokenKind::DocComment
        )
    }
}

/// Character cursor with line/column tracking. All lookahead is bounds
/// checked, which is what makes the lexer total.
struct Cursor {
    chars: Vec<(usize, char)>,
    src_len: usize,
    i: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Self {
            chars: src.char_indices().collect(),
            src_len: src.len(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).map(|&(_, c)| c)
    }

    /// Byte offset of the next unconsumed character (or end of input).
    fn offset(&self) -> usize {
        self.chars.get(self.i).map_or(self.src_len, |&(o, _)| o)
    }

    fn at_end(&self) -> bool {
        self.i >= self.chars.len()
    }

    fn bump(&mut self) {
        if let Some(&(_, c)) = self.chars.get(self.i) {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a complete, gap-free token stream.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while !cur.at_end() {
        let start = cur.offset();
        let (line, col) = (cur.line, cur.col);
        let kind = next_kind(&mut cur);
        // Defensive: a lexer bug that consumes nothing would loop forever;
        // consume one char as an opaque Punct instead.
        if cur.offset() == start {
            cur.bump();
        }
        out.push(Token {
            kind,
            start,
            end: cur.offset(),
            line,
            col,
        });
    }
    out
}

/// Consumes one token's characters and returns its kind.
fn next_kind(cur: &mut Cursor) -> TokenKind {
    let Some(c) = cur.peek(0) else {
        return TokenKind::Whitespace;
    };
    if c.is_whitespace() {
        while cur.peek(0).is_some_and(char::is_whitespace) {
            cur.bump();
        }
        return TokenKind::Whitespace;
    }
    if c == '/' {
        match cur.peek(1) {
            Some('/') => return line_comment(cur),
            Some('*') => return block_comment(cur),
            _ => {}
        }
    }
    if c == 'r' || c == 'b' {
        if let Some(kind) = string_prefix(cur, c) {
            return kind;
        }
    }
    if is_ident_start(c) {
        // Raw identifier: `r#name` (the raw-string case `r#"` was already
        // ruled out above).
        if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
            cur.bump(); // r
            cur.bump(); // #
        }
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return TokenKind::Ident;
    }
    if c.is_ascii_digit() {
        return number(cur);
    }
    match c {
        '"' => string(cur),
        '\'' => lifetime_or_char(cur),
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

fn line_comment(cur: &mut Cursor) -> TokenKind {
    // `///` (but not `////`) and `//!` are doc comments.
    let doc = match cur.peek(2) {
        Some('/') => cur.peek(3) != Some('/'),
        Some('!') => true,
        _ => false,
    };
    while cur.peek(0).is_some_and(|c| c != '\n') {
        cur.bump();
    }
    if doc {
        TokenKind::DocComment
    } else {
        TokenKind::LineComment
    }
}

fn block_comment(cur: &mut Cursor) -> TokenKind {
    // `/**` (but not `/***` or the empty `/**/`) and `/*!` are doc comments.
    let doc = match cur.peek(2) {
        Some('*') => !matches!(cur.peek(3), Some('*') | Some('/')),
        Some('!') => true,
        _ => false,
    };
    cur.bump_n(2);
    let mut depth = 1u32;
    while depth > 0 && !cur.at_end() {
        if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
            depth += 1;
            cur.bump_n(2);
        } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
            depth -= 1;
            cur.bump_n(2);
        } else {
            cur.bump();
        }
    }
    if doc {
        TokenKind::DocComment
    } else {
        TokenKind::BlockComment
    }
}

/// Handles the `r` / `b` prefixed literal forms: `r"…"`, `r#…"…"#…`,
/// `b"…"`, `b'…'`, `br#"…"#`. Returns `None` when the prefix is actually
/// the start of a plain identifier (including raw identifiers `r#name`).
fn string_prefix(cur: &mut Cursor, c: char) -> Option<TokenKind> {
    let raw_from = |j: usize, cur: &Cursor| -> Option<usize> {
        // Counts `#`s from lookahead position `j`; Some(hashes) if a `"`
        // follows them (i.e. this really is a raw string opener).
        let mut hashes = 0usize;
        while cur.peek(j + hashes) == Some('#') {
            hashes += 1;
        }
        (cur.peek(j + hashes) == Some('"')).then_some(hashes)
    };
    if c == 'r' {
        if let Some(hashes) = raw_from(1, cur) {
            cur.bump_n(1 + hashes + 1); // r, #s, opening quote
            raw_string_body(cur, hashes);
            return Some(TokenKind::RawStrLit);
        }
        return None; // identifier (possibly raw identifier `r#name`)
    }
    // c == 'b'
    match cur.peek(1) {
        Some('"') => {
            cur.bump(); // b
            Some(string(cur))
        }
        Some('\'') => {
            cur.bump(); // b
            Some(char_literal(cur))
        }
        Some('r') => {
            if let Some(hashes) = raw_from(2, cur) {
                cur.bump_n(2 + hashes + 1); // b, r, #s, opening quote
                raw_string_body(cur, hashes);
                return Some(TokenKind::RawStrLit);
            }
            None
        }
        _ => None,
    }
}

/// Consumes a raw-string body up to `"` followed by `hashes` `#`s (or EOF).
fn raw_string_body(cur: &mut Cursor, hashes: usize) {
    while !cur.at_end() {
        if cur.peek(0) == Some('"') {
            let closed = (0..hashes).all(|k| cur.peek(1 + k) == Some('#'));
            if closed {
                cur.bump_n(1 + hashes);
                return;
            }
        }
        cur.bump();
    }
}

/// Consumes a normal (possibly multi-line) string literal from its `"`.
fn string(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        if c == '\\' {
            cur.bump_n(2);
        } else if c == '"' {
            cur.bump();
            break;
        } else {
            cur.bump();
        }
    }
    TokenKind::StrLit
}

/// Disambiguates `'a` (lifetime) from `'a'` / `'\n'` (char literal).
fn lifetime_or_char(cur: &mut Cursor) -> TokenKind {
    let next = cur.peek(1);
    if next.is_some_and(is_ident_start) && cur.peek(2) != Some('\'') {
        cur.bump(); // quote
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return TokenKind::Lifetime;
    }
    char_literal(cur)
}

/// Consumes a char literal from its `'`. Stops at the closing quote, a
/// newline (char literals cannot span lines — this bounds the damage of a
/// stray apostrophe), or EOF.
fn char_literal(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek(0) {
        match c {
            '\\' => cur.bump_n(2),
            '\'' => {
                cur.bump();
                break;
            }
            '\n' => break,
            _ => cur.bump(),
        }
    }
    TokenKind::CharLit
}

/// Consumes a numeric literal: decimal/hex/octal/binary integers, floats
/// with fraction and exponent, underscores, and type suffixes. `0..n`
/// ranges are left intact (the `.` is only consumed when a digit follows).
fn number(cur: &mut Cursor) -> TokenKind {
    let radix_prefix = cur.peek(0) == Some('0')
        && matches!(
            cur.peek(1),
            Some('x') | Some('X') | Some('o') | Some('O') | Some('b') | Some('B')
        );
    if radix_prefix {
        cur.bump_n(2);
        while cur
            .peek(0)
            .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
        {
            cur.bump();
        }
    } else {
        while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            cur.bump();
        }
        // Fraction: only when a digit follows the dot (`0..n` stays a range).
        if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            cur.bump();
            while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                cur.bump();
            }
        }
        // Exponent: `e`/`E` with optional sign, only when digits follow.
        if matches!(cur.peek(0), Some('e') | Some('E')) {
            let (sign, digit_at) = match cur.peek(1) {
                Some('+') | Some('-') => (1, 2),
                _ => (0, 1),
            };
            if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                cur.bump_n(1 + sign);
                while cur.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    cur.bump();
                }
            }
        }
    }
    // Type suffix (`u32`, `f64`, `usize`, …) and any trailing hex letters.
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    TokenKind::NumLit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn sig_texts(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .filter(|t| t.is_significant())
            .map(|t| t.text(src).to_string())
            .collect()
    }

    fn roundtrip(src: &str) {
        let joined: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(joined, src, "lossless round-trip failed");
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            sig_texts("a.b::c!"),
            vec!["a", ".", "b", ":", ":", "c", "!"]
        );
        roundtrip("a.b::c!  d");
    }

    #[test]
    fn strings_hide_their_contents() {
        let src = "let s = \"panic! .unwrap()\"; x";
        let sig = sig_texts(src);
        assert!(sig.contains(&"\"panic! .unwrap()\"".to_string()));
        // The string is ONE StrLit token — `panic` is not an Ident here.
        let kinds: Vec<TokenKind> = lex(src).iter().map(|t| t.kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == TokenKind::StrLit).count(), 1);
        roundtrip(src);
    }

    #[test]
    fn multiline_raw_strings_are_one_token() {
        let src = "let s = r##\"line1 .unwrap()\nline2 \"# not closed\nend\"##; y";
        let toks = texts(src);
        let raw: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::RawStrLit)
            .collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].1.contains("line2"));
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("y"));
        roundtrip(src);
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let src = "let r#type = 1;";
        assert!(sig_texts(src).contains(&"r#type".to_string()));
        roundtrip(src);
    }

    #[test]
    fn byte_literals() {
        let src = "let a = b\"bytes\"; let c = b'\\n'; let r = br#\"raw\"#;";
        let kinds: Vec<TokenKind> = lex(src)
            .iter()
            .filter(|t| t.is_significant())
            .map(|t| t.kind)
            .collect();
        assert!(kinds.contains(&TokenKind::StrLit));
        assert!(kinds.contains(&TokenKind::CharLit));
        assert!(kinds.contains(&TokenKind::RawStrLit));
        roundtrip(src);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "impl<'a> Foo<'a> { fn f(c: char) -> bool { c == '\"' || c == '\\'' } }";
        let toks = texts(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::CharLit)
                .count(),
            2
        );
        roundtrip(src);
    }

    #[test]
    fn nested_block_comments_and_docs() {
        let src =
            "/* outer /* inner */ still */ code /// doc\nx //! also\n/** blockdoc */ //// plain";
        let toks = texts(src);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::DocComment)
                .count(),
            3
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::LineComment)
                .count(),
            1
        );
        roundtrip(src);
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            sig_texts("0..10 1.5e-3 0xFFu32 1_000"),
            vec!["0", ".", ".", "10", "1.5e-3", "0xFFu32", "1_000"]
        );
        roundtrip("for i in 0..n { x[i] = 1.0e9; }");
    }

    #[test]
    fn unterminated_literals_reach_eof_without_panic() {
        for src in ["\"never closed", "r#\"open", "/* open", "'\\", "b\"x"] {
            roundtrip(src);
        }
    }

    #[test]
    fn line_and_col_are_tracked() {
        let toks = lex("ab\n  cd");
        let cd = toks.last().copied();
        assert!(cd.is_some_and(|t| t.line == 2 && t.col == 3));
    }
}
