//! Lint rules and the per-file token-stream analysis passes.
//!
//! Each rule is a pass over a [`FileTokens`] view of one source file.
//! [`classify`] decides which passes apply to which workspace file;
//! [`scan_file`] runs them and returns [`Diagnostic`]s.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::OnceLock;

use crate::engine::{needle, FileTokens, Needle};
use crate::lexer::TokenKind;

/// A lint rule identifier.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` family in library code.
    NoPanic,
    /// Unseeded randomness outside tests.
    UnseededRng,
    /// `std::time` usage in model/forward code.
    WallClock,
    /// Undocumented `pub fn` in a substrate crate.
    MissingDocs,
    /// Multi-tensor op entry point without a shape assertion.
    ShapeAssert,
    /// Hand-rolled training epoch loop outside `crates/train`.
    EpochLoop,
    /// Raw `std::thread` usage outside the sanctioned pool crates.
    RawThread,
    /// Direct file write bypassing `mhg_ckpt::atomic_write`.
    RawFileWrite,
    /// Raw `eprintln!` bypassing the `mhg-obs` sinks.
    NoEprintln,
    /// Iteration over a `HashMap`/`HashSet` whose order can leak out.
    OrderedIteration,
    /// Atomic memory-ordering use outside the sanctioned pattern.
    AtomicOrdering,
    /// Unchecked length/size arithmetic on a persistence path.
    UncheckedArith,
    /// Source-level crate dependency violating the substrate DAG.
    CrateLayering,
    /// `lint.allow` entry that matches no current finding.
    DeadAllow,
    /// `lint.allow` entry with no justification comment above it.
    UnjustifiedAllow,
}

impl Rule {
    /// Stable rule name used in reports and the allowlist.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::UnseededRng => "unseeded-rng",
            Rule::WallClock => "wall-clock",
            Rule::MissingDocs => "missing-docs",
            Rule::ShapeAssert => "shape-assert",
            Rule::EpochLoop => "epoch-loop",
            Rule::RawThread => "raw-thread",
            Rule::RawFileWrite => "raw-file-write",
            Rule::NoEprintln => "no-eprintln",
            Rule::OrderedIteration => "ordered-iteration",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::UncheckedArith => "unchecked-arith",
            Rule::CrateLayering => "crate-layering",
            Rule::DeadAllow => "dead-allow",
            Rule::UnjustifiedAllow => "unjustified-allow",
        }
    }
}

/// A single finding: file, position, rule and message.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// Trimmed source line, used for allowlist matching.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rules apply to a given file.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Crate directory name (`crates/<krate>/…`).
    pub krate: String,
    /// The file is a binary entry point (`src/bin/` or `src/main.rs`).
    pub is_bin: bool,
    /// Panic-freedom applies.
    pub no_panic: bool,
    /// Seeded-randomness rule applies.
    pub unseeded_rng: bool,
    /// Wall-clock rule applies.
    pub wall_clock: bool,
    /// Doc-coverage rule applies.
    pub missing_docs: bool,
    /// Shape-assertion rule applies.
    pub shape_assert: bool,
    /// Epoch-loop rule applies.
    pub epoch_loop: bool,
    /// Raw-thread rule applies.
    pub raw_thread: bool,
    /// Raw-file-write rule applies.
    pub raw_file_write: bool,
    /// No-eprintln rule applies.
    pub no_eprintln: bool,
    /// Ordered-iteration rule applies.
    pub ordered_iteration: bool,
    /// `Ordering::Relaxed` is permitted without an allowlist entry.
    pub atomic_relaxed_ok: bool,
    /// Unchecked-arithmetic rule applies (persistence paths).
    pub unchecked_arith: bool,
    /// Crate-layering rule applies.
    pub layering: bool,
}

/// Crates whose forward/training path must never read the wall clock.
const WALL_CLOCK_CRATES: &[&str] = &["tensor", "autograd", "sampling", "models", "hybridgnn"];

/// Substrate crates whose public API must be documented.
const DOCS_CRATES: &[&str] = &["tensor", "autograd", "graph"];

/// Decides which rules apply to `rel_path` (workspace-relative, `/`
/// separators). Returns `None` for files the linter does not scan.
pub fn classify(rel_path: &str) -> Option<FileClass> {
    if !rel_path.ends_with(".rs") || !rel_path.starts_with("crates/") {
        return None;
    }
    let rest = &rel_path["crates/".len()..];
    let (krate, tail) = rest.split_once('/')?;
    if !tail.starts_with("src/") {
        return None;
    }
    let is_bin = tail.starts_with("src/bin/") || tail == "src/main.rs";
    Some(FileClass {
        krate: krate.to_string(),
        is_bin,
        no_panic: !is_bin,
        unseeded_rng: true,
        wall_clock: WALL_CLOCK_CRATES.contains(&krate),
        missing_docs: DOCS_CRATES.contains(&krate) && !is_bin,
        shape_assert: rel_path == "crates/tensor/src/ops.rs"
            || rel_path == "crates/tensor/src/tensor.rs",
        epoch_loop: krate != "train",
        raw_thread: krate != "par" && krate != "train",
        raw_file_write: krate != "ckpt",
        no_eprintln: krate != "obs" && !is_bin,
        ordered_iteration: true,
        atomic_relaxed_ok: krate == "obs",
        unchecked_arith: krate == "ckpt"
            || rel_path == "crates/graph/src/persist.rs"
            || rel_path == "crates/graph/src/shard_codec.rs"
            || rel_path == "crates/graph/src/sharded.rs"
            || rel_path == "crates/graph/src/heal.rs",
        layering: true,
    })
}

fn rule_enabled(class: &FileClass, rule: Rule) -> bool {
    match rule {
        Rule::NoPanic => class.no_panic,
        Rule::UnseededRng => class.unseeded_rng,
        Rule::WallClock => class.wall_clock,
        Rule::EpochLoop => class.epoch_loop,
        Rule::RawThread => class.raw_thread,
        Rule::RawFileWrite => class.raw_file_write,
        Rule::NoEprintln => class.no_eprintln,
        _ => false,
    }
}

/// Token-needle patterns for the substring-style rules.
fn patterns() -> &'static [(Rule, Needle, &'static str)] {
    static PATTERNS: OnceLock<Vec<(Rule, Needle, &'static str)>> = OnceLock::new();
    PATTERNS.get_or_init(|| {
        vec![
            (
                Rule::NoPanic,
                needle(".unwrap()"),
                "`.unwrap()` in library code — return a Result or assert with context",
            ),
            (
                Rule::NoPanic,
                needle(".expect("),
                "`.expect(...)` in library code — return a Result or assert with context",
            ),
            (
                Rule::NoPanic,
                needle("panic!"),
                "`panic!` in library code — return a Result or assert with context",
            ),
            (
                Rule::NoPanic,
                needle("unreachable!"),
                "`unreachable!` in library code — encode the invariant in the types",
            ),
            (
                Rule::NoPanic,
                needle("todo!("),
                "`todo!` must not ship in library code",
            ),
            (
                Rule::NoPanic,
                needle("unimplemented!"),
                "`unimplemented!` must not ship in library code",
            ),
            (
                Rule::UnseededRng,
                needle("thread_rng"),
                "unseeded RNG — derive the stream from an explicit seed",
            ),
            (
                Rule::UnseededRng,
                needle("from_entropy"),
                "entropy-seeded RNG — derive the stream from an explicit seed",
            ),
            (
                Rule::UnseededRng,
                needle("rand::random"),
                "unseeded RNG — derive the stream from an explicit seed",
            ),
            (
                Rule::WallClock,
                needle("std::time"),
                "wall clock in model code — timing belongs to the bench harness",
            ),
            (
                Rule::WallClock,
                needle("Instant::now"),
                "wall clock in model code — timing belongs to the bench harness",
            ),
            (
                Rule::WallClock,
                needle("SystemTime::now"),
                "wall clock in model code — timing belongs to the bench harness",
            ),
            (
                Rule::EpochLoop,
                needle("for epoch in"),
                "hand-rolled epoch loop — drive training through `mhg_train::train`",
            ),
            (
                Rule::RawThread,
                needle("thread::spawn"),
                "raw thread spawn — use the deterministic `mhg_par` pool",
            ),
            (
                Rule::RawThread,
                needle("thread::scope"),
                "raw scoped threads — use the deterministic `mhg_par` pool",
            ),
            (
                Rule::RawFileWrite,
                needle("File::create"),
                "raw file write — route persistence through `mhg_ckpt::atomic_write`",
            ),
            (
                Rule::RawFileWrite,
                needle("fs::write"),
                "raw file write — route persistence through `mhg_ckpt::atomic_write`",
            ),
            (
                Rule::NoEprintln,
                needle("eprintln!"),
                "raw `eprintln!` — route reporting through the `mhg-obs` registry/sinks",
            ),
        ]
    })
}

/// Builds a diagnostic anchored at significant token `i`.
fn diag_at(
    ft: &FileTokens<'_>,
    rel_path: &str,
    i: usize,
    rule: Rule,
    message: String,
) -> Diagnostic {
    Diagnostic {
        file: rel_path.to_string(),
        line: ft.sig_line(i),
        col: ft.sig_col(i),
        rule,
        message,
        snippet: ft.snippet_at(i).to_string(),
    }
}

/// Scans one file's source and returns every finding.
///
/// `rel_path` selects the applicable rules via [`classify`]; files the
/// linter does not cover yield no findings.
pub fn scan_file(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let Some(class) = classify(rel_path) else {
        return Vec::new();
    };
    let ft = FileTokens::new(source);
    let mut diags = Vec::new();

    needle_pass(&ft, &class, rel_path, &mut diags);
    if class.missing_docs {
        docs_pass(&ft, rel_path, &mut diags);
    }
    if class.shape_assert {
        shape_pass(&ft, rel_path, &mut diags);
    }
    if class.ordered_iteration {
        ordered_iteration_pass(&ft, rel_path, &mut diags);
    }
    atomic_pass(&ft, &class, rel_path, &mut diags);
    if class.unchecked_arith {
        unchecked_pass(&ft, rel_path, &mut diags);
    }
    if class.layering {
        layering_pass(&ft, &class, rel_path, &mut diags);
    }

    diags.sort_by(|a, b| (a.line, a.col, a.rule.name()).cmp(&(b.line, b.col, b.rule.name())));
    diags
}

/// Substring-style rules via token needles (whitespace-insensitive,
/// identifier-boundary-exact).
fn needle_pass(ft: &FileTokens<'_>, class: &FileClass, rel_path: &str, out: &mut Vec<Diagnostic>) {
    for (rule, ndl, message) in patterns() {
        if !rule_enabled(class, *rule) {
            continue;
        }
        for i in ndl.find_all(ft) {
            if ft.sig_in_test(i) {
                continue;
            }
            out.push(diag_at(ft, rel_path, i, *rule, (*message).to_string()));
        }
    }
}

/// Doc-coverage: every non-test `pub fn` must carry an attached doc comment.
fn docs_pass(ft: &FileTokens<'_>, rel_path: &str, out: &mut Vec<Diagnostic>) {
    for i in 0..ft.sig_len() {
        if ft.sig_text(i) != "pub" || ft.sig_in_test(i) {
            continue;
        }
        let mut j = i + 1;
        if ft.sig_text(j) == "(" {
            continue; // `pub(crate)` &c. are not part of the public API
        }
        while matches!(ft.sig_text(j), "const" | "unsafe") {
            j += 1;
        }
        if ft.sig_text(j) != "fn" {
            continue;
        }
        if !ft.has_doc_comment(i) {
            out.push(diag_at(
                ft,
                rel_path,
                i,
                Rule::MissingDocs,
                "undocumented `pub fn` in substrate crate".to_string(),
            ));
        }
    }
}

/// Index of the `>` matching the `<` at `open` (fn signatures only, where
/// every `<`/`>` between the name and the parameter list is a generic
/// delimiter).
fn matching_angle(ft: &FileTokens<'_>, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for j in open..ft.sig_len() {
        match ft.sig_text(j) {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Shape-assert: a `pub fn` combining two or more tensors must assert in
/// its body.
fn shape_pass(ft: &FileTokens<'_>, rel_path: &str, out: &mut Vec<Diagnostic>) {
    let n = ft.sig_len();
    for i in 0..n {
        if ft.sig_text(i) != "pub" || ft.sig_in_test(i) {
            continue;
        }
        let mut j = i + 1;
        while matches!(ft.sig_text(j), "const" | "unsafe") {
            j += 1;
        }
        if ft.sig_text(j) != "fn" {
            continue;
        }
        let mut k = j + 2; // past the fn name
        if ft.sig_text(k) == "<" {
            let Some(close) = matching_angle(ft, k) else {
                continue;
            };
            k = close + 1;
        }
        if ft.sig_text(k) != "(" {
            continue;
        }
        let Some(close) = ft.matching(k, "(", ")") else {
            continue;
        };
        let mut tensors = 0usize;
        let mut has_self = false;
        for p in k + 1..close {
            match ft.sig_text(p) {
                "Tensor" => {
                    // A slice of tensors combines at least two.
                    let slice = p >= 2
                        && ft.sig_text(p - 1) == "&"
                        && ft.sig_text(p - 2) == "["
                        && ft.sig_text(p + 1) == "]";
                    tensors += if slice { 2 } else { 1 };
                }
                "self" => has_self = true,
                _ => {}
            }
        }
        if has_self {
            tensors += 1; // methods on Tensor: the receiver is a tensor
        }
        if tensors < 2 {
            continue;
        }
        // Body: the first `{` after the parameter list (a `;` first means a
        // bodiless declaration).
        let mut b = close + 1;
        while b < n && ft.sig_text(b) != "{" && ft.sig_text(b) != ";" {
            b += 1;
        }
        if b >= n || ft.sig_text(b) == ";" {
            continue;
        }
        let Some(bclose) = ft.matching(b, "{", "}") else {
            continue;
        };
        let asserted = (b..bclose).any(|p| ft.sig_text(p).contains("assert"));
        if !asserted {
            out.push(diag_at(
                ft,
                rel_path,
                i,
                Rule::ShapeAssert,
                "multi-tensor op entry point without a shape assertion".to_string(),
            ));
        }
    }
}

/// Iteration-producing methods on hash collections.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Collects names bound to `HashMap`/`HashSet` in this file: `let` bindings,
/// struct fields and `name: HashMap<…>` parameters.
fn hash_binding_names(ft: &FileTokens<'_>) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..ft.sig_len() {
        let t = ft.sig_text(i);
        if (t != "HashMap" && t != "HashSet") || ft.sig_kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let (start, _) = ft.statement_range(i);
        let mut found: Option<String> = None;
        let mut j = i;
        while j > start {
            j -= 1;
            match ft.sig_text(j) {
                ":" => {
                    let single = (j == 0 || ft.sig_text(j - 1) != ":") && ft.sig_text(j + 1) != ":";
                    if single {
                        if j >= 1 && ft.sig_kind(j - 1) == Some(TokenKind::Ident) {
                            found = Some(ft.sig_text(j - 1).to_string());
                        }
                        break;
                    }
                }
                "(" | ")" | "{" | "}" | ";" | "=" | "," => break,
                _ => {}
            }
        }
        if found.is_none() && ft.sig_text(start) == "let" {
            let mut k = start + 1;
            if ft.sig_text(k) == "mut" {
                k += 1;
            }
            if ft.sig_kind(k) == Some(TokenKind::Ident) {
                found = Some(ft.sig_text(k).to_string());
            }
        }
        if let Some(name) = found {
            names.insert(name);
        }
    }
    names
}

/// Whether any token in `s..=e` signals an explicit ordering fix: a `sort*`
/// call, or collecting into a B-tree collection.
fn range_has_order_marker(ft: &FileTokens<'_>, s: usize, e: usize) -> bool {
    (s..=e).any(|j| {
        let t = ft.sig_text(j);
        t.contains("sort") || t == "BTreeMap" || t == "BTreeSet"
    })
}

/// Ordered-iteration: flags iteration over hash-ordered collections unless
/// the surrounding statement (or the one after it) sorts the result.
fn ordered_iteration_pass(ft: &FileTokens<'_>, rel_path: &str, out: &mut Vec<Diagnostic>) {
    let names = hash_binding_names(ft);
    if names.is_empty() {
        return;
    }
    for i in 0..ft.sig_len() {
        if ft.sig_kind(i) != Some(TokenKind::Ident) || ft.sig_in_test(i) {
            continue;
        }
        let t = ft.sig_text(i);
        if !names.contains(t) {
            continue;
        }
        let method_iter = ft.sig_text(i + 1) == "."
            && ITER_METHODS.contains(&ft.sig_text(i + 2))
            && ft.sig_text(i + 3) == "(";
        let for_iter = {
            let mut p = i;
            while p > 0 && matches!(ft.sig_text(p - 1), "&" | "mut") {
                p -= 1;
            }
            p > 0 && ft.sig_text(p - 1) == "in"
        };
        if !method_iter && !for_iter {
            continue;
        }
        let (s, e) = ft.statement_range(i);
        let mut exempt = range_has_order_marker(ft, s, e);
        if !exempt && e + 1 < ft.sig_len() {
            let (s2, e2) = ft.statement_range(e + 1);
            exempt = range_has_order_marker(ft, s2, e2);
        }
        if exempt {
            continue;
        }
        out.push(diag_at(
            ft,
            rel_path,
            i,
            Rule::OrderedIteration,
            format!(
                "iteration over hash-ordered `{t}` can leak nondeterministic order — \
                 use BTreeMap/BTreeSet or sort before use"
            ),
        ));
    }
}

/// The atomic memory orderings the audit recognises.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic-ordering audit: `Ordering::Relaxed` counters are free only in
/// `crates/obs`; every other ordering use needs a justified allowlist entry.
fn atomic_pass(ft: &FileTokens<'_>, class: &FileClass, rel_path: &str, out: &mut Vec<Diagnostic>) {
    for i in 0..ft.sig_len() {
        if ft.sig_text(i) != "Ordering" || ft.sig_text(i + 1) != ":" || ft.sig_text(i + 2) != ":" {
            continue;
        }
        let kind = ft.sig_text(i + 3);
        if !ATOMIC_ORDERINGS.contains(&kind) || ft.sig_in_test(i) {
            continue;
        }
        if kind == "Relaxed" && class.atomic_relaxed_ok {
            continue;
        }
        let message = if kind == "Relaxed" {
            "`Ordering::Relaxed` outside crates/obs — atomics belong in the obs \
             registry; justify exceptions in lint.allow"
                .to_string()
        } else {
            format!(
                "`Ordering::{kind}` — stronger-than-Relaxed ordering needs a justified \
                 lint.allow entry explaining the happens-before edge it creates"
            )
        };
        out.push(diag_at(ft, rel_path, i, Rule::AtomicOrdering, message));
    }
}

/// Size accessors whose narrowing must be checked on persistence paths.
const SIZE_ACCESSORS: &[&str] = &["len", "rows", "cols", "num_nodes", "num_edges"];

/// Idents that mark a statement as already overflow-aware.
fn overflow_aware(t: &str) -> bool {
    t.starts_with("checked_")
        || t.starts_with("saturating_")
        || t == "with_capacity"
        || t == "reserve"
        || t.contains("assert")
        || t == "try_from"
}

/// Whether the statement around significant token `i` is overflow-aware.
/// The left edge is widened past unmatched openers to the enclosing
/// `;`/`{`/`}` so a wrapping call like `Vec::with_capacity(…)` is visible
/// from an argument expression.
fn stmt_overflow_aware(ft: &FileTokens<'_>, i: usize) -> bool {
    let (s, e) = ft.statement_range(i);
    let mut s2 = s;
    while s2 > 0 && !matches!(ft.sig_text(s2 - 1), ";" | "{" | "}") {
        s2 -= 1;
    }
    (s2..=e).any(|j| overflow_aware(ft.sig_text(j)))
}

/// Unchecked-arithmetic: on persistence paths, length/size narrowing and
/// length multiplication must go through checked helpers.
fn unchecked_pass(ft: &FileTokens<'_>, rel_path: &str, out: &mut Vec<Diagnostic>) {
    for i in 0..ft.sig_len() {
        if ft.sig_in_test(i) {
            continue;
        }
        let t = ft.sig_text(i);
        // `len() as u32` style narrowing of a size accessor.
        if SIZE_ACCESSORS.contains(&t)
            && ft.sig_text(i + 1) == "("
            && ft.sig_text(i + 2) == ")"
            && ft.sig_text(i + 3) == "as"
            && matches!(ft.sig_text(i + 4), "u16" | "u32")
        {
            if !stmt_overflow_aware(ft, i) {
                out.push(diag_at(
                    ft,
                    rel_path,
                    i,
                    Rule::UncheckedArith,
                    format!(
                        "unchecked narrowing `{}() as {}` on a persistence path — use a \
                         checked conversion helper",
                        t,
                        ft.sig_text(i + 4)
                    ),
                ));
            }
            continue;
        }
        // Binary `*` in a statement that computes with a length.
        if t == "*" {
            let binary = i > 0
                && (matches!(
                    ft.sig_kind(i - 1),
                    Some(TokenKind::Ident) | Some(TokenKind::NumLit)
                ) || matches!(ft.sig_text(i - 1), ")" | "]"));
            if !binary {
                continue;
            }
            let (s, e) = ft.statement_range(i);
            let has_len = (s..e).any(|j| {
                ft.sig_text(j) == "len" && ft.sig_text(j + 1) == "(" && ft.sig_text(j + 2) == ")"
            });
            if has_len && !stmt_overflow_aware(ft, i) {
                out.push(diag_at(
                    ft,
                    rel_path,
                    i,
                    Rule::UncheckedArith,
                    "unchecked length multiplication on a persistence path — use \
                     checked_mul"
                        .to_string(),
                ));
            }
        }
    }
}

/// Workspace crate idents and their directory names.
const CRATE_IDENTS: &[(&str, &str)] = &[
    ("mhg_tensor", "tensor"),
    ("mhg_autograd", "autograd"),
    ("mhg_par", "par"),
    ("mhg_ckpt", "ckpt"),
    ("mhg_graph", "graph"),
    ("mhg_obs", "obs"),
    ("mhg_sampling", "sampling"),
    ("mhg_datasets", "datasets"),
    ("mhg_eval", "eval"),
    ("mhg_train", "train"),
    ("mhg_models", "models"),
    ("mhg_hybridgnn", "hybridgnn"),
    ("mhg_bench", "bench"),
    ("mhg_faults", "faults"),
    ("mhg_lint", "lint"),
    ("mhg_race", "race"),
];

/// The substrate DAG: which crates each crate may reference at source level.
/// Self-references are always allowed; crates absent from the table are not
/// layer-checked (extend the table when adding a crate).
const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("par", &[]),
    ("faults", &[]),
    ("lint", &[]),
    ("tensor", &["par"]),
    ("ckpt", &["tensor", "faults"]),
    ("autograd", &["tensor", "par", "ckpt"]),
    ("graph", &["ckpt", "faults", "obs"]),
    ("obs", &["ckpt", "par", "faults"]),
    ("sampling", &["graph", "par", "faults", "obs"]),
    ("datasets", &["graph", "sampling"]),
    ("eval", &["graph"]),
    (
        "train",
        &["par", "graph", "sampling", "ckpt", "faults", "obs"],
    ),
    (
        "models",
        &[
            "tensor", "autograd", "graph", "sampling", "train", "obs", "ckpt", "datasets", "eval",
        ],
    ),
    (
        "hybridgnn",
        &[
            "tensor", "autograd", "graph", "sampling", "datasets", "eval", "models", "train",
            "ckpt", "par", "obs",
        ],
    ),
    (
        "bench",
        &[
            "tensor",
            "autograd",
            "graph",
            "sampling",
            "datasets",
            "eval",
            "models",
            "train",
            "ckpt",
            "par",
            "obs",
            "faults",
            "hybridgnn",
        ],
    ),
    ("race", &["obs", "par"]),
];

/// Crate-layering: source references to sibling workspace crates must follow
/// the substrate DAG (tensor/autograd/par stay below train/models/bench).
fn layering_pass(
    ft: &FileTokens<'_>,
    class: &FileClass,
    rel_path: &str,
    out: &mut Vec<Diagnostic>,
) {
    let Some((_, allowed)) = ALLOWED_DEPS.iter().find(|(k, _)| *k == class.krate) else {
        return;
    };
    for i in 0..ft.sig_len() {
        if ft.sig_kind(i) != Some(TokenKind::Ident) || ft.sig_in_test(i) {
            continue;
        }
        let t = ft.sig_text(i);
        if !t.starts_with("mhg_") {
            continue;
        }
        let Some((_, dep)) = CRATE_IDENTS.iter().find(|(ident, _)| *ident == t) else {
            continue; // not a workspace crate ident
        };
        if *dep == class.krate || allowed.contains(dep) {
            continue;
        }
        out.push(diag_at(
            ft,
            rel_path,
            i,
            Rule::CrateLayering,
            format!(
                "layering violation: crate `{}` must not depend on `{}` — the \
                 substrate DAG only allows [{}]",
                class.krate,
                dep,
                allowed.join(", ")
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_selects_rules_by_crate() {
        let t = classify("crates/tensor/src/ops.rs").expect("tensor file is scanned");
        assert!(t.no_panic && t.wall_clock && t.missing_docs && t.shape_assert);
        assert!(!t.atomic_relaxed_ok && !t.unchecked_arith);
        let b = classify("crates/bench/src/bin/exp_table4.rs").expect("bin file is scanned");
        assert!(!b.no_panic && b.unseeded_rng && !b.wall_clock);
        let o = classify("crates/obs/src/registry.rs").expect("obs file is scanned");
        assert!(o.atomic_relaxed_ok);
        let c = classify("crates/ckpt/src/codec.rs").expect("ckpt file is scanned");
        assert!(c.unchecked_arith);
        let p = classify("crates/graph/src/persist.rs").expect("persist file is scanned");
        assert!(p.unchecked_arith);
        assert!(classify("crates/lint/tests/fixtures/x.rs").is_none());
        assert!(classify("third_party/rand/src/lib.rs").is_none());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() { y.unwrap(); }\n";
        let diags = scan_file("crates/eval/src/fake.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn ordered_iteration_flags_hash_for_loops() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    m.insert(1, 2);\n    for (k, v) in &m { emit(k, v); }\n}\n";
        let diags = scan_file("crates/eval/src/fake.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::OrderedIteration);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn ordered_iteration_accepts_sorted_drains() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    let mut v: Vec<_> = m.drain().collect();\n    v.sort_unstable();\n}\n";
        let diags = scan_file("crates/eval/src/fake.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn atomic_pass_permits_relaxed_only_in_obs() {
        let src = "fn f(c: &std::sync::atomic::AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n    c.load(Ordering::SeqCst);\n}\n";
        let obs = scan_file("crates/obs/src/fake.rs", src);
        assert_eq!(obs.len(), 1, "{obs:?}");
        assert_eq!(obs[0].rule, Rule::AtomicOrdering);
        assert_eq!(obs[0].line, 3);
        let other = scan_file("crates/eval/src/fake.rs", src);
        assert_eq!(other.len(), 2, "{other:?}");
    }

    #[test]
    fn unchecked_pass_flags_narrowing_and_mul() {
        let src = "fn f(v: &[u8], out: &mut Vec<u8>) {\n    let n = v.len() as u32;\n    let bytes = 4 * v.len();\n    out.push(n as u8);\n    let _ = bytes;\n}\n";
        let diags = scan_file("crates/ckpt/src/fake.rs", src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == Rule::UncheckedArith));
    }

    #[test]
    fn unchecked_pass_accepts_checked_helpers() {
        let src = "fn f(v: &[u8]) -> u32 {\n    assert!(v.len() <= u32::MAX as usize);\n    let n = u32::try_from(v.len()).unwrap_or(u32::MAX);\n    n\n}\n";
        let diags: Vec<_> = scan_file("crates/ckpt/src/fake.rs", src)
            .into_iter()
            .filter(|d| d.rule == Rule::UncheckedArith)
            .collect();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn layering_pass_enforces_the_dag() {
        let src = "use mhg_train::train;\nfn f() { train(); }\n";
        let diags = scan_file("crates/tensor/src/fake.rs", src);
        assert!(
            diags.iter().any(|d| d.rule == Rule::CrateLayering),
            "{diags:?}"
        );
        let ok = scan_file("crates/models/src/fake.rs", src);
        assert!(!ok.iter().any(|d| d.rule == Rule::CrateLayering), "{ok:?}");
    }
}
