//! CLI for the workspace linter: `cargo run -p mhg-lint` (or `cargo lint`).
//!
//! Scans `crates/*/src/**.rs` from the workspace root, applies and audits
//! the `lint.allow` allowlist, prints diagnostics and exits nonzero when
//! unsuppressed violations remain.
//!
//! Options:
//!
//! * `--root <dir>` — workspace root to scan (default: the root the binary
//!   was built in).
//! * `--allowlist <file>` — allowlist path (default: `<root>/lint.allow`).
//! * `--format <text|json>` — report format (default: `text`). JSON goes to
//!   stdout so CI can capture it without the linter writing files itself.

use std::path::PathBuf;
use std::process::ExitCode;

use mhg_lint::OutputFormat;

fn main() -> ExitCode {
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from);
    let mut root = default_root;
    let mut allowlist: Option<PathBuf> = None;
    let mut format = OutputFormat::Text;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root requires a directory"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist = Some(PathBuf::from(v)),
                None => return usage("--allowlist requires a file"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = OutputFormat::Text,
                Some("json") => format = OutputFormat::Json,
                _ => return usage("--format requires `text` or `json`"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: mhg-lint [--root <dir>] [--allowlist <file>] [--format text|json]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let Some(root) = root else {
        return usage("could not determine the workspace root; pass --root");
    };
    let allowlist = allowlist.unwrap_or_else(|| root.join("lint.allow"));

    match mhg_lint::run(&root, &allowlist, format) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("mhg-lint: i/o error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "mhg-lint: {problem}\nusage: mhg-lint [--root <dir>] [--allowlist <file>] [--format text|json]"
    );
    ExitCode::from(2)
}
