//! Token-stream analysis context shared by every lint rule.
//!
//! [`FileTokens`] wraps one file's lexed token stream with the structural
//! facts the rules need: the significant-token view (whitespace and
//! comments dropped), `#[cfg(test)]` region marking at item granularity,
//! statement boundaries, doc-comment attachment, and whitespace-insensitive
//! needle matching over token sequences.

use crate::lexer::{lex, Token, TokenKind};

/// One file's token stream plus derived structure.
pub struct FileTokens<'s> {
    /// The source text.
    pub src: &'s str,
    /// The complete lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Per-*significant*-token flag: inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Raw source lines, for diagnostic snippets.
    pub lines: Vec<&'s str>,
}

impl<'s> FileTokens<'s> {
    /// Lexes `src` and computes the derived structure.
    pub fn new(src: &'s str) -> Self {
        let tokens = lex(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.is_significant().then_some(i))
            .collect();
        let mut ft = Self {
            src,
            tokens,
            sig,
            in_test: Vec::new(),
            lines: src.lines().collect(),
        };
        ft.in_test = ft.mark_test_regions();
        ft
    }

    /// The text of significant token `i` (an index into `self.sig`).
    pub fn sig_text(&self, i: usize) -> &'s str {
        self.sig
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map_or("", |t| t.text(self.src))
    }

    /// The kind of significant token `i`.
    pub fn sig_kind(&self, i: usize) -> Option<TokenKind> {
        self.sig
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map(|t| t.kind)
    }

    /// The 1-based line of significant token `i`.
    pub fn sig_line(&self, i: usize) -> usize {
        self.sig
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map_or(1, |t| t.line)
    }

    /// The 1-based column of significant token `i`.
    pub fn sig_col(&self, i: usize) -> usize {
        self.sig
            .get(i)
            .and_then(|&ti| self.tokens.get(ti))
            .map_or(1, |t| t.col)
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// Whether significant token `i` is inside a `#[cfg(test)]` item.
    pub fn sig_in_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    /// The trimmed source line containing significant token `i`.
    pub fn snippet_at(&self, i: usize) -> &'s str {
        let line = self.sig_line(i);
        self.lines
            .get(line.saturating_sub(1))
            .map_or("", |l| l.trim())
    }

    /// Marks significant tokens covered by `#[cfg(test)]` items: from the
    /// attribute's `#` through the matching `}` of the item's body (or the
    /// `;` of a braceless item). Handles `cfg(all(test, …))`; deliberately
    /// ignores `cfg_attr(test, …)` because that item still exists in
    /// non-test builds.
    fn mark_test_regions(&self) -> Vec<bool> {
        let n = self.sig.len();
        let mut in_test = vec![false; n];
        let mut i = 0usize;
        while i < n {
            if self.sig_text(i) == "#" && self.sig_text(i + 1) == "[" {
                let Some(close) = self.matching(i + 1, "[", "]") else {
                    break;
                };
                if self.attr_is_cfg_test(i + 2, close) {
                    let end = self.item_end_after(close + 1).unwrap_or(n - 1);
                    for flag in in_test.iter_mut().take(end + 1).skip(i) {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = close + 1;
                continue;
            }
            i += 1;
        }
        in_test
    }

    /// Whether the attribute tokens in `(start..close)` spell a `cfg(…)`
    /// whose arguments mention the bare `test` predicate.
    fn attr_is_cfg_test(&self, start: usize, close: usize) -> bool {
        if self.sig_text(start) != "cfg" {
            return false;
        }
        (start + 1..close).any(|j| self.sig_text(j) == "test")
    }

    /// Finds the end of the item starting at significant index `from`
    /// (skipping any further attributes): the matching `}` of its first
    /// brace, or the `;` of a braceless item.
    fn item_end_after(&self, mut from: usize) -> Option<usize> {
        let n = self.sig.len();
        // Skip stacked attributes between the cfg and the item itself.
        while from < n && self.sig_text(from) == "#" && self.sig_text(from + 1) == "[" {
            from = self.matching(from + 1, "[", "]")? + 1;
        }
        let mut j = from;
        while j < n {
            match self.sig_text(j) {
                ";" => return Some(j),
                "{" => return self.matching(j, "{", "}"),
                "(" => j = self.matching(j, "(", ")")? + 1,
                "[" => j = self.matching(j, "[", "]")? + 1,
                _ => j += 1,
            }
        }
        None
    }

    /// Index of the significant token matching the opener at `open`
    /// (`open_t` / `close_t` are single-char delimiter texts).
    pub fn matching(&self, open: usize, open_t: &str, close_t: &str) -> Option<usize> {
        let mut depth = 0i64;
        let n = self.sig.len();
        let mut j = open;
        while j < n {
            let t = self.sig_text(j);
            if t == open_t {
                depth += 1;
            } else if t == close_t {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            j += 1;
        }
        None
    }

    /// The significant-index range of the statement containing `i`:
    /// expands left to just after the previous `;`/`{`/`}` at the same
    /// nesting depth, and right to the next `;` at the same depth (or a
    /// closing delimiter that dedents past the start). Both ends inclusive.
    pub fn statement_range(&self, i: usize) -> (usize, usize) {
        let n = self.sig.len();
        // Left scan.
        let mut start = i;
        let mut depth = 0i64;
        while start > 0 {
            let t = self.sig_text(start - 1);
            match t {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            start -= 1;
        }
        // Right scan.
        let mut end = i;
        let mut depth = 0i64;
        while end + 1 < n {
            let t = self.sig_text(end);
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        (start, end)
    }

    /// Whether significant token `i` has an attached doc comment: walking
    /// backward over whitespace and attribute groups, the first thing found
    /// is a doc comment. A plain comment or anything else breaks the chain
    /// (matching rustdoc's attachment rules closely enough for the
    /// missing-docs rule).
    pub fn has_doc_comment(&self, i: usize) -> bool {
        let Some(&tok_idx) = self.sig.get(i) else {
            return false;
        };
        let mut j = tok_idx;
        loop {
            if j == 0 {
                return false;
            }
            j -= 1;
            let Some(t) = self.tokens.get(j) else {
                return false;
            };
            match t.kind {
                TokenKind::Whitespace => continue,
                TokenKind::DocComment => return true,
                TokenKind::Punct if t.text(self.src) == "]" => {
                    // Skip the attribute group `#[ … ]` backwards.
                    let mut depth = 0i64;
                    loop {
                        let Some(t2) = self.tokens.get(j) else {
                            return false;
                        };
                        match t2.text(self.src) {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if j == 0 {
                            return false;
                        }
                        j -= 1;
                    }
                    // Step over the `#` introducing the attribute.
                    if j > 0 {
                        let before: Vec<usize> = (0..j).rev().collect();
                        let mut stepped = false;
                        for k in before {
                            let Some(t3) = self.tokens.get(k) else {
                                break;
                            };
                            if t3.kind == TokenKind::Whitespace {
                                continue;
                            }
                            if t3.text(self.src) == "#" {
                                j = k;
                                stepped = true;
                            }
                            break;
                        }
                        if !stepped {
                            return false;
                        }
                    }
                }
                _ => return false,
            }
        }
    }
}

/// A rule needle: a sequence of significant token texts, produced by lexing
/// the needle source itself, so matching is whitespace- and line-break-
/// insensitive and identifier-boundary-exact.
#[derive(Debug, Clone)]
pub struct Needle {
    parts: Vec<String>,
}

/// Compiles a needle from its source form (e.g. `".unwrap()"` becomes the
/// token sequence `. unwrap ( )`).
pub fn needle(src: &str) -> Needle {
    let toks = lex(src);
    Needle {
        parts: toks
            .iter()
            .filter(|t| t.is_significant())
            .map(|t| t.text(src).to_string())
            .collect(),
    }
}

impl Needle {
    /// Whether the needle matches at significant index `at`.
    pub fn matches_at(&self, ft: &FileTokens<'_>, at: usize) -> bool {
        !self.parts.is_empty()
            && self
                .parts
                .iter()
                .enumerate()
                .all(|(k, p)| ft.sig_text(at + k) == p)
    }

    /// All significant indices where the needle matches.
    pub fn find_all(&self, ft: &FileTokens<'_>) -> Vec<usize> {
        if self.parts.is_empty() {
            return Vec::new();
        }
        (0..ft.sig_len())
            .filter(|&i| self.matches_at(ft, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needles_match_across_lines_and_whitespace() {
        let ft = FileTokens::new("fn f() { x\n    .expect\n    (\"msg\"); }");
        let n = needle(".expect(");
        assert_eq!(n.find_all(&ft).len(), 1);
    }

    #[test]
    fn needles_respect_identifier_boundaries() {
        let ft = FileTokens::new("memfs::write(a); fs::write(b);");
        let n = needle("fs::write");
        let hits = n.find_all(&ft);
        assert_eq!(hits.len(), 1, "memfs must not match fs");
        assert_eq!(ft.sig_col(hits[0]), 18);
    }

    #[test]
    fn cfg_test_regions_cover_items() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() { y.unwrap(); }\n";
        let ft = FileTokens::new(src);
        let n = needle(".unwrap()");
        let hits = n.find_all(&ft);
        assert_eq!(hits.len(), 2);
        assert!(ft.sig_in_test(hits[0]));
        assert!(!ft.sig_in_test(hits[1]));
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn f() { x.unwrap(); }\n";
        let ft = FileTokens::new(src);
        let hits = needle(".unwrap()").find_all(&ft);
        assert_eq!(hits.len(), 1);
        assert!(!ft.sig_in_test(hits[0]));
    }

    #[test]
    fn cfg_all_test_counts_but_cfg_attr_does_not() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod a { fn t() { x.unwrap(); } }\n#[cfg_attr(test, allow(dead_code))]\nfn b() { y.unwrap(); }\n";
        let ft = FileTokens::new(src);
        let hits = needle(".unwrap()").find_all(&ft);
        assert_eq!(hits.len(), 2);
        assert!(ft.sig_in_test(hits[0]));
        assert!(!ft.sig_in_test(hits[1]));
    }

    #[test]
    fn statement_ranges_stop_at_semicolons() {
        let ft = FileTokens::new("let a = 1; let b = f(x, y); b.sort();");
        // Find the `f` call token.
        let f_at = (0..ft.sig_len()).find(|&i| ft.sig_text(i) == "f");
        let Some(f_at) = f_at else {
            unreachable!("token exists");
        };
        let (s, e) = ft.statement_range(f_at);
        let stmt: Vec<&str> = (s..=e).map(|i| ft.sig_text(i)).collect();
        assert_eq!(
            stmt,
            vec!["let", "b", "=", "f", "(", "x", ",", "y", ")", ";"]
        );
    }

    #[test]
    fn doc_attachment_skips_attributes_but_not_plain_comments() {
        let src = "/// doc\n#[inline]\npub fn a() {}\n// not doc\npub fn b() {}\n";
        let ft = FileTokens::new(src);
        let pubs: Vec<usize> = (0..ft.sig_len())
            .filter(|&i| ft.sig_text(i) == "pub")
            .collect();
        assert_eq!(pubs.len(), 2);
        assert!(ft.has_doc_comment(pubs[0]));
        assert!(!ft.has_doc_comment(pubs[1]));
    }
}
