//! End-to-end checks for the lint rules against known-bad fixture files,
//! plus a guard that the real workspace is clean under `lint.allow`.
//!
//! The fixtures live in `tests/fixtures/*.rs` and are never compiled; they
//! are fed to [`mhg_lint::scan_file`] under fabricated workspace-relative
//! paths so each rule's scoping applies as it would in the real tree.

use mhg_lint::{scan_file, Rule};

fn rules_fired(rel_path: &str, source: &str) -> Vec<(Rule, usize)> {
    scan_file(rel_path, source)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect()
}

fn count(fired: &[(Rule, usize)], rule: Rule) -> usize {
    fired.iter().filter(|(r, _)| *r == rule).count()
}

#[test]
fn panic_fixture_fires_no_panic_only_outside_tests() {
    let fired = rules_fired(
        "crates/models/src/bad_panics.rs",
        include_str!("fixtures/bad_panics.rs"),
    );
    // unwrap, expect, panic!, todo!, unreachable! — one each, and the
    // unwrap inside `#[cfg(test)]` must NOT count.
    assert_eq!(count(&fired, Rule::NoPanic), 5, "diagnostics: {fired:?}");
}

#[test]
fn panic_fixture_is_exempt_in_bin_targets() {
    let fired = rules_fired(
        "crates/bench/src/bin/bad_panics.rs",
        include_str!("fixtures/bad_panics.rs"),
    );
    assert_eq!(count(&fired, Rule::NoPanic), 0, "diagnostics: {fired:?}");
}

#[test]
fn write_fixture_fires_raw_file_write_outside_ckpt() {
    let src = include_str!("fixtures/bad_write.rs");
    // File::create + fs::write outside tests; the #[cfg(test)] write is
    // exempt.
    let fired = rules_fired("crates/bench/src/bad_write.rs", src);
    assert_eq!(
        count(&fired, Rule::RawFileWrite),
        2,
        "diagnostics: {fired:?}"
    );
    // The ckpt crate owns the atomic writer and is exempt.
    let in_ckpt = rules_fired("crates/ckpt/src/bad_write.rs", src);
    assert_eq!(
        count(&in_ckpt, Rule::RawFileWrite),
        0,
        "diagnostics: {in_ckpt:?}"
    );
    // Bin targets are NOT exempt: result writers must also be atomic.
    let in_bin = rules_fired("crates/bench/src/bin/bad_write.rs", src);
    assert_eq!(
        count(&in_bin, Rule::RawFileWrite),
        2,
        "diagnostics: {in_bin:?}"
    );
}

#[test]
fn eprintln_fixture_fires_outside_obs_and_bins() {
    let src = include_str!("fixtures/bad_eprintln.rs");
    // Two raw eprintln!s outside tests; the #[cfg(test)] one is exempt.
    let fired = rules_fired("crates/train/src/bad_eprintln.rs", src);
    assert_eq!(count(&fired, Rule::NoEprintln), 2, "diagnostics: {fired:?}");
    // The obs crate owns the stderr sink and is exempt.
    let in_obs = rules_fired("crates/obs/src/bad_eprintln.rs", src);
    assert_eq!(
        count(&in_obs, Rule::NoEprintln),
        0,
        "diagnostics: {in_obs:?}"
    );
    // Binary entry points talk to humans directly and are exempt.
    let in_bin = rules_fired("crates/bench/src/bin/bad_eprintln.rs", src);
    assert_eq!(
        count(&in_bin, Rule::NoEprintln),
        0,
        "diagnostics: {in_bin:?}"
    );
    let in_main = rules_fired("crates/lint/src/main.rs", src);
    assert_eq!(
        count(&in_main, Rule::NoEprintln),
        0,
        "diagnostics: {in_main:?}"
    );
}

#[test]
fn rng_fixture_fires_unseeded_rng() {
    let fired = rules_fired(
        "crates/sampling/src/bad_rng.rs",
        include_str!("fixtures/bad_rng.rs"),
    );
    // thread_rng, from_entropy, rand::random.
    assert_eq!(
        count(&fired, Rule::UnseededRng),
        3,
        "diagnostics: {fired:?}"
    );
}

#[test]
fn clock_fixture_fires_wall_clock_in_model_crates_only() {
    let src = include_str!("fixtures/bad_clock.rs");
    // std::time (use + return type), Instant::now, SystemTime::now.
    let in_models = rules_fired("crates/models/src/bad_clock.rs", src);
    assert_eq!(
        count(&in_models, Rule::WallClock),
        4,
        "diagnostics: {in_models:?}"
    );
    // The eval crate is allowed to measure wall-clock time.
    let in_eval = rules_fired("crates/eval/src/bad_clock.rs", src);
    assert_eq!(
        count(&in_eval, Rule::WallClock),
        0,
        "diagnostics: {in_eval:?}"
    );
}

#[test]
fn docs_fixture_fires_missing_docs_in_substrate_crates_only() {
    let src = include_str!("fixtures/bad_docs.rs");
    let in_tensor = rules_fired("crates/tensor/src/bad_docs.rs", src);
    // Only `undocumented` — the documented and private fns are fine.
    assert_eq!(
        count(&in_tensor, Rule::MissingDocs),
        1,
        "diagnostics: {in_tensor:?}"
    );
    // Doc coverage is not (yet) enforced outside tensor/autograd/graph.
    let in_models = rules_fired("crates/models/src/bad_docs.rs", src);
    assert_eq!(
        count(&in_models, Rule::MissingDocs),
        0,
        "diagnostics: {in_models:?}"
    );
}

#[test]
fn shape_fixture_fires_shape_assert_on_tensor_entry_points() {
    let src = include_str!("fixtures/bad_shape.rs");
    let in_ops = rules_fired("crates/tensor/src/ops.rs", src);
    // `unchecked_add` has no assert; `checked_mul` has one.
    assert_eq!(
        count(&in_ops, Rule::ShapeAssert),
        1,
        "diagnostics: {in_ops:?}"
    );
    // The rule only covers the tensor kernel files.
    let elsewhere = rules_fired("crates/models/src/ops.rs", src);
    assert_eq!(
        count(&elsewhere, Rule::ShapeAssert),
        0,
        "diagnostics: {elsewhere:?}"
    );
}

#[test]
fn epoch_fixture_fires_everywhere_but_the_train_crate() {
    let src = include_str!("fixtures/bad_epoch.rs");
    // One loop in library code; the `#[cfg(test)]` loop is exempt.
    let in_models = rules_fired("crates/models/src/bad_epoch.rs", src);
    assert_eq!(
        count(&in_models, Rule::EpochLoop),
        1,
        "diagnostics: {in_models:?}"
    );
    // Experiment binaries must not hand-roll epoch loops either.
    let in_bin = rules_fired("crates/bench/src/bin/bad_epoch.rs", src);
    assert_eq!(
        count(&in_bin, Rule::EpochLoop),
        1,
        "diagnostics: {in_bin:?}"
    );
    // The pipeline crate owns the loop.
    let in_train = rules_fired("crates/train/src/bad_epoch.rs", src);
    assert_eq!(
        count(&in_train, Rule::EpochLoop),
        0,
        "diagnostics: {in_train:?}"
    );
}

#[test]
fn thread_fixture_fires_raw_thread_outside_pool_crates() {
    let src = include_str!("fixtures/bad_thread.rs");
    // thread::spawn + thread::scope in library code; the `#[cfg(test)]`
    // spawn is exempt.
    let in_models = rules_fired("crates/models/src/bad_thread.rs", src);
    assert_eq!(
        count(&in_models, Rule::RawThread),
        2,
        "diagnostics: {in_models:?}"
    );
    // The pool crate and the pipeline crate own their threads.
    let in_par = rules_fired("crates/par/src/bad_thread.rs", src);
    assert_eq!(
        count(&in_par, Rule::RawThread),
        0,
        "diagnostics: {in_par:?}"
    );
    let in_train = rules_fired("crates/train/src/bad_thread.rs", src);
    assert_eq!(
        count(&in_train, Rule::RawThread),
        0,
        "diagnostics: {in_train:?}"
    );
}

#[test]
fn clean_fixture_passes_every_rule() {
    // Scan under the strictest scoping: a tensor kernel file gets every rule.
    let fired = rules_fired(
        "crates/tensor/src/clean.rs",
        include_str!("fixtures/clean.rs"),
    );
    assert!(fired.is_empty(), "diagnostics: {fired:?}");
}

/// Satellite 1 regression: these needles are split across line breaks, so a
/// line-oriented scanner cannot see them — prove that, then prove the
/// token-stream engine does.
#[test]
fn multiline_needles_invisible_to_line_scanner_are_caught() {
    let src = include_str!("fixtures/bad_multiline.rs");
    // The old scanner's view: no single line contains these needles.
    for needle in [".expect(", "for epoch in"] {
        assert!(
            !src.lines().any(|l| l.contains(needle)),
            "fixture drifted: `{needle}` fits on one line again"
        );
    }
    // The only single-line occurrences of `fs::write` / `rand::random` are
    // the *false-positive* bait inside `memfs::write` / `my_rand::random` —
    // a substring scanner would flag those and miss the real split call.
    for (needle, bait) in [("fs::write", "memfs"), ("rand::random", "my_rand")] {
        assert!(
            src.lines()
                .filter(|l| l.contains(needle))
                .all(|l| l.contains(bait)),
            "fixture drifted: `{needle}` appears outside its `{bait}` bait line"
        );
    }
    let fired = rules_fired("crates/models/src/bad_multiline.rs", src);
    assert_eq!(count(&fired, Rule::NoPanic), 1, "diagnostics: {fired:?}");
    assert_eq!(count(&fired, Rule::EpochLoop), 1, "diagnostics: {fired:?}");
    // Exactly the split `std::fs::↵write` call — not the `memfs::write` bait.
    let writes: Vec<usize> = fired
        .iter()
        .filter(|(r, _)| *r == Rule::RawFileWrite)
        .map(|&(_, line)| line)
        .collect();
    assert_eq!(writes.len(), 1, "diagnostics: {fired:?}");
    // Identifier-boundary exactness: `my_rand::random` must NOT fire.
    assert_eq!(
        count(&fired, Rule::UnseededRng),
        0,
        "diagnostics: {fired:?}"
    );
}

#[test]
fn hash_iter_fixture_fires_ordered_iteration() {
    let fired = rules_fired(
        "crates/models/src/bad_hash_iter.rs",
        include_str!("fixtures/bad_hash_iter.rs"),
    );
    // The for-loop and the `.keys()` chain; the sorted, BTreeMap and
    // `#[cfg(test)]` iterations are exempt.
    assert_eq!(
        count(&fired, Rule::OrderedIteration),
        2,
        "diagnostics: {fired:?}"
    );
}

#[test]
fn atomics_fixture_fires_outside_obs_only_for_relaxed() {
    let src = include_str!("fixtures/bad_atomics.rs");
    // Outside obs: Relaxed + Release + Acquire + SeqCst all fire; the
    // `#[cfg(test)]` SeqCst is exempt.
    let fired = rules_fired("crates/models/src/bad_atomics.rs", src);
    assert_eq!(
        count(&fired, Rule::AtomicOrdering),
        4,
        "diagnostics: {fired:?}"
    );
    // Inside obs: Relaxed is the blessed idiom, stronger orderings still
    // need justification.
    let in_obs = rules_fired("crates/obs/src/bad_atomics.rs", src);
    assert_eq!(
        count(&in_obs, Rule::AtomicOrdering),
        3,
        "diagnostics: {in_obs:?}"
    );
}

#[test]
fn unchecked_fixture_fires_on_persistence_paths_only() {
    let src = include_str!("fixtures/bad_unchecked.rs");
    // In ckpt: the bare `len() as u32`, `rows() as u16` and `8 * len()`.
    let in_ckpt = rules_fired("crates/ckpt/src/bad_unchecked.rs", src);
    assert_eq!(
        count(&in_ckpt, Rule::UncheckedArith),
        3,
        "diagnostics: {in_ckpt:?}"
    );
    // Outside the persistence paths the rule does not apply.
    let in_models = rules_fired("crates/models/src/bad_unchecked.rs", src);
    assert_eq!(
        count(&in_models, Rule::UncheckedArith),
        0,
        "diagnostics: {in_models:?}"
    );
}

#[test]
fn shard_len_fixture_fires_on_shard_codec_paths() {
    let src = include_str!("fixtures/bad_shard_len.rs");
    // In the shard codec: the bare `len() as u32` and `4 * len()`.
    for path in [
        "crates/graph/src/shard_codec.rs",
        "crates/graph/src/sharded.rs",
    ] {
        let fired = rules_fired(path, src);
        assert_eq!(
            count(&fired, Rule::UncheckedArith),
            2,
            "diagnostics for {path}: {fired:?}"
        );
    }
    // Other graph sources are outside the codec discipline.
    let in_csr = rules_fired("crates/graph/src/csr.rs", src);
    assert_eq!(
        count(&in_csr, Rule::UncheckedArith),
        0,
        "diagnostics: {in_csr:?}"
    );
}

#[test]
fn heal_fixture_fires_on_repair_codec_path() {
    let src = include_str!("fixtures/bad_heal_len.rs");
    // The rebuild-from-source repair path follows the same unchecked-arith
    // discipline as the codec it rewrites shards with.
    let fired = rules_fired("crates/graph/src/heal.rs", src);
    assert_eq!(
        count(&fired, Rule::UncheckedArith),
        2,
        "diagnostics: {fired:?}"
    );
    // The repair discipline does not leak into non-persistence graph code.
    let in_csr = rules_fired("crates/graph/src/csr.rs", src);
    assert_eq!(
        count(&in_csr, Rule::UncheckedArith),
        0,
        "diagnostics: {in_csr:?}"
    );
}

#[test]
fn layering_fixture_fires_on_inverted_dependencies() {
    let src = include_str!("fixtures/bad_layering.rs");
    // tensor must not reach up into train or bench; par is fine.
    let in_tensor = rules_fired("crates/tensor/src/bad_layering.rs", src);
    assert_eq!(
        count(&in_tensor, Rule::CrateLayering),
        2,
        "diagnostics: {in_tensor:?}"
    );
    // models may depend on train, but not on bench — and not on par, which
    // it reaches only indirectly through the train pipeline.
    let in_models = rules_fired("crates/models/src/bad_layering.rs", src);
    assert_eq!(
        count(&in_models, Rule::CrateLayering),
        2,
        "diagnostics: {in_models:?}"
    );
}

#[test]
fn dead_and_unjustified_allowlist_entries_are_reported() {
    let allow = mhg_lint::parse_allowlist(
        "# justified but matches nothing\n\
         no-panic crates/models/src/gone.rs .unwrap()\n\
         \n\
         unseeded-rng crates/models/src/bad_rng.rs thread_rng\n",
    );
    let diags = mhg_lint::scan_file(
        "crates/models/src/bad_rng.rs",
        include_str!("fixtures/bad_rng.rs"),
    );
    let audit = mhg_lint::audit_allowlist(&allow, &diags);
    let rules: Vec<&str> = audit.iter().map(|d| d.rule.name()).collect();
    assert!(rules.contains(&"dead-allow"), "audit: {audit:?}");
    assert!(rules.contains(&"unjustified-allow"), "audit: {audit:?}");
}

#[test]
fn workspace_is_clean_under_allowlist() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(std::path::Path::to_path_buf)
        .unwrap_or_default();
    let diags = mhg_lint::scan_workspace(&root).unwrap_or_default();
    let allow_text = std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allow = mhg_lint::parse_allowlist(&allow_text);
    let open: Vec<_> = diags
        .iter()
        .filter(|d| !mhg_lint::is_allowed(d, &allow))
        .collect();
    assert!(
        open.is_empty(),
        "workspace has unsuppressed lint violations:\n{}",
        open.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
    );
    // The allowlist itself must be healthy: every entry matches a live
    // diagnostic and carries a justification comment.
    let audit = mhg_lint::audit_allowlist(&allow, &diags);
    assert!(
        audit.is_empty(),
        "lint.allow has dead or unjustified entries:\n{}",
        audit
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
    );
}
