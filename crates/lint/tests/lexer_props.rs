//! Property-based invariants for the lint lexer (satellite 4).
//!
//! The engine's correctness rests on two lexer guarantees: it never
//! panics, and it is *lossless* — every byte of the source lands in
//! exactly one token, in order, so concatenating token texts reproduces
//! the input. Both are checked over arbitrary byte soup (via lossy UTF-8
//! decoding) and over Rust-flavoured token soup that stresses the tricky
//! productions (raw strings, block comments, lifetimes, float literals).

use mhg_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Rust-flavoured fragments biased toward lexer edge cases.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("r#\"raw \"quote\" inside\"#".to_string()),
        Just("r##\"nested \"# hash\"##".to_string()),
        Just("r#ident".to_string()),
        Just("/* block /* nested? */".to_string()),
        Just("// line comment".to_string()),
        Just("/// doc comment".to_string()),
        Just("'a".to_string()),
        Just("'x'".to_string()),
        Just("'\\n'".to_string()),
        Just("\"str with \\\" escape\"".to_string()),
        Just("1_000.5e-3".to_string()),
        Just("0xFF_u8".to_string()),
        Just("Vec<Vec<u8>>".to_string()),
        Just("a::b::<T>()".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("fn f() -> i32 { 0 }".to_string()),
        Just("\u{1F980} unicode".to_string()),
        Just("\"unterminated".to_string()),
        Just("r#\"unterminated raw".to_string()),
        Just("/* unterminated block".to_string()),
        Just(" \t\n ".to_string()),
        Just(String::new()),
    ]
}

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(fragment(), 0..12).prop_map(|parts| parts.join(" "))
}

/// Every byte in exactly one token, in order.
fn assert_lossless(src: &str) {
    let tokens = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut prev_end = 0usize;
    for t in &tokens {
        assert_eq!(t.start, prev_end, "gap or overlap at byte {prev_end}");
        assert!(t.end > t.start, "empty token at byte {}", t.start);
        rebuilt.push_str(t.text(src));
        prev_end = t.end;
    }
    assert_eq!(prev_end, src.len(), "trailing bytes not lexed");
    assert_eq!(rebuilt, src, "token round-trip lost bytes");
}

proptest! {
    /// The lexer must survive (and stay lossless on) arbitrary bytes.
    #[test]
    fn lexing_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_lossless(&src);
    }

    /// Rust-flavoured soup: lossless, and line/col bookkeeping is sane.
    #[test]
    fn rust_soup_round_trips(src in soup()) {
        assert_lossless(&src);
        let tokens = lex(&src);
        let mut prev = (1usize, 0usize);
        for t in &tokens {
            prop_assert!(t.line >= prev.0, "line numbers went backwards");
            prev = (t.line, t.col);
        }
    }

    /// String and char literals keep their quotes in `text()`, so a
    /// literal can never be mistaken for an identifier needle.
    #[test]
    fn literals_are_never_bare_idents(src in soup()) {
        for t in lex(&src) {
            if matches!(t.kind, TokenKind::StrLit | TokenKind::RawStrLit | TokenKind::CharLit) {
                let text = t.text(&src);
                prop_assert!(
                    !text.chars().all(|c| c.is_alphanumeric() || c == '_'),
                    "literal {text:?} looks like an ident"
                );
            }
        }
    }
}
