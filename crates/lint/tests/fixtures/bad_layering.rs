//! Fixture: substrate-DAG layering. Never compiled.

pub fn substrate_ok(units: usize) -> core::ops::Range<usize> {
    // `par` is below every compute crate, so this reference is fine from
    // tensor, autograd, train, …
    mhg_par::split_range(units, 2, 0)
}

pub fn inverted_dependency() {
    // A substrate crate reaching *up* into the pipeline inverts the DAG:
    // fires when this file is scanned as part of tensor/autograd/par.
    mhg_train::train_stub();
    let _ = mhg_bench::HARNESS_VERSION;
}
