//! Fixture: unchecked size arithmetic in the self-healing repair path.
//! Never compiled.

pub fn rebuild_shard(targets: &[u32]) -> Vec<u8> {
    // BAD: silent narrowing of the rebuilt target count.
    let count = targets.len() as u32;
    // BAD: unchecked payload-size multiplication before the rewrite.
    let payload = 4 * targets.len();
    let mut out = Vec::new();
    out.extend_from_slice(&count.to_le_bytes());
    out.reserve(payload);
    out
}

pub fn checked_rebuild(targets: &[u32]) -> Vec<u8> {
    // OK: capacity computation is overflow-aware by construction.
    let mut out = Vec::with_capacity(4 + 4 * targets.len());
    // OK: explicit checked multiplication for the re-verify guard.
    let payload = targets.len().checked_mul(4);
    let _ = payload;
    out.extend_from_slice(&0u32.to_le_bytes());
    out
}
