//! Fixture: needles split across line breaks — invisible to the old
//! line-oriented scanner, caught by the token-stream engine. Each bad
//! construct below breaks its needle across a newline; the companion
//! idents (`memfs::write`, `my_rand::random`) check identifier-boundary
//! exactness. Never compiled.

pub fn load(points: &[u64]) -> u64 {
    let first = points
        .first()
        .expect
        ("points must be non-empty");
    *first
}

pub fn train(epochs: usize) {
    for epoch
        in 0..epochs
    {
        let _ = epoch;
    }
}

pub fn persist(bytes: &[u8]) {
    std::fs::
        write("out.bin", bytes)
        .ok();
}

pub fn boundary_cases(bytes: &[u8]) -> u64 {
    // These must NOT fire: `write` and `random` live inside other idents'
    // paths (`memfs`, `my_rand` are not `fs` / `rand`).
    memfs::write("out.bin", bytes);
    my_rand::random()
}
