//! Fixture: unchecked size arithmetic in the sharded-store codec paths.
//! Never compiled.

pub fn encode_shard(targets: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    // BAD: silent narrowing of a target count.
    let count = targets.len() as u32;
    // BAD: unchecked byte-size multiplication.
    let bytes = 4 * targets.len();
    out.extend_from_slice(&count.to_le_bytes());
    out.reserve(bytes);
    out
}

pub fn checked_shard(targets: &[u32]) -> Vec<u8> {
    // OK: narrowing guarded by an assert in the same statement.
    let count = size_u32(targets.len());
    // OK: capacity computation is overflow-aware by construction.
    let mut out = Vec::with_capacity(4 + 4 * targets.len());
    out.extend_from_slice(&count.to_le_bytes());
    // OK: explicit checked multiplication for the payload guard.
    let payload = targets.len().checked_mul(4);
    let _ = payload;
    out
}

fn size_u32(n: usize) -> u32 {
    // OK: the assert shares the statement with the cast.
    assert!(u32::try_from(n).is_ok(), "size exceeds the u32 wire format");
    n as u32
}
