//! Fixture: unchecked size arithmetic on persistence paths. Never compiled.

pub fn encode(data: &[u8], rows: &Grid) -> Vec<u8> {
    let mut out = Vec::new();
    // BAD: silent narrowing of a length.
    let n = data.len() as u32;
    // BAD: silent narrowing of a dimension accessor.
    let r = rows.rows() as u16;
    // BAD: unchecked length multiplication.
    let total = 8 * data.len();
    out.extend_from_slice(&n.to_le_bytes());
    out.extend_from_slice(&r.to_le_bytes());
    out.truncate(total);
    out
}

pub fn checked_encode(data: &[u8]) -> Vec<u8> {
    // OK: narrowing guarded by an assert in the same statement.
    let n = size_u32(data.len());
    // OK: capacity computation is overflow-aware by construction.
    let mut out = Vec::with_capacity(4 + 8 * data.len());
    out.extend_from_slice(&n.to_le_bytes());
    // OK: explicit checked multiplication.
    let padded = data.len().checked_mul(8);
    let _ = padded;
    out
}

fn size_u32(n: usize) -> u32 {
    // OK: the assert shares the statement with the cast, and the cast is
    // of a plain variable, not a bare `len() as u32`.
    assert!(u32::try_from(n).is_ok(), "size exceeds the u32 wire format");
    n as u32
}
