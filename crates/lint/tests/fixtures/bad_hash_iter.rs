//! Fixture: iteration over hash-ordered collections. Never compiled.

use std::collections::{BTreeMap, HashMap};

pub fn leaky(counts: &HashMap<String, usize>) -> usize {
    let mut total = 0;
    // BAD: hash order flows straight into the fold.
    for (_k, v) in counts {
        total += v;
    }
    // BAD: method-style iteration, same problem.
    let first = counts.keys().next();
    let _ = first;
    total
}

pub fn sorted_is_fine(counts: &HashMap<String, usize>) -> Vec<String> {
    // OK: the very next statement sorts the collected keys.
    let mut keys: Vec<String> = counts.keys().cloned().collect();
    keys.sort();
    keys
}

pub fn btree_rebind_is_fine(counts: &HashMap<String, usize>) -> usize {
    // OK: draining into a BTreeMap restores a canonical order.
    let ordered: BTreeMap<&String, &usize> = counts.iter().collect();
    ordered.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_only(counts: &HashMap<String, usize>) -> usize {
        // OK: test code may iterate however it likes.
        counts.values().sum()
    }
}
