//! Lint fixture: known-bad panic patterns in a library crate.
//! Never compiled — read by `tests/fixtures.rs` via `include_str!`.

pub fn first(xs: &[f32]) -> f32 {
    *xs.first().unwrap()
}

pub fn parse(s: &str) -> u32 {
    s.parse().expect("not a number")
}

pub fn unsupported() -> ! {
    panic!("not supported");
}

pub fn later() {
    todo!("finish this")
}

pub fn never() {
    unreachable!()
}

#[cfg(test)]
mod tests {
    // Inside a test module the same patterns are fine.
    #[test]
    fn unwrap_is_ok_here() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
