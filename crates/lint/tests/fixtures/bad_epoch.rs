//! Fixture: a model that hand-rolls its training epoch loop instead of
//! driving `mhg_train::train`.

fn fit(epochs: usize) -> f32 {
    let mut loss = 0.0;
    for epoch in 0..epochs {
        loss = 1.0 / (epoch + 1) as f32;
    }
    loss
}

#[cfg(test)]
mod tests {
    // An epoch loop in test code is fine: tests may exercise toy loops.
    #[test]
    fn toy() {
        for epoch in 0..3 {
            let _ = epoch;
        }
    }
}
