//! Lint fixture: unseeded randomness outside tests.
//! Never compiled — read by `tests/fixtures.rs` via `include_str!`.

pub fn noise() -> f32 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn seed_from_os() -> u64 {
    let rng = SmallRng::from_entropy();
    rng.next_u64()
}

pub fn coin() -> bool {
    rand::random()
}
