//! Fixture: direct file writes that bypass the atomic persistence layer.

use std::fs;

pub fn torn_report(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    // A crash between create and write leaves a truncated file behind.
    let _f = fs::File::create(path)?;
    fs::write(path, bytes)
}

#[cfg(test)]
mod tests {
    // Tests may write files directly (e.g. to corrupt a checkpoint).
    fn corrupt(path: &std::path::Path) {
        std::fs::write(path, b"garbage").unwrap();
    }
}
