//! Lint fixture: wall-clock use inside model/forward code.
//! Never compiled — read by `tests/fixtures.rs` via `include_str!`.

use std::time::Instant;

pub fn forward_timed() -> f64 {
    let start = Instant::now();
    start.elapsed().as_secs_f64()
}

pub fn stamp() -> std::time::SystemTime {
    SystemTime::now()
}
