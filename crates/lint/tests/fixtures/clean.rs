//! Lint fixture: a file every rule should accept.
//! Never compiled — read by `tests/fixtures.rs` via `include_str!`.

/// Returns the first element, or zero for an empty slice.
pub fn first_or_zero(xs: &[f32]) -> f32 {
    xs.first().copied().unwrap_or(0.0)
}

/// Sums a slice; mentions "unwrap()" and thread_rng only in this doc
/// comment and in the string below, which the lexer must ignore.
pub fn sum(xs: &[f32]) -> f32 {
    let _note = "calling .unwrap() or thread_rng() in a string is fine";
    // .expect( in a comment is fine too
    xs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_allowed_in_tests() {
        let v: Option<f32> = Some(1.0);
        assert_eq!(v.unwrap(), 1.0);
    }
}
