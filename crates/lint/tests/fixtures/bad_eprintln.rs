//! Fixture: raw stderr reporting that bypasses the `mhg-obs` sinks.

pub fn report_progress(epoch: usize, loss: f32) {
    // Human output that never reaches metrics.jsonl — the two can disagree.
    eprintln!("epoch {epoch}: loss {loss:.4}");
}

pub fn warn_slow() {
    eprintln!("warning: sampler is slow");
}

#[cfg(test)]
mod tests {
    // Tests may print debug context directly.
    fn debug_dump(v: &[f32]) {
        eprintln!("values: {v:?}");
    }
}
