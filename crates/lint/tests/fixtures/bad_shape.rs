//! Lint fixture: tensor-op entry point without a shape assert.
//! Never compiled — read by `tests/fixtures.rs` via `include_str!`.

/// Adds two tensors without checking that their shapes agree.
pub fn unchecked_add(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = a.clone();
    for (o, v) in out.data.iter_mut().zip(b.data.iter()) {
        *o += v;
    }
    out
}

/// Multiplies two tensors; the assert satisfies the rule.
pub fn checked_mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "mul: shape mismatch");
    let mut out = a.clone();
    for (o, v) in out.data.iter_mut().zip(b.data.iter()) {
        *o *= v;
    }
    out
}
