//! Fixture: atomic memory orderings. Never compiled.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn relaxed_counter(cell: &AtomicU64) {
    // Allowed in crates/obs, a violation everywhere else.
    cell.fetch_add(1, Ordering::Relaxed);
}

pub fn strong_orderings(cell: &AtomicU64) -> u64 {
    // Stronger-than-Relaxed always needs a justified allowlist entry.
    cell.store(1, Ordering::Release);
    cell.load(Ordering::Acquire) + cell.swap(2, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_only(cell: &AtomicU64) -> u64 {
        // OK: test code is exempt from the audit.
        cell.load(Ordering::SeqCst)
    }
}
