//! raw-thread fixture: raw `std::thread` usage outside the pool crates.

use std::thread;

pub fn spawns_detached_worker() {
    let handle = thread::spawn(|| 1 + 1);
    drop(handle);
}

pub fn scopes_ad_hoc_workers(data: &mut [f32]) {
    thread::scope(|s| {
        for chunk in data.chunks_mut(8) {
            s.spawn(move || chunk.iter_mut().for_each(|v| *v += 1.0));
        }
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_threads_are_exempt() {
        let h = std::thread::spawn(|| ());
        let _ = h.join();
    }
}
