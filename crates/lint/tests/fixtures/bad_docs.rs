//! Lint fixture: undocumented `pub fn` in a substrate crate.
//! Never compiled — read by `tests/fixtures.rs` via `include_str!`.

/// Documented: no diagnostic for this one.
pub fn documented(x: f32) -> f32 {
    x * 2.0
}

pub fn undocumented(x: f32) -> f32 {
    x + 1.0
}

fn private_needs_no_docs(x: f32) -> f32 {
    x
}
