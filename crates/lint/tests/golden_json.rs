//! Pins the machine-readable JSON report format (satellite 4/5): CI and
//! the problem matcher parse this shape, so any change must be deliberate
//! and show up as a diff of `tests/golden_report.json`.

use mhg_lint::{is_allowed, parse_allowlist, render_json, scan_file, Diagnostic};

fn fixture_diags() -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    diags.extend(scan_file(
        "crates/models/src/bad_multiline.rs",
        include_str!("fixtures/bad_multiline.rs"),
    ));
    diags.extend(scan_file(
        "crates/models/src/bad_atomics.rs",
        include_str!("fixtures/bad_atomics.rs"),
    ));
    diags
}

#[test]
fn json_report_matches_golden() {
    let diags = fixture_diags();
    // Suppress one finding through the allowlist so the golden pins the
    // `"allowed": true` shape too.
    let allow = parse_allowlist(
        "# the relaxed counter in this fixture is the obs idiom under test\n\
         atomic-ordering crates/models/src/bad_atomics.rs Ordering::Relaxed\n",
    );
    let (suppressed, reported): (Vec<_>, Vec<_>) =
        diags.into_iter().partition(|d| is_allowed(d, &allow));
    let got = render_json(&reported, &suppressed);
    let want = include_str!("golden_report.json");
    assert!(
        got == want,
        "JSON report drifted from tests/golden_report.json.\n--- got ---\n{got}\n--- want ---\n{want}"
    );
}
