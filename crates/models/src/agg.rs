//! Shared tape-building helpers for the GNN baselines: sampled neighbor
//! aggregation expressed on the autograd graph.

use mhg_autograd::{Graph, ParamId, Var};
use mhg_graph::{MultiplexGraph, NodeId, RelationId};
use rand::Rng;

/// Samples up to `fan_out` neighbors of `v` merged across all relations.
pub(crate) fn sample_merged_neighbors<R: Rng + ?Sized>(
    graph: &MultiplexGraph,
    v: NodeId,
    fan_out: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let total = graph.total_degree(v);
    if total == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(fan_out.min(total));
    for _ in 0..fan_out {
        let mut pick = rng.gen_range(0..total);
        for r in graph.schema().relations() {
            let d = graph.degree(v, r);
            if pick < d {
                out.push(graph.neighbors(v, r)[pick]);
                break;
            }
            pick -= d;
        }
    }
    out
}

/// Samples up to `fan_out` neighbors of `v` under a single relation.
pub(crate) fn sample_relation_neighbors<R: Rng + ?Sized>(
    graph: &MultiplexGraph,
    v: NodeId,
    r: RelationId,
    fan_out: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let ns = graph.neighbors(v, r);
    if ns.is_empty() {
        return Vec::new();
    }
    (0..fan_out.min(ns.len()))
        .map(|_| ns[rng.gen_range(0..ns.len())])
        .collect()
}

/// Builds an `n × d` variable whose row `i` is the mean embedding of
/// `{nodes[i]} ∪ sampled-neighbors(nodes[i])` (GCN-style aggregation with
/// self-inclusion). Neighbors are merged across relations.
pub(crate) fn mean_self_neighbors<R: Rng + ?Sized>(
    g: &mut Graph<'_>,
    emb: ParamId,
    graph: &MultiplexGraph,
    nodes: &[NodeId],
    fan_out: usize,
    rng: &mut R,
) -> Var {
    let rows: Vec<Var> = nodes
        .iter()
        .map(|&v| {
            let mut ids: Vec<u32> = vec![v.0];
            ids.extend(
                sample_merged_neighbors(graph, v, fan_out, rng)
                    .iter()
                    .map(|n| n.0),
            );
            let gathered = g.gather(emb, &ids);
            g.mean_rows(gathered)
        })
        .collect();
    g.concat_rows(&rows)
}

/// Builds an `n × d` variable whose row `i` is the mean embedding of
/// sampled neighbors of `nodes[i]` under relation `r` (zero row when the
/// node is isolated under `r`).
pub(crate) fn mean_relation_neighbors<R: Rng + ?Sized>(
    g: &mut Graph<'_>,
    emb: ParamId,
    graph: &MultiplexGraph,
    nodes: &[NodeId],
    r: RelationId,
    fan_out: usize,
    rng: &mut R,
) -> Var {
    let rows: Vec<Var> = nodes
        .iter()
        .map(|&v| {
            let ids: Vec<u32> = sample_relation_neighbors(graph, v, r, fan_out, rng)
                .iter()
                .map(|n| n.0)
                .collect();
            if ids.is_empty() {
                // Self row scaled to zero keeps shapes consistent without a
                // dedicated zeros op.
                let self_row = g.gather(emb, &[v.0]);
                g.scale(self_row, 0.0)
            } else {
                let gathered = g.gather(emb, &ids);
                g.mean_rows(gathered)
            }
        })
        .collect();
    g.concat_rows(&rows)
}

/// Gathers the raw embedding rows of `nodes`.
pub(crate) fn gather_nodes(g: &mut Graph<'_>, emb: ParamId, nodes: &[NodeId]) -> Var {
    let ids: Vec<u32> = nodes.iter().map(|n| n.0).collect();
    g.gather(emb, &ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_autograd::ParamStore;
    use mhg_graph::{GraphBuilder, Schema};
    use mhg_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph() -> MultiplexGraph {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r = schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let ids: Vec<_> = (0..4).map(|_| b.add_node(t)).collect();
        b.add_edge(ids[0], ids[1], r);
        b.add_edge(ids[1], ids[2], r);
        b.add_edge(ids[2], ids[3], r);
        b.build()
    }

    #[test]
    fn mean_self_neighbors_shapes_and_values() {
        let graph = path_graph();
        let mut params = ParamStore::new();
        // Embedding: node i has constant row i.
        let emb = params.register(
            "emb",
            Tensor::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]),
        );
        let mut g = Graph::new(&params);
        let mut rng = StdRng::seed_from_u64(1);
        let rep = mean_self_neighbors(&mut g, emb, &graph, &[NodeId(0), NodeId(3)], 4, &mut rng);
        let t = g.value(rep);
        assert_eq!(t.rows(), 2);
        // Node 0's only neighbor is 1 → mean of rows {0, 1, 1, ...} ∈ (0, 1].
        assert!(t[(0, 0)] > 0.0 && t[(0, 0)] <= 1.0);
        // Node 3's only neighbor is 2 → mean of {3, 2, ...} ∈ [2, 3).
        assert!(t[(1, 0)] >= 2.0 && t[(1, 0)] < 3.0);
    }

    #[test]
    fn isolated_node_gets_zero_relation_row() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r = schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let a = b.add_node(t);
        let c = b.add_node(t);
        let iso = b.add_node(t);
        b.add_edge(a, c, r);
        let graph = b.build();

        let mut params = ParamStore::new();
        let emb = params.register("emb", Tensor::full(3, 2, 5.0));
        let mut g = Graph::new(&params);
        let mut rng = StdRng::seed_from_u64(2);
        let rep = mean_relation_neighbors(
            &mut g,
            emb,
            &graph,
            &[iso, a],
            mhg_graph::RelationId(0),
            3,
            &mut rng,
        );
        let t = g.value(rep);
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(1), &[5.0, 5.0]);
    }

    #[test]
    fn merged_sampling_covers_relations() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r0 = schema.add_relation("a");
        let r1 = schema.add_relation("b");
        let mut b = GraphBuilder::new(schema);
        let center = b.add_node(t);
        let via_a = b.add_node(t);
        let via_b = b.add_node(t);
        b.add_edge(center, via_a, r0);
        b.add_edge(center, via_b, r1);
        let graph = b.build();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..60 {
            for n in sample_merged_neighbors(&graph, center, 2, &mut rng) {
                seen.insert(n.0);
            }
        }
        assert!(seen.contains(&1) && seen.contains(&2));
    }
}
