//! Skip-gram with negative sampling (SGNS) — the shared training core of
//! the random-walk baselines (DeepWalk, node2vec, LINE's second-order half).
//!
//! Gradients are hand-rolled (the classic word2vec update): the loop runs
//! over millions of pairs per epoch, so avoiding tape construction per pair
//! matters far more than code reuse with the autograd engine. The autograd
//! engine remains the substrate for every model whose architecture is
//! non-trivial (GNNs, attention models).

use mhg_datasets::LabeledEdge;
use mhg_graph::NodeId;
use mhg_tensor::{sigmoid_scalar, InitKind, Tensor};
use mhg_train::{BatchLoss, PairExample, TrainStep};
use rand::rngs::StdRng;
use rand::Rng;

use crate::common::{val_auc, EmbeddingScores};

/// A pair of embedding tables trained with the SGNS objective.
#[derive(Clone, Debug)]
pub struct Sgns {
    emb: Tensor,
    ctx: Tensor,
}

impl Sgns {
    /// Initialises tables for `num_nodes` nodes with dimension `dim`
    /// (word2vec convention: uniform targets, zero contexts).
    pub fn new<R: Rng + ?Sized>(num_nodes: usize, dim: usize, rng: &mut R) -> Self {
        let limit = 0.5 / dim as f32;
        Self {
            emb: InitKind::Uniform { limit }.init(num_nodes, dim, rng),
            ctx: Tensor::zeros(num_nodes, dim),
        }
    }

    /// One SGNS step on `(center, context)` with sampled negatives.
    ///
    /// Returns the pair's loss `−log σ(s⁺) − Σ log σ(−s⁻)`.
    pub fn train_pair(
        &mut self,
        center: NodeId,
        context: NodeId,
        negatives: &[NodeId],
        lr: f32,
    ) -> f32 {
        let dim = self.emb.cols();
        let mut center_grad = vec![0.0f32; dim];
        let mut loss = 0.0f32;

        {
            // Positive target.
            let s = dot(self.emb.row(center.index()), self.ctx.row(context.index()));
            let p = sigmoid_scalar(s);
            loss -= mhg_tensor::log_sigmoid(s);
            let g = p - 1.0; // d loss / d s
            accumulate(&mut center_grad, self.ctx.row(context.index()), g);
            let (emb, ctx) = (&self.emb, &mut self.ctx);
            update_row(
                ctx.row_mut(context.index()),
                emb.row(center.index()),
                -lr * g,
            );
        }

        for &neg in negatives {
            if neg == context {
                continue;
            }
            let s = dot(self.emb.row(center.index()), self.ctx.row(neg.index()));
            let p = sigmoid_scalar(s);
            loss -= mhg_tensor::log_sigmoid(-s);
            let g = p; // label 0
            accumulate(&mut center_grad, self.ctx.row(neg.index()), g);
            let (emb, ctx) = (&self.emb, &mut self.ctx);
            update_row(ctx.row_mut(neg.index()), emb.row(center.index()), -lr * g);
        }

        update_row(self.emb.row_mut(center.index()), &center_grad, -lr);
        loss
    }

    /// The trained target-embedding table.
    pub fn embeddings(&self) -> &Tensor {
        &self.emb
    }

    /// Consumes the model, returning the target table.
    pub fn into_embeddings(self) -> Tensor {
        self.emb
    }

    /// The context table (LINE's second-order half uses it).
    pub fn contexts(&self) -> &Tensor {
        &self.ctx
    }

    /// Serialises both tables into `dict` under `prefix`.
    pub fn export_state(&self, prefix: &str, dict: &mut mhg_ckpt::StateDict) {
        dict.put_tensor(format!("{prefix}/emb"), self.emb.clone());
        dict.put_tensor(format!("{prefix}/ctx"), self.ctx.clone());
    }

    /// Restores tables exported by [`Sgns::export_state`]; the stored
    /// shapes must match the current (config-determined) ones.
    pub fn import_state(
        &mut self,
        prefix: &str,
        dict: &mhg_ckpt::StateDict,
    ) -> Result<(), mhg_ckpt::CkptError> {
        self.emb = crate::common::import_tensor_like(&self.emb, &format!("{prefix}/emb"), dict)?;
        self.ctx = crate::common::import_tensor_like(&self.ctx, &format!("{prefix}/ctx"), dict)?;
        Ok(())
    }
}

/// The shared `TrainStep` of the plain-SGNS walk baselines (DeepWalk,
/// node2vec): consumes pre-sampled [`PairExample`] batches, snapshots the
/// target+context tables on improvement.
pub(crate) struct SgnsStep<'a> {
    model: Sgns,
    lr: f32,
    val: &'a [LabeledEdge],
    scores: &'a mut EmbeddingScores,
    staged: EmbeddingScores,
}

impl<'a> SgnsStep<'a> {
    /// Wraps an initialized SGNS model and the slot its snapshot lands in.
    pub(crate) fn new(
        model: Sgns,
        lr: f32,
        val: &'a [LabeledEdge],
        scores: &'a mut EmbeddingScores,
    ) -> Self {
        Self {
            model,
            lr,
            val,
            scores,
            staged: EmbeddingScores::default(),
        }
    }
}

impl TrainStep for SgnsStep<'_> {
    type Batch = Vec<PairExample>;

    fn step(&mut self, batch: Vec<PairExample>, _rng: &mut StdRng) -> BatchLoss {
        let mut loss_sum = 0.0f64;
        let denom = batch.len();
        for ex in batch {
            loss_sum += self
                .model
                .train_pair(ex.center, ex.context, &ex.negatives, self.lr)
                as f64;
        }
        BatchLoss { loss_sum, denom }
    }

    fn eval(&mut self, _rng: &mut StdRng) -> f64 {
        self.staged = EmbeddingScores::shared(self.model.embeddings().clone())
            .with_context(self.model.contexts().clone());
        val_auc(&self.staged, self.val)
    }

    fn promote(&mut self) {
        *self.scores = std::mem::take(&mut self.staged);
    }

    fn is_fitted(&self) -> bool {
        self.scores.is_ready()
    }

    fn export_state(&self, dict: &mut mhg_ckpt::StateDict) {
        self.model.export_state("model/sgns", dict);
        self.scores.export_state("model/scores", dict);
    }

    fn import_state(&mut self, dict: &mhg_ckpt::StateDict) -> Result<(), mhg_ckpt::CkptError> {
        self.model.import_state("model/sgns", dict)?;
        self.scores.import_state("model/scores", dict)
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn accumulate(acc: &mut [f32], src: &[f32], scale: f32) {
    for (a, s) in acc.iter_mut().zip(src) {
        *a += scale * s;
    }
}

#[inline]
fn update_row(row: &mut [f32], grad: &[f32], step: f32) {
    for (r, g) in row.iter_mut().zip(grad) {
        *r += step * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two clusters {0,1,2} and {3,4,5}; pairs within clusters. SGNS should
    /// place intra-cluster dots above inter-cluster dots.
    #[test]
    fn learns_cluster_structure() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = Sgns::new(6, 16, &mut rng);
        let negatives_pool = [0u32, 1, 2, 3, 4, 5];
        for _ in 0..4000 {
            let cluster = rng.gen_range(0..2u32);
            let a = NodeId(cluster * 3 + rng.gen_range(0..3));
            let mut b = NodeId(cluster * 3 + rng.gen_range(0..3));
            while b == a {
                b = NodeId(cluster * 3 + rng.gen_range(0..3));
            }
            let negs: Vec<NodeId> = (0..3)
                .map(|_| NodeId(negatives_pool[rng.gen_range(0..6)]))
                .filter(|&n| n != b)
                .collect();
            model.train_pair(a, b, &negs, 0.05);
        }
        let emb = model.embeddings();
        let intra = emb.row_dot(0, emb, 1);
        let inter = emb.row_dot(0, emb, 4);
        assert!(
            intra > inter + 0.1,
            "intra {intra} should exceed inter {inter}"
        );
    }

    #[test]
    fn loss_decreases() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut model = Sgns::new(4, 8, &mut rng);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..500 {
            let l = model.train_pair(NodeId(0), NodeId(1), &[NodeId(2), NodeId(3)], 0.1);
            if i == 0 {
                first = l;
            }
            last = l;
        }
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn negative_equal_to_context_skipped() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut model = Sgns::new(3, 4, &mut rng);
        // Would be contradictory updates if not skipped; just verify finite.
        let loss = model.train_pair(NodeId(0), NodeId(1), &[NodeId(1), NodeId(2)], 0.1);
        assert!(loss.is_finite());
        assert!(model.embeddings().all_finite());
    }
}
