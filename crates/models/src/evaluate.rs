//! Shared evaluation: classification metrics over labelled edges and
//! ranking queries for PR@K / HR@K.

use std::collections::BTreeMap;

use mhg_datasets::LabeledEdge;
use mhg_eval::{best_f1_threshold, pr_auc, rank_candidates, roc_auc, RankedQuery};
use mhg_graph::{MultiplexGraph, NodeId, RelationId};
use rand::rngs::StdRng;
use rand::Rng;

use crate::common::LinkPredictor;

/// The classification metrics the paper reports per model and dataset.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelMetrics {
    /// Area under the ROC curve.
    pub roc_auc: f64,
    /// Area under the precision-recall curve.
    pub pr_auc: f64,
    /// F1 at the best threshold.
    pub f1: f64,
}

/// Scores labelled edges and computes ROC-AUC / PR-AUC / F1.
///
/// The F1 threshold is chosen on the same scored set for every model —
/// identical treatment keeps cross-model comparisons fair, which is what the
/// paper's tables measure.
pub fn evaluate(model: &dyn LinkPredictor, edges: &[LabeledEdge]) -> ModelMetrics {
    if edges.is_empty() {
        return ModelMetrics::default();
    }
    let scores: Vec<f32> = edges
        .iter()
        .map(|e| model.score(e.u, e.v, e.relation))
        .collect();
    let labels: Vec<bool> = edges.iter().map(|e| e.label).collect();
    let (_, f1) = best_f1_threshold(&scores, &labels);
    ModelMetrics {
        roc_auc: roc_auc(&scores, &labels),
        pr_auc: pr_auc(&scores, &labels),
        f1,
    }
}

/// One ranking query with its provenance, for degree-bucketed case studies.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The query's source node.
    pub source: NodeId,
    /// The relation being recommended under.
    pub relation: RelationId,
    /// The ranked relevance list.
    pub query: RankedQuery,
}

/// Builds per-source ranking queries from test positives.
///
/// For each `(source, relation)` with held-out positives, candidates are the
/// positives plus up to `pool` sampled non-edges of the matching target
/// type; the model ranks them all. At most `max_queries` queries are built
/// (in shuffled order) to bound cost on large graphs — the candidate pool
/// cap inflates absolute PR@K versus the paper's full-catalogue ranking but
/// preserves cross-model ordering.
pub fn ranking_queries(
    model: &dyn LinkPredictor,
    full_graph: &MultiplexGraph,
    test: &[LabeledEdge],
    pool: usize,
    max_queries: usize,
    rng: &mut StdRng,
) -> Vec<QueryResult> {
    // Group positives by (source, relation).
    let mut groups: BTreeMap<(NodeId, RelationId), Vec<NodeId>> = BTreeMap::new();
    for e in test.iter().filter(|e| e.label) {
        groups.entry((e.u, e.relation)).or_default().push(e.v);
    }
    // BTreeMap keys come out sorted, matching the explicit sort the
    // HashMap version needed before the seeded shuffle.
    let mut keys: Vec<(NodeId, RelationId)> = groups.keys().copied().collect();
    use rand::seq::SliceRandom;
    keys.shuffle(rng);
    keys.truncate(max_queries);

    let mut out = Vec::with_capacity(keys.len());
    for (source, relation) in keys {
        let relevant = &groups[&(source, relation)];
        let target_ty = full_graph.node_type(relevant[0]);
        let candidates_of_type = full_graph.nodes_of_type(target_ty);
        if candidates_of_type.len() < 2 {
            continue;
        }

        let mut candidates: Vec<(f32, bool)> = Vec::with_capacity(relevant.len() + pool);
        for &v in relevant {
            candidates.push((model.score(source, v, relation), true));
        }
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < pool && attempts < pool * 4 {
            attempts += 1;
            let cand = candidates_of_type[rng.gen_range(0..candidates_of_type.len())];
            if cand == source
                || relevant.contains(&cand)
                || full_graph.has_edge(source, cand, relation)
            {
                continue;
            }
            candidates.push((model.score(source, cand, relation), false));
            added += 1;
        }

        out.push(QueryResult {
            source,
            relation,
            query: rank_candidates(candidates, relevant.len()),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_graph::{GraphBuilder, Schema};
    use rand::SeedableRng;

    /// A fixture model that scores pairs by closeness of node ids.
    struct Oracle;
    impl LinkPredictor for Oracle {
        fn name(&self) -> &'static str {
            "Oracle"
        }
        fn fit(
            &mut self,
            _: &crate::FitData<'_>,
            _: &mut StdRng,
        ) -> Result<crate::TrainReport, crate::TrainError> {
            Ok(crate::TrainReport::default())
        }
        fn score(&self, u: NodeId, v: NodeId, _: RelationId) -> f32 {
            -((u.0 as f32) - (v.0 as f32)).abs()
        }
    }

    fn chain_graph(n: u32) -> MultiplexGraph {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r = schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let ids: Vec<_> = (0..n).map(|_| b.add_node(t)).collect();
        for i in 0..(n - 1) as usize {
            b.add_edge(ids[i], ids[i + 1], r);
        }
        b.build()
    }

    #[test]
    fn oracle_gets_high_metrics() {
        // Positives are adjacent ids, negatives far apart: the oracle
        // separates them perfectly.
        let r = RelationId(0);
        let edges = vec![
            LabeledEdge {
                u: NodeId(0),
                v: NodeId(1),
                relation: r,
                label: true,
            },
            LabeledEdge {
                u: NodeId(5),
                v: NodeId(6),
                relation: r,
                label: true,
            },
            LabeledEdge {
                u: NodeId(0),
                v: NodeId(9),
                relation: r,
                label: false,
            },
            LabeledEdge {
                u: NodeId(5),
                v: NodeId(0),
                relation: r,
                label: false,
            },
        ];
        let m = evaluate(&Oracle, &edges);
        assert!((m.roc_auc - 1.0).abs() < 1e-9);
        assert!((m.f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_edges_give_defaults() {
        let m = evaluate(&Oracle, &[]);
        assert_eq!(m.roc_auc, 0.0);
    }

    #[test]
    fn ranking_queries_grouped_by_source() {
        let g = chain_graph(20);
        let r = RelationId(0);
        let test = vec![
            LabeledEdge {
                u: NodeId(3),
                v: NodeId(4),
                relation: r,
                label: true,
            },
            LabeledEdge {
                u: NodeId(3),
                v: NodeId(2),
                relation: r,
                label: true,
            },
            LabeledEdge {
                u: NodeId(10),
                v: NodeId(11),
                relation: r,
                label: true,
            },
            // Negatives in the test set are ignored by query building.
            LabeledEdge {
                u: NodeId(3),
                v: NodeId(15),
                relation: r,
                label: false,
            },
        ];
        let mut rng = StdRng::seed_from_u64(1);
        let queries = ranking_queries(&Oracle, &g, &test, 10, 100, &mut rng);
        assert_eq!(queries.len(), 2);
        let q3 = queries.iter().find(|q| q.source == NodeId(3)).unwrap();
        assert_eq!(q3.query.num_relevant, 2);
        // Oracle ranks the two adjacent ids on top.
        assert!(q3.query.ranked[0] && q3.query.ranked[1]);
    }

    #[test]
    fn max_queries_respected() {
        let g = chain_graph(30);
        let r = RelationId(0);
        let test: Vec<LabeledEdge> = (0..20)
            .map(|i| LabeledEdge {
                u: NodeId(i),
                v: NodeId(i + 1),
                relation: r,
                label: true,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(2);
        let queries = ranking_queries(&Oracle, &g, &test, 5, 7, &mut rng);
        assert_eq!(queries.len(), 7);
    }
}
