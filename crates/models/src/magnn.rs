//! MAGNN baseline (Fu et al., WWW 2020): metapath aggregated GNN.
//!
//! Differs from HAN by encoding whole metapath *instances* (including the
//! intermediate nodes HAN discards): intra-metapath aggregation pools
//! sampled instance encodings with attention against the target node, then
//! inter-metapath (semantic) attention combines schemes. The instance
//! encoder is the mean of the node embeddings along the instance — the
//! mean-encoder variant of the original paper (its relational-rotation
//! encoder changes constants, not the comparison the tables make).

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore, Var};
use mhg_datasets::LabeledEdge;
use mhg_graph::{MetapathScheme, MultiplexGraph, NodeId, RelationId};
use mhg_sampling::NegativeSampler;
use mhg_tensor::{InitKind, Tensor};
use mhg_train::{edge_batches, BatchLoss, EdgeBatch, TrainStep};
use rand::rngs::StdRng;
use rand::Rng;

use crate::attention::{dot_attention_pool, semantic_attention};
use crate::common::{
    val_auc, CommonConfig, EmbeddingScores, FitData, LinkPredictor, TrainError, TrainReport,
};

const INSTANCES_PER_SCHEME: usize = 5;
const BATCH: usize = 96;

/// The MAGNN baseline.
pub struct Magnn {
    config: CommonConfig,
    scores: EmbeddingScores,
}

struct MagnnParams {
    emb: ParamId,
    w_scheme: Vec<ParamId>,
    w_sem: ParamId,
    b_sem: ParamId,
    q_sem: ParamId,
}

/// Samples one complete metapath instance starting at `v`, or `None` if the
/// walk gets stuck or `v` has the wrong type.
fn sample_instance<R: Rng + ?Sized>(
    graph: &MultiplexGraph,
    scheme: &MetapathScheme,
    v: NodeId,
    rng: &mut R,
) -> Option<Vec<NodeId>> {
    if graph.node_type(v) != scheme.source_type() {
        return None;
    }
    let mut path = Vec::with_capacity(scheme.len() + 1);
    path.push(v);
    let mut current = v;
    for (&r, &want) in scheme.relations().iter().zip(&scheme.node_types()[1..]) {
        let candidates: Vec<NodeId> = graph
            .neighbors(current, r)
            .iter()
            .copied()
            .filter(|&u| graph.node_type(u) == want)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        current = candidates[rng.gen_range(0..candidates.len())];
        path.push(current);
    }
    Some(path)
}

impl Magnn {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }

    fn schemes(data: &FitData<'_>) -> Vec<MetapathScheme> {
        let mut out = Vec::new();
        for shape in data.metapath_shapes {
            for r in data.graph.schema().relations() {
                out.push(MetapathScheme::intra(shape.clone(), r));
            }
        }
        out
    }

    fn represent_node(
        g: &mut Graph<'_>,
        p: &MagnnParams,
        graph: &MultiplexGraph,
        schemes: &[MetapathScheme],
        v: NodeId,
        rng: &mut StdRng,
    ) -> Var {
        let mut z_rows: Vec<Var> = Vec::with_capacity(schemes.len() + 1);

        for (si, scheme) in schemes.iter().enumerate() {
            // Encode each sampled instance as the mean of its node
            // embeddings (intermediate nodes included — MAGNN's point).
            let mut instance_rows: Vec<Var> = Vec::new();
            for _ in 0..INSTANCES_PER_SCHEME {
                let Some(path) = sample_instance(graph, scheme, v, rng) else {
                    continue;
                };
                let ids: Vec<u32> = path.iter().map(|n| n.0).collect();
                let gathered = g.gather(p.emb, &ids);
                instance_rows.push(g.mean_rows(gathered));
            }
            if instance_rows.is_empty() {
                continue;
            }
            let w = g.param(p.w_scheme[si]);
            let instances = g.concat_rows(&instance_rows);
            let keys = g.matmul(instances, w);
            let self_emb = g.gather(p.emb, &[v.0]);
            let query = g.matmul(self_emb, w);
            z_rows.push(dot_attention_pool(g, query, keys));
        }

        // Projected self row guarantees a non-empty stack.
        {
            let w = g.param(*p.w_scheme.last().unwrap());
            let self_emb = g.gather(p.emb, &[v.0]);
            z_rows.push(g.matmul(self_emb, w));
        }

        let z = g.concat_rows(&z_rows);
        let (pooled, _) = semantic_attention(g, z, p.w_sem, p.b_sem, p.q_sem);
        pooled
    }

    fn represent_batch(
        g: &mut Graph<'_>,
        p: &MagnnParams,
        graph: &MultiplexGraph,
        schemes: &[MetapathScheme],
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Var {
        let rows: Vec<Var> = nodes
            .iter()
            .map(|&v| Self::represent_node(g, p, graph, schemes, v, rng))
            .collect();
        g.concat_rows(&rows)
    }

    fn full_inference(
        params: &ParamStore,
        p: &MagnnParams,
        graph: &MultiplexGraph,
        schemes: &[MetapathScheme],
        rng: &mut StdRng,
    ) -> Tensor {
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let dim = params.value(p.emb).cols();
        let mut out = Tensor::zeros(nodes.len(), dim);
        for (ci, chunk) in nodes.chunks(BATCH).enumerate() {
            let mut g = Graph::new(params);
            let rep = Self::represent_batch(&mut g, p, graph, schemes, chunk, rng);
            for (i, row) in g.value(rep).rows_iter().enumerate() {
                out.set_row(ci * BATCH + i, row);
            }
        }
        out
    }
}

/// The `TrainStep` for MAGNN: metapath-instance attention per [`EdgeBatch`],
/// full-graph representation snapshot on improvement.
struct MagnnStep<'a> {
    params: ParamStore,
    p: MagnnParams,
    graph: &'a MultiplexGraph,
    schemes: Vec<MetapathScheme>,
    opt: Adam,
    val: &'a [LabeledEdge],
    scores: &'a mut EmbeddingScores,
    staged: EmbeddingScores,
}

impl TrainStep for MagnnStep<'_> {
    type Batch = EdgeBatch;

    fn step(&mut self, batch: EdgeBatch, rng: &mut StdRng) -> BatchLoss {
        let mut g = Graph::new(&self.params);
        let hl = Magnn::represent_batch(
            &mut g,
            &self.p,
            self.graph,
            &self.schemes,
            &batch.lefts,
            rng,
        );
        let hr = Magnn::represent_batch(
            &mut g,
            &self.p,
            self.graph,
            &self.schemes,
            &batch.rights,
            rng,
        );
        let scores = g.row_dot(hl, hr);
        let loss = g.logistic_loss(scores, &batch.labels);
        let loss_sum = g.scalar(loss) as f64;
        let grads = g.backward(loss);
        self.opt.step(&mut self.params, &grads);
        BatchLoss { loss_sum, denom: 1 }
    }

    fn eval(&mut self, rng: &mut StdRng) -> f64 {
        self.staged = EmbeddingScores::shared(Magnn::full_inference(
            &self.params,
            &self.p,
            self.graph,
            &self.schemes,
            rng,
        ));
        val_auc(&self.staged, self.val)
    }

    fn promote(&mut self) {
        *self.scores = std::mem::take(&mut self.staged);
    }

    fn is_fitted(&self) -> bool {
        self.scores.is_ready()
    }

    fn export_state(&self, dict: &mut mhg_ckpt::StateDict) {
        self.params.export_state("model/params", dict);
        self.opt.export_state("model/opt", dict);
        self.scores.export_state("model/scores", dict);
    }

    fn import_state(&mut self, dict: &mhg_ckpt::StateDict) -> Result<(), mhg_ckpt::CkptError> {
        self.params.import_state("model/params", dict)?;
        self.opt.import_state("model/opt", dict)?;
        self.scores.import_state("model/scores", dict)
    }
}

impl LinkPredictor for Magnn {
    fn name(&self) -> &'static str {
        "MAGNN"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = &self.config;
        let dim = cfg.dim;
        let schemes = Self::schemes(data);
        let ds = (dim / 2).max(8);

        let mut params = ParamStore::new();
        let p = MagnnParams {
            emb: params.register(
                "emb",
                InitKind::Uniform {
                    limit: 0.5 / dim as f32,
                }
                .init(graph.num_nodes(), dim, rng),
            ),
            w_scheme: (0..=schemes.len())
                .map(|i| {
                    params.register(
                        format!("w_p{i}"),
                        InitKind::XavierUniform.init(dim, dim, rng),
                    )
                })
                .collect(),
            w_sem: params.register("w_sem", InitKind::XavierUniform.init(dim, ds, rng)),
            b_sem: params.register("b_sem", Tensor::zeros(1, ds)),
            q_sem: params.register("q_sem", InitKind::XavierUniform.init(ds, 1, rng)),
        };
        let negatives = NegativeSampler::new(graph);

        let edges: Vec<(NodeId, NodeId, RelationId)> = graph
            .schema()
            .relations()
            .flat_map(|r| graph.edges_in(r).map(move |(u, v)| (u, v, r)))
            .collect();

        let sample = |_epoch: usize, rng: &mut StdRng| {
            Ok(edge_batches(
                graph,
                &negatives,
                &edges,
                cfg.negatives.min(2),
                BATCH,
                rng,
            ))
        };

        let mut step = MagnnStep {
            params,
            p,
            graph,
            schemes,
            opt: Adam::new(cfg.lr.min(0.01)),
            val: data.val,
            scores: &mut self.scores,
            staged: EmbeddingScores::default(),
        };
        mhg_train::train(&cfg.train_options(), sample, &mut step, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn instance_sampling_follows_scheme() {
        let dataset = DatasetKind::Imdb.generate(0.02, 18);
        let g = &dataset.graph;
        let s = g.schema();
        let r = s.relation_id("to").unwrap();
        let scheme = MetapathScheme::intra(dataset.metapath_shapes[0].clone(), r);
        let mut rng = StdRng::seed_from_u64(19);
        let movie = scheme.source_type();
        let start = g.nodes_of_type(movie)[0];
        let mut found = false;
        for _ in 0..50 {
            if let Some(path) = sample_instance(g, &scheme, start, &mut rng) {
                assert_eq!(path.len(), scheme.len() + 1);
                assert!(scheme.matches_instance(g, &path));
                found = true;
            }
        }
        // The first movie may be isolated at tiny scale; only assert shape
        // when instances exist.
        let _ = found;
    }

    #[test]
    fn beats_random_on_heterogeneous_graph() {
        let dataset = DatasetKind::Imdb.generate(0.025, 20);
        let mut rng = StdRng::seed_from_u64(21);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut cfg = CommonConfig::fast();
        cfg.epochs = 12;
        let mut model = Magnn::new(cfg);
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng).expect("fit must succeed");
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.55,
            "MAGNN failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
