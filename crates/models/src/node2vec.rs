//! node2vec baseline (Grover & Leskovec, KDD 2016).
//!
//! Identical to DeepWalk except walks are second-order biased with return
//! parameter `p` and in-out parameter `q`.

use mhg_graph::NodeId;
use mhg_sampling::{pairs_from_walk, NegativeSampler, Node2VecWalker};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::common::{
    val_auc, CommonConfig, EarlyStopper, EmbeddingScores, FitData, LinkPredictor, StopDecision,
    TrainReport,
};
use crate::sgns::Sgns;

/// The node2vec baseline.
pub struct Node2Vec {
    config: CommonConfig,
    p: f32,
    q: f32,
    scores: EmbeddingScores,
}

impl Node2Vec {
    /// Creates an untrained model with the standard `p = 1, q = 0.5` bias
    /// (favouring outward exploration).
    pub fn new(config: CommonConfig) -> Self {
        Self::with_bias(config, 1.0, 0.5)
    }

    /// Creates an untrained model with explicit bias parameters.
    pub fn with_bias(config: CommonConfig, p: f32, q: f32) -> Self {
        Self {
            config,
            p,
            q,
            scores: EmbeddingScores::default(),
        }
    }
}

impl LinkPredictor for Node2Vec {
    fn name(&self) -> &'static str {
        "node2vec"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> TrainReport {
        let graph = data.graph;
        let cfg = &self.config;
        let mut model = Sgns::new(graph.num_nodes(), cfg.dim, rng);
        let walker = Node2VecWalker::new(graph, self.p, self.q);
        let negatives = NegativeSampler::new(graph);

        let mut stopper = EarlyStopper::new(cfg.patience);
        let mut report = TrainReport::default();
        let mut starts: Vec<NodeId> = graph.nodes().collect();

        for epoch in 0..cfg.epochs {
            starts.shuffle(rng);
            // Full paper walk protocol (wall-clock-normalised budget: the
            // hand-rolled SGNS update is cheap enough for every pair).
            let mut pairs = Vec::new();
            for &start in &starts {
                for _ in 0..cfg.walks_per_node {
                    let walk = walker.walk(start, cfg.walk_length, rng);
                    pairs.extend(pairs_from_walk(&walk, cfg.window));
                }
            }
            pairs.shuffle(rng);

            let mut loss_sum = 0.0f64;
            let mut pair_count = 0usize;
            for pair in pairs {
                let ty = graph.node_type(pair.context);
                let negs = negatives.sample_many(ty, pair.context, cfg.negatives, rng);
                loss_sum += model.train_pair(pair.center, pair.context, &negs, cfg.lr) as f64;
                pair_count += 1;
            }

            report.epochs_run = epoch + 1;
            report.final_loss = (loss_sum / pair_count.max(1) as f64) as f32;

            let snapshot = EmbeddingScores::shared(model.embeddings().clone())
                .with_context(model.contexts().clone());
            let auc = val_auc(&snapshot, data.val);
            match stopper.update(auc) {
                StopDecision::Improved => self.scores = snapshot,
                StopDecision::Continue => {}
                StopDecision::Stop => break,
            }
        }
        if !self.scores.is_ready() {
            let ctx = model.contexts().clone();
            self.scores = EmbeddingScores::shared(model.into_embeddings()).with_context(ctx);
        }
        report.best_val_auc = stopper.best();
        report
    }

    fn score(&self, u: NodeId, v: NodeId, r: mhg_graph::RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_planted_graph() {
        let dataset = DatasetKind::Amazon.generate(0.01, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut model = Node2Vec::new(CommonConfig::fast());
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng);
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.6,
            "node2vec failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
