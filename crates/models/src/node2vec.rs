//! node2vec baseline (Grover & Leskovec, KDD 2016).
//!
//! Identical to DeepWalk except walks are second-order biased with return
//! parameter `p` and in-out parameter `q`.

use mhg_graph::{NodeId, RelationId};
use mhg_sampling::{pairs_from_walk, NegativeSampler, Node2VecWalker, Pair};
use mhg_train::pair_batches;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::common::{
    CommonConfig, EmbeddingScores, FitData, LinkPredictor, TrainError, TrainReport,
};
use crate::deepwalk::SGNS_BATCH;
use crate::sgns::{Sgns, SgnsStep};

/// The node2vec baseline.
pub struct Node2Vec {
    config: CommonConfig,
    p: f32,
    q: f32,
    scores: EmbeddingScores,
}

impl Node2Vec {
    /// Creates an untrained model with the standard `p = 1, q = 0.5` bias
    /// (favouring outward exploration).
    pub fn new(config: CommonConfig) -> Self {
        Self::with_bias(config, 1.0, 0.5)
    }

    /// Creates an untrained model with explicit bias parameters.
    pub fn with_bias(config: CommonConfig, p: f32, q: f32) -> Self {
        Self {
            config,
            p,
            q,
            scores: EmbeddingScores::default(),
        }
    }
}

impl LinkPredictor for Node2Vec {
    fn name(&self) -> &'static str {
        "node2vec"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = &self.config;
        let walker = Node2VecWalker::new(graph, self.p, self.q);
        let negatives = NegativeSampler::new(graph);
        let starts: Vec<NodeId> = graph.nodes().collect();

        // Full paper walk protocol (wall-clock-normalised budget: the
        // hand-rolled SGNS update is cheap enough for every pair).
        let sample = |_epoch: usize, rng: &mut StdRng| {
            let mut starts = starts.clone();
            starts.shuffle(rng);
            let mut tagged: Vec<(Pair, RelationId)> = Vec::new();
            for &start in &starts {
                for _ in 0..cfg.walks_per_node {
                    let walk = walker.walk(start, cfg.walk_length, rng);
                    tagged.extend(
                        pairs_from_walk(&walk, cfg.window)
                            .into_iter()
                            .map(|p| (p, RelationId(0))),
                    );
                }
            }
            tagged.shuffle(rng);
            Ok(pair_batches(
                graph,
                &negatives,
                tagged,
                cfg.negatives,
                SGNS_BATCH,
                rng,
            ))
        };

        let model = Sgns::new(graph.num_nodes(), cfg.dim, rng);
        let mut step = SgnsStep::new(model, cfg.lr, data.val, &mut self.scores);
        mhg_train::train(&cfg.train_options(), sample, &mut step, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: mhg_graph::RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_planted_graph() {
        let dataset = DatasetKind::Amazon.generate(0.01, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut model = Node2Vec::new(CommonConfig::fast());
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng).expect("fit must succeed");
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.6,
            "node2vec failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
