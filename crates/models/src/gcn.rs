//! GCN baseline (Kipf & Welling, ICLR 2017).
//!
//! A single graph-convolution layer over the flattened graph (heterogeneity
//! ignored, as the paper specifies): `h_v = relu(mean(x_{N(v) ∪ {v}}) · W)`,
//! trained end-to-end on the link logistic loss with sampled negatives.
//! Full-batch spectral propagation is replaced by sampled mean aggregation
//! with self-inclusion — the spatial approximation of the renormalised
//! adjacency the paper's own mini-batch setting implies.

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore};
use mhg_graph::{NodeId, RelationId};
use mhg_sampling::NegativeSampler;
use mhg_tensor::{InitKind, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::agg::mean_self_neighbors;
use crate::common::{
    val_auc, CommonConfig, EarlyStopper, EmbeddingScores, FitData, LinkPredictor, StopDecision,
    TrainReport,
};

const FAN_OUT: usize = 10;
const BATCH: usize = 256;

/// The GCN baseline.
pub struct Gcn {
    config: CommonConfig,
    scores: EmbeddingScores,
}

impl Gcn {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }

    /// Computes representations for `nodes` on a fresh tape.
    fn represent(
        params: &ParamStore,
        emb: ParamId,
        w1: ParamId,
        graph: &mhg_graph::MultiplexGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Tensor {
        let mut g = Graph::new(params);
        let agg = mean_self_neighbors(&mut g, emb, graph, nodes, FAN_OUT, rng);
        let w = g.param(w1);
        let lin = g.matmul(agg, w);
        // tanh, not relu: a non-negative final layer could never score
        // negative pairs below zero under a dot-product decoder.
        let h = g.tanh(lin);
        g.value(h).clone()
    }
}

impl LinkPredictor for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> TrainReport {
        let graph = data.graph;
        let cfg = &self.config;
        let dim = cfg.dim;

        let mut params = ParamStore::new();
        let emb = params.register(
            "emb",
            InitKind::Uniform {
                limit: 0.5 / dim as f32,
            }
            .init(graph.num_nodes(), dim, rng),
        );
        let w1 = params.register("w1", InitKind::XavierUniform.init(dim, dim, rng));
        let mut opt = Adam::new(cfg.lr.min(0.01));

        let negatives = NegativeSampler::new(graph);
        let mut edges: Vec<(NodeId, NodeId, RelationId)> = graph
            .schema()
            .relations()
            .flat_map(|r| graph.edges_in(r).map(move |(u, v)| (u, v, r)))
            .collect();

        let mut stopper = EarlyStopper::new(cfg.patience);
        let mut report = TrainReport::default();

        for epoch in 0..cfg.epochs {
            edges.shuffle(rng);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in edges.chunks(BATCH) {
                // Build (u, v, label) triples: each positive plus negatives.
                let mut lefts = Vec::with_capacity(chunk.len() * (1 + cfg.negatives));
                let mut rights = Vec::with_capacity(lefts.capacity());
                let mut labels = Vec::with_capacity(lefts.capacity());
                for &(u, v, _) in chunk {
                    lefts.push(u);
                    rights.push(v);
                    labels.push(1.0);
                    let ty = graph.node_type(v);
                    for neg in negatives.sample_many(ty, v, cfg.negatives, rng) {
                        lefts.push(u);
                        rights.push(neg);
                        labels.push(-1.0);
                    }
                }

                let mut g = Graph::new(&params);
                let w = g.param(w1);
                let left_agg = mean_self_neighbors(&mut g, emb, graph, &lefts, FAN_OUT, rng);
                let right_agg = mean_self_neighbors(&mut g, emb, graph, &rights, FAN_OUT, rng);
                let hl = {
                    let lin = g.matmul(left_agg, w);
                    g.tanh(lin)
                };
                let hr = {
                    let lin = g.matmul(right_agg, w);
                    g.tanh(lin)
                };
                let scores = g.row_dot(hl, hr);
                let loss = g.logistic_loss(scores, &labels);
                loss_sum += g.scalar(loss) as f64;
                batches += 1;
                let grads = g.backward(loss);
                opt.step(&mut params, &grads);
            }

            report.epochs_run = epoch + 1;
            report.final_loss = (loss_sum / batches.max(1) as f64) as f32;

            // Validation on the endpoint nodes only (cheap).
            let snapshot = {
                let all: Vec<NodeId> = graph.nodes().collect();
                let table = Self::represent(&params, emb, w1, graph, &all, rng);
                EmbeddingScores::shared(table)
            };
            let auc = val_auc(&snapshot, data.val);
            match stopper.update(auc) {
                StopDecision::Improved => self.scores = snapshot,
                StopDecision::Continue => {}
                StopDecision::Stop => break,
            }
        }
        if !self.scores.is_ready() {
            let all: Vec<NodeId> = graph.nodes().collect();
            let table = Self::represent(&params, emb, w1, graph, &all, rng);
            self.scores = EmbeddingScores::shared(table);
        }
        report.best_val_auc = stopper.best();
        report
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_planted_graph() {
        let dataset = DatasetKind::Amazon.generate(0.008, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut model = Gcn::new(CommonConfig::fast());
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        let report = model.fit(&data, &mut rng);
        assert!(report.epochs_run >= 1);
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.58,
            "GCN failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
