//! GCN baseline (Kipf & Welling, ICLR 2017).
//!
//! A single graph-convolution layer over the flattened graph (heterogeneity
//! ignored, as the paper specifies): `h_v = relu(mean(x_{N(v) ∪ {v}}) · W)`,
//! trained end-to-end on the link logistic loss with sampled negatives.
//! Full-batch spectral propagation is replaced by sampled mean aggregation
//! with self-inclusion — the spatial approximation of the renormalised
//! adjacency the paper's own mini-batch setting implies.

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore};
use mhg_datasets::LabeledEdge;
use mhg_graph::{MultiplexGraph, NodeId, RelationId};
use mhg_sampling::NegativeSampler;
use mhg_tensor::{InitKind, Tensor};
use mhg_train::{edge_batches, BatchLoss, EdgeBatch, TrainStep};
use rand::rngs::StdRng;

use crate::agg::mean_self_neighbors;
use crate::common::{
    val_auc, CommonConfig, EmbeddingScores, FitData, LinkPredictor, TrainError, TrainReport,
};

const FAN_OUT: usize = 10;
const BATCH: usize = 256;

/// The GCN baseline.
pub struct Gcn {
    config: CommonConfig,
    scores: EmbeddingScores,
}

impl Gcn {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }

    /// Computes representations for `nodes` on a fresh tape.
    fn represent(
        params: &ParamStore,
        emb: ParamId,
        w1: ParamId,
        graph: &mhg_graph::MultiplexGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Tensor {
        let mut g = Graph::new(params);
        let agg = mean_self_neighbors(&mut g, emb, graph, nodes, FAN_OUT, rng);
        let w = g.param(w1);
        let lin = g.matmul(agg, w);
        // tanh, not relu: a non-negative final layer could never score
        // negative pairs below zero under a dot-product decoder.
        let h = g.tanh(lin);
        g.value(h).clone()
    }
}

/// The `TrainStep` for GCN: one tape per [`EdgeBatch`], full-graph
/// representation snapshot on improvement.
struct GcnStep<'a> {
    params: ParamStore,
    emb: ParamId,
    w1: ParamId,
    graph: &'a MultiplexGraph,
    opt: Adam,
    val: &'a [LabeledEdge],
    scores: &'a mut EmbeddingScores,
    staged: EmbeddingScores,
}

impl TrainStep for GcnStep<'_> {
    type Batch = EdgeBatch;

    fn step(&mut self, batch: EdgeBatch, rng: &mut StdRng) -> BatchLoss {
        let mut g = Graph::new(&self.params);
        let w = g.param(self.w1);
        let left_agg =
            mean_self_neighbors(&mut g, self.emb, self.graph, &batch.lefts, FAN_OUT, rng);
        let right_agg =
            mean_self_neighbors(&mut g, self.emb, self.graph, &batch.rights, FAN_OUT, rng);
        let hl = {
            let lin = g.matmul(left_agg, w);
            g.tanh(lin)
        };
        let hr = {
            let lin = g.matmul(right_agg, w);
            g.tanh(lin)
        };
        let scores = g.row_dot(hl, hr);
        let loss = g.logistic_loss(scores, &batch.labels);
        let loss_sum = g.scalar(loss) as f64;
        let grads = g.backward(loss);
        self.opt.step(&mut self.params, &grads);
        BatchLoss { loss_sum, denom: 1 }
    }

    fn eval(&mut self, rng: &mut StdRng) -> f64 {
        let all: Vec<NodeId> = self.graph.nodes().collect();
        let table = Gcn::represent(&self.params, self.emb, self.w1, self.graph, &all, rng);
        self.staged = EmbeddingScores::shared(table);
        val_auc(&self.staged, self.val)
    }

    fn promote(&mut self) {
        *self.scores = std::mem::take(&mut self.staged);
    }

    fn is_fitted(&self) -> bool {
        self.scores.is_ready()
    }

    fn export_state(&self, dict: &mut mhg_ckpt::StateDict) {
        self.params.export_state("model/params", dict);
        self.opt.export_state("model/opt", dict);
        self.scores.export_state("model/scores", dict);
    }

    fn import_state(&mut self, dict: &mhg_ckpt::StateDict) -> Result<(), mhg_ckpt::CkptError> {
        self.params.import_state("model/params", dict)?;
        self.opt.import_state("model/opt", dict)?;
        self.scores.import_state("model/scores", dict)
    }
}

impl LinkPredictor for Gcn {
    fn name(&self) -> &'static str {
        "GCN"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = &self.config;
        let dim = cfg.dim;

        let mut params = ParamStore::new();
        let emb = params.register(
            "emb",
            InitKind::Uniform {
                limit: 0.5 / dim as f32,
            }
            .init(graph.num_nodes(), dim, rng),
        );
        let w1 = params.register("w1", InitKind::XavierUniform.init(dim, dim, rng));

        let negatives = NegativeSampler::new(graph);
        let edges: Vec<(NodeId, NodeId, RelationId)> = graph
            .schema()
            .relations()
            .flat_map(|r| graph.edges_in(r).map(move |(u, v)| (u, v, r)))
            .collect();

        let sample = |_epoch: usize, rng: &mut StdRng| {
            Ok(edge_batches(
                graph,
                &negatives,
                &edges,
                cfg.negatives,
                BATCH,
                rng,
            ))
        };

        let mut step = GcnStep {
            params,
            emb,
            w1,
            graph,
            opt: Adam::new(cfg.lr.min(0.01)),
            val: data.val,
            scores: &mut self.scores,
            staged: EmbeddingScores::default(),
        };
        mhg_train::train(&cfg.train_options(), sample, &mut step, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_planted_graph() {
        let dataset = DatasetKind::Amazon.generate(0.008, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut model = Gcn::new(CommonConfig::fast());
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        let report = model.fit(&data, &mut rng).expect("fit must succeed");
        assert!(report.epochs_run >= 1);
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.58,
            "GCN failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
