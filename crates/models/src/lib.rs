//! Baseline link-prediction models for the HybridGNN reproduction.
//!
//! Implements the nine baselines of the paper's Tables IV–V behind one
//! [`LinkPredictor`] trait:
//!
//! | family | models |
//! |---|---|
//! | network embedding | [`DeepWalk`], [`Node2Vec`], [`Line`] |
//! | homogeneous GNN | [`Gcn`], [`GraphSage`] |
//! | heterogeneous GNN | [`Han`], [`Magnn`] |
//! | multiplex heterogeneous GNN | [`RGcn`], [`Gatne`] |
//!
//! All models train on the same [`FitData`] (training graph + validation
//! edges) and produce relation-aware dot-product scores.

mod agg;
mod attention;
mod common;
mod deepwalk;
mod evaluate;
mod gatne;
mod gcn;
mod graphsage;
mod han;
mod line;
mod magnn;
mod node2vec;
mod rgcn;
mod sgns;

pub use common::{
    pair_budget, val_auc, CommonConfig, EarlyStopper, EmbeddingScores, EventValue, FitData,
    LinkPredictor, Obs, ObsConfig, RecoveryCounters, StopDecision, TimingBreakdown, TrainError,
    TrainReport,
};
pub use deepwalk::DeepWalk;
pub use evaluate::{evaluate, ranking_queries, ModelMetrics};
pub use gatne::Gatne;
pub use gcn::Gcn;
pub use graphsage::GraphSage;
pub use han::Han;
pub use line::Line;
pub use magnn::Magnn;
pub use node2vec::Node2Vec;
pub use rgcn::RGcn;
pub use sgns::Sgns;
