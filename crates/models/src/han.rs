//! HAN baseline (Wang et al., WWW 2019): hierarchical attention over
//! metapath-based neighbors.
//!
//! Node-level attention scores a node's metapath-reached neighbors (the
//! final layer of `N^K_P(v)`) under a per-metapath projection; semantic
//! attention combines the per-metapath summaries. HAN is non-multiplex: one
//! embedding per node, used for every relation — exactly the limitation the
//! paper's Table III records.

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore, Var};
use mhg_datasets::LabeledEdge;
use mhg_graph::{MetapathScheme, MultiplexGraph, NodeId, RelationId};
use mhg_sampling::{MetapathNeighborSampler, NegativeSampler};
use mhg_tensor::{InitKind, Tensor};
use mhg_train::{edge_batches, BatchLoss, EdgeBatch, TrainStep};
use rand::rngs::StdRng;

use crate::attention::{dot_attention_pool, semantic_attention};
use crate::common::{
    val_auc, CommonConfig, EmbeddingScores, FitData, LinkPredictor, TrainError, TrainReport,
};

const FAN_OUT: usize = 4;
const MAX_LAYER: usize = 12;
const MAX_NEIGHBORS: usize = 10;
const BATCH: usize = 96;

/// The HAN baseline.
pub struct Han {
    config: CommonConfig,
    scores: EmbeddingScores,
}

struct HanParams {
    emb: ParamId,
    /// One projection per metapath scheme, plus a trailing self-projection.
    w_scheme: Vec<ParamId>,
    w_sem: ParamId,
    b_sem: ParamId,
    q_sem: ParamId,
}

impl Han {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }

    /// All schemes: Table II shapes instantiated under every relation
    /// (HAN flattens multiplexity, so all instantiations feed one node
    /// embedding).
    fn schemes(data: &FitData<'_>) -> Vec<MetapathScheme> {
        let mut out = Vec::new();
        for shape in data.metapath_shapes {
            for r in data.graph.schema().relations() {
                out.push(MetapathScheme::intra(shape.clone(), r));
            }
        }
        out
    }

    /// Representation of one node on the tape.
    fn represent_node(
        g: &mut Graph<'_>,
        p: &HanParams,
        graph: &MultiplexGraph,
        schemes: &[MetapathScheme],
        v: NodeId,
        rng: &mut StdRng,
    ) -> Var {
        let sampler = MetapathNeighborSampler::new(graph, FAN_OUT, MAX_LAYER);
        let mut z_rows: Vec<Var> = Vec::with_capacity(schemes.len() + 1);

        for (si, scheme) in schemes.iter().enumerate() {
            if graph.node_type(v) != scheme.source_type() {
                continue;
            }
            let layers = sampler.sample(v, scheme, rng);
            let Some(finals) = layers.last().filter(|_| layers.len() == scheme.len() + 1) else {
                continue;
            };
            let ids: Vec<u32> = finals.iter().take(MAX_NEIGHBORS).map(|n| n.0).collect();
            if ids.is_empty() {
                continue;
            }
            let w = g.param(p.w_scheme[si]);
            let self_emb = g.gather(p.emb, &[v.0]);
            let query = g.matmul(self_emb, w);
            let neigh = g.gather(p.emb, &ids);
            let keys = g.matmul(neigh, w);
            z_rows.push(dot_attention_pool(g, query, keys));
        }

        // Always include the projected self so every node has ≥1 summary.
        {
            let w = g.param(*p.w_scheme.last().unwrap());
            let self_emb = g.gather(p.emb, &[v.0]);
            z_rows.push(g.matmul(self_emb, w));
        }

        let z = g.concat_rows(&z_rows);
        let (pooled, _) = semantic_attention(g, z, p.w_sem, p.b_sem, p.q_sem);
        pooled
    }

    fn represent_batch(
        g: &mut Graph<'_>,
        p: &HanParams,
        graph: &MultiplexGraph,
        schemes: &[MetapathScheme],
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Var {
        let rows: Vec<Var> = nodes
            .iter()
            .map(|&v| Self::represent_node(g, p, graph, schemes, v, rng))
            .collect();
        g.concat_rows(&rows)
    }

    fn full_inference(
        params: &ParamStore,
        p: &HanParams,
        graph: &MultiplexGraph,
        schemes: &[MetapathScheme],
        rng: &mut StdRng,
    ) -> Tensor {
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let dim = params.value(p.emb).cols();
        let mut out = Tensor::zeros(nodes.len(), dim);
        for (ci, chunk) in nodes.chunks(BATCH).enumerate() {
            let mut g = Graph::new(params);
            let rep = Self::represent_batch(&mut g, p, graph, schemes, chunk, rng);
            for (i, row) in g.value(rep).rows_iter().enumerate() {
                out.set_row(ci * BATCH + i, row);
            }
        }
        out
    }
}

/// The `TrainStep` for HAN: hierarchical attention per [`EdgeBatch`],
/// full-graph representation snapshot on improvement.
struct HanStep<'a> {
    params: ParamStore,
    p: HanParams,
    graph: &'a MultiplexGraph,
    schemes: Vec<MetapathScheme>,
    opt: Adam,
    val: &'a [LabeledEdge],
    scores: &'a mut EmbeddingScores,
    staged: EmbeddingScores,
}

impl TrainStep for HanStep<'_> {
    type Batch = EdgeBatch;

    fn step(&mut self, batch: EdgeBatch, rng: &mut StdRng) -> BatchLoss {
        let mut g = Graph::new(&self.params);
        let hl = Han::represent_batch(
            &mut g,
            &self.p,
            self.graph,
            &self.schemes,
            &batch.lefts,
            rng,
        );
        let hr = Han::represent_batch(
            &mut g,
            &self.p,
            self.graph,
            &self.schemes,
            &batch.rights,
            rng,
        );
        let scores = g.row_dot(hl, hr);
        let loss = g.logistic_loss(scores, &batch.labels);
        let loss_sum = g.scalar(loss) as f64;
        let grads = g.backward(loss);
        self.opt.step(&mut self.params, &grads);
        BatchLoss { loss_sum, denom: 1 }
    }

    fn eval(&mut self, rng: &mut StdRng) -> f64 {
        self.staged = EmbeddingScores::shared(Han::full_inference(
            &self.params,
            &self.p,
            self.graph,
            &self.schemes,
            rng,
        ));
        val_auc(&self.staged, self.val)
    }

    fn promote(&mut self) {
        *self.scores = std::mem::take(&mut self.staged);
    }

    fn is_fitted(&self) -> bool {
        self.scores.is_ready()
    }

    fn export_state(&self, dict: &mut mhg_ckpt::StateDict) {
        self.params.export_state("model/params", dict);
        self.opt.export_state("model/opt", dict);
        self.scores.export_state("model/scores", dict);
    }

    fn import_state(&mut self, dict: &mhg_ckpt::StateDict) -> Result<(), mhg_ckpt::CkptError> {
        self.params.import_state("model/params", dict)?;
        self.opt.import_state("model/opt", dict)?;
        self.scores.import_state("model/scores", dict)
    }
}

impl LinkPredictor for Han {
    fn name(&self) -> &'static str {
        "HAN"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = &self.config;
        let dim = cfg.dim;
        let schemes = Self::schemes(data);
        let ds = (dim / 2).max(8);

        let mut params = ParamStore::new();
        let p = HanParams {
            emb: params.register(
                "emb",
                InitKind::Uniform {
                    limit: 0.5 / dim as f32,
                }
                .init(graph.num_nodes(), dim, rng),
            ),
            w_scheme: (0..=schemes.len())
                .map(|i| {
                    params.register(
                        format!("w_p{i}"),
                        InitKind::XavierUniform.init(dim, dim, rng),
                    )
                })
                .collect(),
            w_sem: params.register("w_sem", InitKind::XavierUniform.init(dim, ds, rng)),
            b_sem: params.register("b_sem", Tensor::zeros(1, ds)),
            q_sem: params.register("q_sem", InitKind::XavierUniform.init(ds, 1, rng)),
        };
        let negatives = NegativeSampler::new(graph);

        let edges: Vec<(NodeId, NodeId, RelationId)> = graph
            .schema()
            .relations()
            .flat_map(|r| graph.edges_in(r).map(move |(u, v)| (u, v, r)))
            .collect();

        let sample = |_epoch: usize, rng: &mut StdRng| {
            Ok(edge_batches(
                graph,
                &negatives,
                &edges,
                cfg.negatives.min(2),
                BATCH,
                rng,
            ))
        };

        let mut step = HanStep {
            params,
            p,
            graph,
            schemes,
            opt: Adam::new(cfg.lr.min(0.01)),
            val: data.val,
            scores: &mut self.scores,
            staged: EmbeddingScores::default(),
        };
        mhg_train::train(&cfg.train_options(), sample, &mut step, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_heterogeneous_graph() {
        let dataset = DatasetKind::Imdb.generate(0.02, 16);
        let mut rng = StdRng::seed_from_u64(17);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut cfg = CommonConfig::fast();
        cfg.epochs = 10;
        let mut model = Han::new(cfg);
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng).expect("fit must succeed");
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.55,
            "HAN failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
