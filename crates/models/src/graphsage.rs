//! GraphSage baseline (Hamilton et al., NeurIPS 2017), mean-aggregator
//! variant with two layers and separate self/neighbor weights:
//!
//! `h¹_v = relu(x_v·W_s¹ + mean(x_N(v))·W_n¹)`
//! `h²_v = relu(h¹_v·W_s² + mean(h¹_N(v))·W_n²)`
//!
//! Heterogeneity is ignored (flattened neighborhoods), per the paper's
//! baseline protocol. Trained on the link logistic loss.

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore, Var};
use mhg_graph::{MultiplexGraph, NodeId, RelationId};
use mhg_sampling::NegativeSampler;
use mhg_tensor::{InitKind, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

use crate::agg::{mean_self_neighbors, sample_merged_neighbors};
use crate::common::{
    val_auc, CommonConfig, EarlyStopper, EmbeddingScores, FitData, LinkPredictor, StopDecision,
    TrainReport,
};

const FAN_OUT_1: usize = 6;
const FAN_OUT_2: usize = 4;
const BATCH: usize = 128;

/// The GraphSage baseline.
pub struct GraphSage {
    config: CommonConfig,
    scores: EmbeddingScores,
}

struct SageParams {
    emb: ParamId,
    w_self1: ParamId,
    w_neigh1: ParamId,
    w_self2: ParamId,
    w_neigh2: ParamId,
}

impl GraphSage {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }

    /// Layer-1 representation of `nodes` (an `n × d` variable).
    fn layer1(
        g: &mut Graph<'_>,
        p: &SageParams,
        graph: &MultiplexGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Var {
        let ids: Vec<u32> = nodes.iter().map(|n| n.0).collect();
        let self_emb = g.gather(p.emb, &ids);
        let neigh = mean_self_neighbors(g, p.emb, graph, nodes, FAN_OUT_1, rng);
        let ws = g.param(p.w_self1);
        let wn = g.param(p.w_neigh1);
        let a = g.matmul(self_emb, ws);
        let b = g.matmul(neigh, wn);
        let sum = g.add(a, b);
        g.relu(sum)
    }

    /// Two-layer representation of `nodes`.
    fn represent_on(
        g: &mut Graph<'_>,
        p: &SageParams,
        graph: &MultiplexGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Var {
        // h¹ of the nodes themselves.
        let h1_self = Self::layer1(g, p, graph, nodes, rng);
        // h¹ of each node's sampled neighborhood, mean-pooled per node.
        let rows: Vec<Var> = nodes
            .iter()
            .map(|&v| {
                let mut hood = sample_merged_neighbors(graph, v, FAN_OUT_2, rng);
                if hood.is_empty() {
                    hood.push(v); // isolated: fall back to self
                }
                let reps = Self::layer1(g, p, graph, &hood, rng);
                g.mean_rows(reps)
            })
            .collect();
        let h1_neigh = g.concat_rows(&rows);
        let ws = g.param(p.w_self2);
        let wn = g.param(p.w_neigh2);
        let a = g.matmul(h1_self, ws);
        let b = g.matmul(h1_neigh, wn);
        let sum = g.add(a, b);
        // Final layer is tanh so dot-product scores can be negative.
        g.tanh(sum)
    }

    fn represent(
        params: &ParamStore,
        p: &SageParams,
        graph: &MultiplexGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Tensor {
        // Chunk so tapes stay small.
        let mut out = Tensor::zeros(nodes.len(), params.value(p.w_self2).cols());
        for (chunk_idx, chunk) in nodes.chunks(BATCH).enumerate() {
            let mut g = Graph::new(params);
            let rep = Self::represent_on(&mut g, p, graph, chunk, rng);
            let val = g.value(rep);
            for (i, row) in val.rows_iter().enumerate() {
                out.set_row(chunk_idx * BATCH + i, row);
            }
        }
        out
    }
}

impl LinkPredictor for GraphSage {
    fn name(&self) -> &'static str {
        "GraphSage"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> TrainReport {
        let graph = data.graph;
        let cfg = &self.config;
        let dim = cfg.dim;

        let mut params = ParamStore::new();
        let p = SageParams {
            emb: params.register(
                "emb",
                InitKind::Uniform {
                    limit: 0.5 / dim as f32,
                }
                .init(graph.num_nodes(), dim, rng),
            ),
            w_self1: params.register("w_self1", InitKind::XavierUniform.init(dim, dim, rng)),
            w_neigh1: params.register("w_neigh1", InitKind::XavierUniform.init(dim, dim, rng)),
            w_self2: params.register("w_self2", InitKind::XavierUniform.init(dim, dim, rng)),
            w_neigh2: params.register("w_neigh2", InitKind::XavierUniform.init(dim, dim, rng)),
        };
        let mut opt = Adam::new(cfg.lr.min(0.01));

        let negatives = NegativeSampler::new(graph);
        let mut edges: Vec<(NodeId, NodeId)> = graph
            .schema()
            .relations()
            .flat_map(|r| graph.edges_in(r).collect::<Vec<_>>())
            .collect();

        let mut stopper = EarlyStopper::new(cfg.patience);
        let mut report = TrainReport::default();

        for epoch in 0..cfg.epochs {
            edges.shuffle(rng);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in edges.chunks(BATCH) {
                let mut lefts = Vec::new();
                let mut rights = Vec::new();
                let mut labels = Vec::new();
                for &(u, v) in chunk {
                    lefts.push(u);
                    rights.push(v);
                    labels.push(1.0);
                    let ty = graph.node_type(v);
                    for neg in negatives.sample_many(ty, v, cfg.negatives.min(2), rng) {
                        lefts.push(u);
                        rights.push(neg);
                        labels.push(-1.0);
                    }
                }
                let mut g = Graph::new(&params);
                let hl = Self::represent_on(&mut g, &p, graph, &lefts, rng);
                let hr = Self::represent_on(&mut g, &p, graph, &rights, rng);
                let scores = g.row_dot(hl, hr);
                let loss = g.logistic_loss(scores, &labels);
                loss_sum += g.scalar(loss) as f64;
                batches += 1;
                let grads = g.backward(loss);
                opt.step(&mut params, &grads);
            }

            report.epochs_run = epoch + 1;
            report.final_loss = (loss_sum / batches.max(1) as f64) as f32;

            let all: Vec<NodeId> = graph.nodes().collect();
            let snapshot = EmbeddingScores::shared(Self::represent(&params, &p, graph, &all, rng));
            let auc = val_auc(&snapshot, data.val);
            match stopper.update(auc) {
                StopDecision::Improved => self.scores = snapshot,
                StopDecision::Continue => {}
                StopDecision::Stop => break,
            }
        }
        if !self.scores.is_ready() {
            let all: Vec<NodeId> = graph.nodes().collect();
            self.scores = EmbeddingScores::shared(Self::represent(&params, &p, graph, &all, rng));
        }
        report.best_val_auc = stopper.best();
        report
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_planted_graph() {
        let dataset = DatasetKind::Amazon.generate(0.006, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut cfg = CommonConfig::fast();
        cfg.epochs = 5;
        let mut model = GraphSage::new(cfg);
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng);
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.58,
            "GraphSage failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
