//! GraphSage baseline (Hamilton et al., NeurIPS 2017), mean-aggregator
//! variant with two layers and separate self/neighbor weights:
//!
//! `h¹_v = relu(x_v·W_s¹ + mean(x_N(v))·W_n¹)`
//! `h²_v = relu(h¹_v·W_s² + mean(h¹_N(v))·W_n²)`
//!
//! Heterogeneity is ignored (flattened neighborhoods), per the paper's
//! baseline protocol. Trained on the link logistic loss.

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore, Var};
use mhg_datasets::LabeledEdge;
use mhg_graph::{MultiplexGraph, NodeId, RelationId};
use mhg_sampling::NegativeSampler;
use mhg_tensor::{InitKind, Tensor};
use mhg_train::{edge_batches, BatchLoss, EdgeBatch, TrainStep};
use rand::rngs::StdRng;

use crate::agg::{mean_self_neighbors, sample_merged_neighbors};
use crate::common::{
    val_auc, CommonConfig, EmbeddingScores, FitData, LinkPredictor, TrainError, TrainReport,
};

const FAN_OUT_1: usize = 6;
const FAN_OUT_2: usize = 4;
const BATCH: usize = 128;

/// The GraphSage baseline.
pub struct GraphSage {
    config: CommonConfig,
    scores: EmbeddingScores,
}

struct SageParams {
    emb: ParamId,
    w_self1: ParamId,
    w_neigh1: ParamId,
    w_self2: ParamId,
    w_neigh2: ParamId,
}

impl GraphSage {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }

    /// Layer-1 representation of `nodes` (an `n × d` variable).
    fn layer1(
        g: &mut Graph<'_>,
        p: &SageParams,
        graph: &MultiplexGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Var {
        let ids: Vec<u32> = nodes.iter().map(|n| n.0).collect();
        let self_emb = g.gather(p.emb, &ids);
        let neigh = mean_self_neighbors(g, p.emb, graph, nodes, FAN_OUT_1, rng);
        let ws = g.param(p.w_self1);
        let wn = g.param(p.w_neigh1);
        let a = g.matmul(self_emb, ws);
        let b = g.matmul(neigh, wn);
        let sum = g.add(a, b);
        g.relu(sum)
    }

    /// Two-layer representation of `nodes`.
    fn represent_on(
        g: &mut Graph<'_>,
        p: &SageParams,
        graph: &MultiplexGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Var {
        // h¹ of the nodes themselves.
        let h1_self = Self::layer1(g, p, graph, nodes, rng);
        // h¹ of each node's sampled neighborhood, mean-pooled per node.
        let rows: Vec<Var> = nodes
            .iter()
            .map(|&v| {
                let mut hood = sample_merged_neighbors(graph, v, FAN_OUT_2, rng);
                if hood.is_empty() {
                    hood.push(v); // isolated: fall back to self
                }
                let reps = Self::layer1(g, p, graph, &hood, rng);
                g.mean_rows(reps)
            })
            .collect();
        let h1_neigh = g.concat_rows(&rows);
        let ws = g.param(p.w_self2);
        let wn = g.param(p.w_neigh2);
        let a = g.matmul(h1_self, ws);
        let b = g.matmul(h1_neigh, wn);
        let sum = g.add(a, b);
        // Final layer is tanh so dot-product scores can be negative.
        g.tanh(sum)
    }

    fn represent(
        params: &ParamStore,
        p: &SageParams,
        graph: &MultiplexGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Tensor {
        // Chunk so tapes stay small.
        let mut out = Tensor::zeros(nodes.len(), params.value(p.w_self2).cols());
        for (chunk_idx, chunk) in nodes.chunks(BATCH).enumerate() {
            let mut g = Graph::new(params);
            let rep = Self::represent_on(&mut g, p, graph, chunk, rng);
            let val = g.value(rep);
            for (i, row) in val.rows_iter().enumerate() {
                out.set_row(chunk_idx * BATCH + i, row);
            }
        }
        out
    }
}

/// The `TrainStep` for GraphSage: two-layer sampled aggregation per
/// [`EdgeBatch`], full-graph representation snapshot on improvement.
struct SageStep<'a> {
    params: ParamStore,
    p: SageParams,
    graph: &'a MultiplexGraph,
    opt: Adam,
    val: &'a [LabeledEdge],
    scores: &'a mut EmbeddingScores,
    staged: EmbeddingScores,
}

impl TrainStep for SageStep<'_> {
    type Batch = EdgeBatch;

    fn step(&mut self, batch: EdgeBatch, rng: &mut StdRng) -> BatchLoss {
        let mut g = Graph::new(&self.params);
        let hl = GraphSage::represent_on(&mut g, &self.p, self.graph, &batch.lefts, rng);
        let hr = GraphSage::represent_on(&mut g, &self.p, self.graph, &batch.rights, rng);
        let scores = g.row_dot(hl, hr);
        let loss = g.logistic_loss(scores, &batch.labels);
        let loss_sum = g.scalar(loss) as f64;
        let grads = g.backward(loss);
        self.opt.step(&mut self.params, &grads);
        BatchLoss { loss_sum, denom: 1 }
    }

    fn eval(&mut self, rng: &mut StdRng) -> f64 {
        let all: Vec<NodeId> = self.graph.nodes().collect();
        self.staged = EmbeddingScores::shared(GraphSage::represent(
            &self.params,
            &self.p,
            self.graph,
            &all,
            rng,
        ));
        val_auc(&self.staged, self.val)
    }

    fn promote(&mut self) {
        *self.scores = std::mem::take(&mut self.staged);
    }

    fn is_fitted(&self) -> bool {
        self.scores.is_ready()
    }

    fn export_state(&self, dict: &mut mhg_ckpt::StateDict) {
        self.params.export_state("model/params", dict);
        self.opt.export_state("model/opt", dict);
        self.scores.export_state("model/scores", dict);
    }

    fn import_state(&mut self, dict: &mhg_ckpt::StateDict) -> Result<(), mhg_ckpt::CkptError> {
        self.params.import_state("model/params", dict)?;
        self.opt.import_state("model/opt", dict)?;
        self.scores.import_state("model/scores", dict)
    }
}

impl LinkPredictor for GraphSage {
    fn name(&self) -> &'static str {
        "GraphSage"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = &self.config;
        let dim = cfg.dim;

        let mut params = ParamStore::new();
        let p = SageParams {
            emb: params.register(
                "emb",
                InitKind::Uniform {
                    limit: 0.5 / dim as f32,
                }
                .init(graph.num_nodes(), dim, rng),
            ),
            w_self1: params.register("w_self1", InitKind::XavierUniform.init(dim, dim, rng)),
            w_neigh1: params.register("w_neigh1", InitKind::XavierUniform.init(dim, dim, rng)),
            w_self2: params.register("w_self2", InitKind::XavierUniform.init(dim, dim, rng)),
            w_neigh2: params.register("w_neigh2", InitKind::XavierUniform.init(dim, dim, rng)),
        };

        let negatives = NegativeSampler::new(graph);
        let edges: Vec<(NodeId, NodeId, RelationId)> = graph
            .schema()
            .relations()
            .flat_map(|r| graph.edges_in(r).map(move |(u, v)| (u, v, r)))
            .collect();

        let sample = |_epoch: usize, rng: &mut StdRng| {
            Ok(edge_batches(
                graph,
                &negatives,
                &edges,
                cfg.negatives.min(2),
                BATCH,
                rng,
            ))
        };

        let mut step = SageStep {
            params,
            p,
            graph,
            opt: Adam::new(cfg.lr.min(0.01)),
            val: data.val,
            scores: &mut self.scores,
            staged: EmbeddingScores::default(),
        };
        mhg_train::train(&cfg.train_options(), sample, &mut step, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_planted_graph() {
        let dataset = DatasetKind::Amazon.generate(0.006, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut cfg = CommonConfig::fast();
        cfg.epochs = 5;
        let mut model = GraphSage::new(cfg);
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng).expect("fit must succeed");
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.58,
            "GraphSage failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
