//! R-GCN baseline (Schlichtkrull et al., ESWC 2018).
//!
//! Relational graph convolution:
//! `h_v = relu(x_v·W₀ + Σ_r mean(x_{N_r(v)})·W_r)`
//! followed by a DistMult decoder
//! `score(u, v, r) = Σ_d h_u[d] · R_r[d] · h_v[d]`,
//! trained with the logistic cross-entropy over positives and sampled
//! negatives, exactly the encoder/decoder split the original paper uses for
//! link prediction.

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore, Var};
use mhg_datasets::LabeledEdge;
use mhg_graph::{MultiplexGraph, NodeId, RelationId};
use mhg_sampling::NegativeSampler;
use mhg_tensor::{InitKind, Tensor};
use mhg_train::{edge_batches, BatchLoss, EdgeBatch, TrainStep};
use rand::rngs::StdRng;

use crate::agg::{gather_nodes, mean_relation_neighbors};
use crate::common::{CommonConfig, FitData, LinkPredictor, TrainError, TrainReport};

const FAN_OUT: usize = 8;
const BATCH: usize = 256;

/// The R-GCN baseline.
pub struct RGcn {
    config: CommonConfig,
    /// Final node representations (`N × d`).
    node_reps: Option<Tensor>,
    /// DistMult relation diagonals (`L × d`).
    relation_diag: Option<Tensor>,
}

struct RgcnParams {
    emb: ParamId,
    w_self: ParamId,
    w_rel: Vec<ParamId>,
    rel_diag: ParamId,
}

impl RGcn {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            node_reps: None,
            relation_diag: None,
        }
    }

    /// Encoder representation of `nodes` on the tape.
    fn represent_on(
        g: &mut Graph<'_>,
        p: &RgcnParams,
        graph: &MultiplexGraph,
        nodes: &[NodeId],
        rng: &mut StdRng,
    ) -> Var {
        let self_emb = gather_nodes(g, p.emb, nodes);
        let w0 = g.param(p.w_self);
        let mut acc = g.matmul(self_emb, w0);
        for r in graph.schema().relations() {
            let neigh = mean_relation_neighbors(g, p.emb, graph, nodes, r, FAN_OUT, rng);
            let wr = g.param(p.w_rel[r.index()]);
            let proj = g.matmul(neigh, wr);
            acc = g.add(acc, proj);
        }
        // tanh keeps the DistMult decoder sign-expressive.
        g.tanh(acc)
    }

    /// DistMult scores for aligned `(hl, hr)` rows under per-row relations.
    fn distmult_on(
        g: &mut Graph<'_>,
        p: &RgcnParams,
        hl: Var,
        hr: Var,
        relations: &[RelationId],
    ) -> Var {
        let rel_ids: Vec<u32> = relations.iter().map(|r| r.0 as u32).collect();
        let diag = g.gather(p.rel_diag, &rel_ids);
        let weighted = g.mul(hl, diag);
        g.row_dot(weighted, hr)
    }

    fn full_inference(
        params: &ParamStore,
        p: &RgcnParams,
        graph: &MultiplexGraph,
        rng: &mut StdRng,
    ) -> Tensor {
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let dim = params.value(p.w_self).cols();
        let mut out = Tensor::zeros(nodes.len(), dim);
        for (chunk_idx, chunk) in nodes.chunks(BATCH).enumerate() {
            let mut g = Graph::new(params);
            let rep = Self::represent_on(&mut g, p, graph, chunk, rng);
            for (i, row) in g.value(rep).rows_iter().enumerate() {
                out.set_row(chunk_idx * BATCH + i, row);
            }
        }
        out
    }
}

/// Validation ROC-AUC of a (representations, DistMult diagonal) snapshot.
fn snapshot_auc(reps: &Tensor, diag: &Tensor, val: &[LabeledEdge]) -> f64 {
    if val.is_empty() {
        return 0.5;
    }
    let scores: Vec<f32> = val
        .iter()
        .map(|e| distmult_score(reps, diag, e.u, e.v, e.relation))
        .collect();
    let labels: Vec<bool> = val.iter().map(|e| e.label).collect();
    mhg_eval::roc_auc(&scores, &labels)
}

/// The `TrainStep` for R-GCN: relational convolution + DistMult decoding per
/// [`EdgeBatch`], (representations, diagonal) snapshot on improvement.
struct RgcnStep<'a> {
    params: ParamStore,
    p: RgcnParams,
    graph: &'a MultiplexGraph,
    opt: Adam,
    val: &'a [LabeledEdge],
    node_reps: &'a mut Option<Tensor>,
    relation_diag: &'a mut Option<Tensor>,
    staged: Option<(Tensor, Tensor)>,
}

impl TrainStep for RgcnStep<'_> {
    type Batch = EdgeBatch;

    fn step(&mut self, batch: EdgeBatch, rng: &mut StdRng) -> BatchLoss {
        let mut g = Graph::new(&self.params);
        let hl = RGcn::represent_on(&mut g, &self.p, self.graph, &batch.lefts, rng);
        let hr = RGcn::represent_on(&mut g, &self.p, self.graph, &batch.rights, rng);
        let scores = RGcn::distmult_on(&mut g, &self.p, hl, hr, &batch.relations);
        let loss = g.logistic_loss(scores, &batch.labels);
        let loss_sum = g.scalar(loss) as f64;
        let grads = g.backward(loss);
        self.opt.step(&mut self.params, &grads);
        BatchLoss { loss_sum, denom: 1 }
    }

    fn eval(&mut self, rng: &mut StdRng) -> f64 {
        let reps = RGcn::full_inference(&self.params, &self.p, self.graph, rng);
        let diag = self.params.value(self.p.rel_diag).clone();
        let auc = snapshot_auc(&reps, &diag, self.val);
        self.staged = Some((reps, diag));
        auc
    }

    fn promote(&mut self) {
        if let Some((reps, diag)) = self.staged.take() {
            *self.node_reps = Some(reps);
            *self.relation_diag = Some(diag);
        }
    }

    fn is_fitted(&self) -> bool {
        self.node_reps.is_some()
    }

    fn export_state(&self, dict: &mut mhg_ckpt::StateDict) {
        self.params.export_state("model/params", dict);
        self.opt.export_state("model/opt", dict);
        if let Some(reps) = self.node_reps.as_ref() {
            dict.put_tensor("model/node_reps", reps.clone());
        }
        if let Some(diag) = self.relation_diag.as_ref() {
            dict.put_tensor("model/diag_snap", diag.clone());
        }
    }

    fn import_state(&mut self, dict: &mhg_ckpt::StateDict) -> Result<(), mhg_ckpt::CkptError> {
        self.params.import_state("model/params", dict)?;
        self.opt.import_state("model/opt", dict)?;
        *self.node_reps = if dict.contains("model/node_reps") {
            Some(dict.tensor("model/node_reps")?.clone())
        } else {
            None
        };
        *self.relation_diag = if dict.contains("model/diag_snap") {
            Some(dict.tensor("model/diag_snap")?.clone())
        } else {
            None
        };
        Ok(())
    }
}

fn distmult_score(reps: &Tensor, diag: &Tensor, u: NodeId, v: NodeId, r: RelationId) -> f32 {
    reps.row(u.index())
        .iter()
        .zip(reps.row(v.index()))
        .zip(diag.row(r.index()))
        .map(|((a, b), d)| a * b * d)
        .sum()
}

impl LinkPredictor for RGcn {
    fn name(&self) -> &'static str {
        "R-GCN"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = &self.config;
        let dim = cfg.dim;
        let num_rel = graph.schema().num_relations();

        let mut params = ParamStore::new();
        let p = RgcnParams {
            emb: params.register(
                "emb",
                InitKind::Uniform {
                    limit: 0.5 / dim as f32,
                }
                .init(graph.num_nodes(), dim, rng),
            ),
            w_self: params.register("w_self", InitKind::XavierUniform.init(dim, dim, rng)),
            w_rel: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("w_r{i}"),
                        InitKind::XavierUniform.init(dim, dim, rng),
                    )
                })
                .collect(),
            rel_diag: params.register(
                "rel_diag",
                InitKind::Uniform { limit: 1.0 }.init(num_rel, dim, rng),
            ),
        };
        let negatives = NegativeSampler::new(graph);

        let edges: Vec<(NodeId, NodeId, RelationId)> = graph
            .schema()
            .relations()
            .flat_map(|r| graph.edges_in(r).map(move |(u, v)| (u, v, r)))
            .collect();

        let sample = |_epoch: usize, rng: &mut StdRng| {
            Ok(edge_batches(
                graph,
                &negatives,
                &edges,
                cfg.negatives.min(3),
                BATCH,
                rng,
            ))
        };

        let mut step = RgcnStep {
            params,
            p,
            graph,
            opt: Adam::new(cfg.lr.min(0.01)),
            val: data.val,
            node_reps: &mut self.node_reps,
            relation_diag: &mut self.relation_diag,
            staged: None,
        };
        mhg_train::train(&cfg.train_options(), sample, &mut step, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        let reps = self.node_reps.as_ref().expect("score() before fit()");
        let diag = self.relation_diag.as_ref().expect("score() before fit()");
        distmult_score(reps, diag, u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_multiplex_graph() {
        let dataset = DatasetKind::Taobao.generate(0.01, 14);
        let mut rng = StdRng::seed_from_u64(15);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut cfg = CommonConfig::fast();
        cfg.epochs = 15;
        let mut model = RGcn::new(cfg);
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng).expect("fit must succeed");
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.55,
            "R-GCN failed to learn: auc {}",
            metrics.roc_auc
        );
    }

    #[test]
    fn distmult_is_relation_sensitive() {
        let reps = Tensor::from_rows(&[&[1.0, 0.0], &[1.0, 1.0]]);
        let diag = Tensor::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        let s0 = distmult_score(&reps, &diag, NodeId(0), NodeId(1), RelationId(0));
        let s1 = distmult_score(&reps, &diag, NodeId(0), NodeId(1), RelationId(1));
        assert!((s0 - 1.0).abs() < 1e-6);
        assert!(s1.abs() < 1e-6);
    }
}
