//! Attention building blocks shared by HAN, MAGNN and GATNE.

use mhg_autograd::{Graph, ParamId, Var};

/// Scaled dot-product attention pooling: scores `keys` (n × d) against a
/// single `query` (1 × d), softmax-normalises and returns the weighted sum
/// (1 × d).
pub(crate) fn dot_attention_pool(g: &mut Graph<'_>, query: Var, keys: Var) -> Var {
    let d = g.value(query).cols() as f32;
    let qt = g.transpose(query); // d×1
    let logits = g.matmul(keys, qt); // n×1
    let scaled = g.scale(logits, 1.0 / d.sqrt());
    let row = g.transpose(scaled); // 1×n
    let attn = g.softmax_rows(row); // 1×n
    g.matmul(attn, keys) // 1×d
}

/// Semantic-level attention (HAN-style): given stacked per-scheme summaries
/// `z` (S × d), computes `β = softmax(q^T tanh(z·W + b))` and returns the
/// β-weighted sum (1 × d), plus the attention row (1 × S).
pub(crate) fn semantic_attention(
    g: &mut Graph<'_>,
    z: Var,
    w: ParamId,
    b: ParamId,
    q: ParamId,
) -> (Var, Var) {
    let wv = g.param(w);
    let bv = g.param(b);
    let qv = g.param(q);
    let proj = g.matmul(z, wv); // S×ds
    let shifted = g.add_broadcast_row(proj, bv);
    let t = g.tanh(shifted);
    let scores = g.matmul(t, qv); // S×1
    let row = g.transpose(scores); // 1×S
    let attn = g.softmax_rows(row); // 1×S
    let pooled = g.matmul(attn, z); // 1×d
    (pooled, attn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_autograd::ParamStore;
    use mhg_tensor::{InitKind, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dot_attention_prefers_aligned_keys() {
        let params = ParamStore::new();
        let mut g = Graph::new(&params);
        let query = g.constant(Tensor::from_rows(&[&[1.0, 0.0]]));
        // Key 0 aligned with the query, key 1 orthogonal.
        let keys = g.constant(Tensor::from_rows(&[&[10.0, 0.0], &[0.0, 10.0]]));
        let pooled = dot_attention_pool(&mut g, query, keys);
        let v = g.value(pooled);
        assert!(v[(0, 0)] > v[(0, 1)], "pooled {v:?}");
    }

    #[test]
    fn semantic_attention_is_convex_combination() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = ParamStore::new();
        let w = params.register("w", InitKind::XavierUniform.init(3, 4, &mut rng));
        let b = params.register("b", Tensor::zeros(1, 4));
        let q = params.register("q", InitKind::XavierUniform.init(4, 1, &mut rng));
        let mut g = Graph::new(&params);
        let z = g.constant(Tensor::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]));
        let (pooled, attn) = semantic_attention(&mut g, z, w, b, q);
        let a = g.value(attn);
        let sum: f32 = a.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        let p = g.value(pooled);
        // Convex combination of one-hot rows: entries in [0,1], sum 1.
        let psum: f32 = p.row(0).iter().sum();
        assert!((psum - 1.0).abs() < 1e-5, "{p:?}");
    }

    /// Finite-difference gradient checks for both attention blocks, compiled
    /// under `--features checked` so every forward pass the checker runs is
    /// also swept by the dynamic sanitizer.
    #[cfg(feature = "checked")]
    mod gradients {
        use super::*;
        use mhg_autograd::gradcheck::check_gradients;
        use proptest::prelude::*;

        fn assert_checks_pass(
            checks: Vec<mhg_autograd::gradcheck::GradCheck>,
        ) -> Result<(), TestCaseError> {
            for c in checks {
                prop_assert!(
                    c.max_rel_err < 5e-2 || c.max_abs_err < 1e-3,
                    "param #{} rel {:.2e} abs {:.2e}",
                    c.id.index(),
                    c.max_rel_err,
                    c.max_abs_err
                );
            }
            Ok(())
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            #[test]
            fn semantic_attention_matches_finite_differences(
                seed in 0u64..1_000_000,
                s in 2usize..5,
                d in 2usize..5,
                ds in 2usize..5,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let z_t = InitKind::XavierUniform.init(s, d, &mut rng);
                let mut params = ParamStore::new();
                let w = params.register("w", InitKind::XavierUniform.init(d, ds, &mut rng));
                let b = params.register("b", Tensor::zeros(1, ds));
                let q = params.register("q", InitKind::XavierUniform.init(ds, 1, &mut rng));
                let checks = check_gradients(
                    &mut params,
                    |g| {
                        let z = g.constant(z_t.clone());
                        let (pooled, _) = semantic_attention(g, z, w, b, q);
                        let sq = g.mul(pooled, pooled);
                        g.sum_all(sq)
                    },
                    1e-2,
                );
                assert_checks_pass(checks)?;
            }

            #[test]
            fn dot_attention_matches_finite_differences(
                seed in 0u64..1_000_000,
                n in 2usize..6,
                d in 2usize..5,
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut params = ParamStore::new();
                let qp = params.register("query", InitKind::XavierUniform.init(1, d, &mut rng));
                let kp = params.register("keys", InitKind::XavierUniform.init(n, d, &mut rng));
                let checks = check_gradients(
                    &mut params,
                    |g| {
                        let query = g.param(qp);
                        let keys = g.param(kp);
                        let pooled = dot_attention_pool(g, query, keys);
                        let sq = g.mul(pooled, pooled);
                        g.sum_all(sq)
                    },
                    1e-2,
                );
                assert_checks_pass(checks)?;
            }
        }
    }
}
