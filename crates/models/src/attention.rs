//! Attention building blocks shared by HAN, MAGNN and GATNE.

use mhg_autograd::{Graph, ParamId, Var};

/// Scaled dot-product attention pooling: scores `keys` (n × d) against a
/// single `query` (1 × d), softmax-normalises and returns the weighted sum
/// (1 × d).
pub(crate) fn dot_attention_pool(g: &mut Graph<'_>, query: Var, keys: Var) -> Var {
    let d = g.value(query).cols() as f32;
    let qt = g.transpose(query); // d×1
    let logits = g.matmul(keys, qt); // n×1
    let scaled = g.scale(logits, 1.0 / d.sqrt());
    let row = g.transpose(scaled); // 1×n
    let attn = g.softmax_rows(row); // 1×n
    g.matmul(attn, keys) // 1×d
}

/// Semantic-level attention (HAN-style): given stacked per-scheme summaries
/// `z` (S × d), computes `β = softmax(q^T tanh(z·W + b))` and returns the
/// β-weighted sum (1 × d), plus the attention row (1 × S).
pub(crate) fn semantic_attention(
    g: &mut Graph<'_>,
    z: Var,
    w: ParamId,
    b: ParamId,
    q: ParamId,
) -> (Var, Var) {
    let wv = g.param(w);
    let bv = g.param(b);
    let qv = g.param(q);
    let proj = g.matmul(z, wv); // S×ds
    let shifted = g.add_broadcast_row(proj, bv);
    let t = g.tanh(shifted);
    let scores = g.matmul(t, qv); // S×1
    let row = g.transpose(scores); // 1×S
    let attn = g.softmax_rows(row); // 1×S
    let pooled = g.matmul(attn, z); // 1×d
    (pooled, attn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_autograd::ParamStore;
    use mhg_tensor::{InitKind, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dot_attention_prefers_aligned_keys() {
        let params = ParamStore::new();
        let mut g = Graph::new(&params);
        let query = g.constant(Tensor::from_rows(&[&[1.0, 0.0]]));
        // Key 0 aligned with the query, key 1 orthogonal.
        let keys = g.constant(Tensor::from_rows(&[&[10.0, 0.0], &[0.0, 10.0]]));
        let pooled = dot_attention_pool(&mut g, query, keys);
        let v = g.value(pooled);
        assert!(v[(0, 0)] > v[(0, 1)], "pooled {v:?}");
    }

    #[test]
    fn semantic_attention_is_convex_combination() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = ParamStore::new();
        let w = params.register("w", InitKind::XavierUniform.init(3, 4, &mut rng));
        let b = params.register("b", Tensor::zeros(1, 4));
        let q = params.register("q", InitKind::XavierUniform.init(4, 1, &mut rng));
        let mut g = Graph::new(&params);
        let z = g.constant(Tensor::from_rows(&[
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
        ]));
        let (pooled, attn) = semantic_attention(&mut g, z, w, b, q);
        let a = g.value(attn);
        let sum: f32 = a.row(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        let p = g.value(pooled);
        // Convex combination of one-hot rows: entries in [0,1], sum 1.
        let psum: f32 = p.row(0).iter().sum();
        assert!((psum - 1.0).abs() < 1e-5, "{p:?}");
    }
}
