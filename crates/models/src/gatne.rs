//! GATNE baseline (Cen et al., KDD 2019) — transductive GATNE-T.
//!
//! Each node has a shared *base embedding* plus one *edge embedding* per
//! relation. A node's relation-specific representation aggregates its
//! neighbors' edge embeddings under every relation, combines them with
//! relation-specific self-attention, projects into the base space and adds
//! the base embedding:
//!
//! `m_{v,r} = b_v + (aᵣ-weighted Σ_s agg_s(v)) · M_r`
//!
//! Training follows the original recipe: relation-restricted random walks →
//! heterogeneous skip-gram with negative sampling, scored against a context
//! table. This is the strongest published baseline and the runner-up in
//! every table of the paper.

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore, Var};
use mhg_graph::{MultiplexGraph, NodeId, RelationId};
use mhg_sampling::{pairs_from_walk, NegativeSampler, Pair};
use mhg_tensor::{InitKind, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::common::{
    CommonConfig, EarlyStopper, EmbeddingScores, FitData, LinkPredictor, StopDecision, TrainReport,
};

const NEIGHBOR_FAN: usize = 6;
const BATCH: usize = 64;

/// The GATNE-T baseline.
pub struct Gatne {
    config: CommonConfig,
    scores: EmbeddingScores,
}

pub(crate) struct GatneParams {
    pub base: ParamId,
    pub ctx: ParamId,
    /// Per relation: edge-embedding table (`N × d_e`).
    pub edge: Vec<ParamId>,
    /// Per relation: attention projection (`d_e × d_a`) and vector (`d_a × 1`).
    pub att_w: Vec<ParamId>,
    pub att_v: Vec<ParamId>,
    /// Per relation: output projection (`d_e × d`).
    pub proj: Vec<ParamId>,
}

/// Uniform random walk restricted to one relation-specific subgraph `g_r`.
pub(crate) fn walk_in_relation<R: Rng + ?Sized>(
    graph: &MultiplexGraph,
    r: RelationId,
    start: NodeId,
    length: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(length);
    walk.push(start);
    let mut current = start;
    while walk.len() < length {
        let ns = graph.neighbors(current, r);
        if ns.is_empty() {
            break;
        }
        current = ns[rng.gen_range(0..ns.len())];
        walk.push(current);
    }
    walk
}

impl Gatne {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }

    /// Registers all parameters.
    fn init_params(
        graph: &MultiplexGraph,
        dim: usize,
        edge_dim: usize,
        rng: &mut StdRng,
    ) -> (ParamStore, GatneParams) {
        let n = graph.num_nodes();
        let num_rel = graph.schema().num_relations();
        let da = edge_dim.max(4);
        let mut params = ParamStore::new();
        let p = GatneParams {
            base: params.register(
                "base",
                InitKind::Uniform {
                    limit: 0.5 / dim as f32,
                }
                .init(n, dim, rng),
            ),
            ctx: params.register("ctx", Tensor::zeros(n, dim)),
            edge: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("edge_r{i}"),
                        InitKind::Uniform {
                            limit: 0.5 / edge_dim as f32,
                        }
                        .init(n, edge_dim, rng),
                    )
                })
                .collect(),
            att_w: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("att_w_r{i}"),
                        InitKind::XavierUniform.init(edge_dim, da, rng),
                    )
                })
                .collect(),
            att_v: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("att_v_r{i}"),
                        InitKind::XavierUniform.init(da, 1, rng),
                    )
                })
                .collect(),
            proj: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("proj_r{i}"),
                        InitKind::XavierUniform.init(edge_dim, dim, rng),
                    )
                })
                .collect(),
        };
        (params, p)
    }

    /// Relation-specific representation of `v` under `r` on the tape.
    pub(crate) fn represent_node(
        g: &mut Graph<'_>,
        p: &GatneParams,
        graph: &MultiplexGraph,
        v: NodeId,
        r: RelationId,
        rng: &mut StdRng,
    ) -> Var {
        // One aggregated edge embedding per relation s.
        let rows: Vec<Var> = graph
            .schema()
            .relations()
            .map(|s| {
                let ns = graph.neighbors(v, s);
                let ids: Vec<u32> = if ns.is_empty() {
                    vec![v.0]
                } else {
                    (0..NEIGHBOR_FAN.min(ns.len()))
                        .map(|_| ns[rng.gen_range(0..ns.len())].0)
                        .collect()
                };
                let gathered = g.gather(p.edge[s.index()], &ids);
                g.mean_rows(gathered)
            })
            .collect();
        let u_stack = g.concat_rows(&rows); // L×d_e

        // Relation-r attention over the stacked relations.
        let w = g.param(p.att_w[r.index()]);
        let vq = g.param(p.att_v[r.index()]);
        let t = {
            let lin = g.matmul(u_stack, w);
            g.tanh(lin)
        };
        let scores = g.matmul(t, vq); // L×1
        let row = g.transpose(scores);
        let attn = g.softmax_rows(row); // 1×L
        let pooled = g.matmul(attn, u_stack); // 1×d_e

        let m = g.param(p.proj[r.index()]);
        let projected = g.matmul(pooled, m); // 1×d
        let base = g.gather(p.base, &[v.0]);
        g.add(base, projected)
    }

    /// Batched representations of `(node, relation)` pairs.
    fn represent_batch(
        g: &mut Graph<'_>,
        p: &GatneParams,
        graph: &MultiplexGraph,
        items: &[(NodeId, RelationId)],
        rng: &mut StdRng,
    ) -> Var {
        let rows: Vec<Var> = items
            .iter()
            .map(|&(v, r)| Self::represent_node(g, p, graph, v, r, rng))
            .collect();
        g.concat_rows(&rows)
    }

    /// Per-relation full inference tables.
    fn full_inference(
        params: &ParamStore,
        p: &GatneParams,
        graph: &MultiplexGraph,
        rng: &mut StdRng,
    ) -> Vec<Tensor> {
        let dim = params.value(p.base).cols();
        let nodes: Vec<NodeId> = graph.nodes().collect();
        graph
            .schema()
            .relations()
            .map(|r| {
                let mut table = Tensor::zeros(nodes.len(), dim);
                for (ci, chunk) in nodes.chunks(BATCH).enumerate() {
                    let items: Vec<(NodeId, RelationId)> = chunk.iter().map(|&v| (v, r)).collect();
                    let mut g = Graph::new(params);
                    let rep = Self::represent_batch(&mut g, p, graph, &items, rng);
                    for (i, row) in g.value(rep).rows_iter().enumerate() {
                        table.set_row(ci * BATCH + i, row);
                    }
                }
                table
            })
            .collect()
    }
}

impl LinkPredictor for Gatne {
    fn name(&self) -> &'static str {
        "GATNE"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> TrainReport {
        let graph = data.graph;
        let cfg = &self.config;
        let (mut params, p) = Self::init_params(graph, cfg.dim, cfg.edge_dim, rng);
        let mut opt = Adam::new(cfg.lr.min(0.01));
        let negatives = NegativeSampler::new(graph);

        let pair_budget = crate::common::pair_budget(graph.num_edges());

        let mut stopper = EarlyStopper::new(cfg.patience);
        let mut report = TrainReport::default();

        for epoch in 0..cfg.epochs {
            // Generate relation-tagged skip-gram pairs from walks in g_r.
            let mut tagged: Vec<(Pair, RelationId)> = Vec::new();
            for r in graph.schema().relations() {
                for start in graph.nodes() {
                    if graph.degree(start, r) == 0 {
                        continue;
                    }
                    for _ in 0..cfg.walks_per_node.min(4) {
                        let walk = walk_in_relation(graph, r, start, cfg.walk_length, rng);
                        for pair in pairs_from_walk(&walk, cfg.window) {
                            tagged.push((pair, r));
                        }
                    }
                }
            }
            tagged.shuffle(rng);
            tagged.truncate(pair_budget);

            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for chunk in tagged.chunks(BATCH) {
                let mut centers = Vec::with_capacity(chunk.len());
                let mut targets: Vec<u32> = Vec::new();
                let mut labels: Vec<f32> = Vec::new();
                // How many rows (1 positive + negatives) reuse each center.
                let mut row_counts = Vec::with_capacity(chunk.len());
                for &(pair, r) in chunk {
                    centers.push((pair.center, r));
                    let ty = graph.node_type(pair.context);
                    let negs = negatives.sample_many(ty, pair.context, cfg.negatives, rng);
                    targets.push(pair.context.0);
                    labels.push(1.0);
                    for &neg in &negs {
                        targets.push(neg.0);
                        labels.push(-1.0);
                    }
                    row_counts.push(1 + negs.len());
                }
                let mut g = Graph::new(&params);
                // Each center representation is computed once and its tape
                // row reused for the positive and all its negatives.
                let center_reps = Self::represent_batch(&mut g, &p, graph, &centers, rng);
                let mut expanded_rows = Vec::with_capacity(targets.len());
                for (ci, &count) in row_counts.iter().enumerate() {
                    for _ in 0..count {
                        expanded_rows.push(g.slice_rows(center_reps, ci, ci + 1));
                    }
                }
                let left = g.concat_rows(&expanded_rows);
                let right = g.gather(p.ctx, &targets);
                let scores = g.row_dot(left, right);
                let loss = g.logistic_loss(scores, &labels);
                loss_sum += g.scalar(loss) as f64;
                batches += 1;
                let grads = g.backward(loss);
                opt.step(&mut params, &grads);
            }

            report.epochs_run = epoch + 1;
            report.final_loss = (loss_sum / batches.max(1) as f64) as f32;

            let tables = Self::full_inference(&params, &p, graph, rng);
            let snapshot =
                EmbeddingScores::per_relation(tables).with_context(params.value(p.ctx).clone());
            let auc = crate::common::val_auc(&snapshot, data.val);
            match stopper.update(auc) {
                StopDecision::Improved => self.scores = snapshot,
                StopDecision::Continue => {}
                StopDecision::Stop => break,
            }
        }
        if !self.scores.is_ready() {
            let tables = Self::full_inference(&params, &p, graph, rng);
            self.scores =
                EmbeddingScores::per_relation(tables).with_context(params.value(p.ctx).clone());
        }
        report.best_val_auc = stopper.best();
        report
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn relation_walks_stay_in_subgraph() {
        let dataset = DatasetKind::Taobao.generate(0.004, 22);
        let g = &dataset.graph;
        let mut rng = StdRng::seed_from_u64(23);
        for r in g.schema().relations() {
            let Some(start) = g.nodes().find(|&v| g.degree(v, r) > 0) else {
                continue;
            };
            let walk = walk_in_relation(g, r, start, 8, &mut rng);
            for pair in walk.windows(2) {
                assert!(g.has_edge(pair[0], pair[1], r));
            }
        }
    }

    #[test]
    fn beats_random_on_multiplex_graph() {
        let dataset = DatasetKind::Amazon.generate(0.008, 24);
        let mut rng = StdRng::seed_from_u64(25);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut cfg = CommonConfig::fast();
        cfg.epochs = 4;
        let mut model = Gatne::new(cfg);
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng);
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.55,
            "GATNE failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
