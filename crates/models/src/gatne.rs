//! GATNE baseline (Cen et al., KDD 2019) — transductive GATNE-T.
//!
//! Each node has a shared *base embedding* plus one *edge embedding* per
//! relation. A node's relation-specific representation aggregates its
//! neighbors' edge embeddings under every relation, combines them with
//! relation-specific self-attention, projects into the base space and adds
//! the base embedding:
//!
//! `m_{v,r} = b_v + (aᵣ-weighted Σ_s agg_s(v)) · M_r`
//!
//! Training follows the original recipe: relation-restricted random walks →
//! heterogeneous skip-gram with negative sampling, scored against a context
//! table. This is the strongest published baseline and the runner-up in
//! every table of the paper.

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore, Var};
use mhg_datasets::LabeledEdge;
use mhg_graph::{MultiplexGraph, NodeId, RelationId};
use mhg_sampling::{pairs_from_walk, NegativeSampler, Pair};
use mhg_tensor::{InitKind, Tensor};
use mhg_train::{pair_batches, BatchLoss, PairExample, TrainStep};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::common::{
    CommonConfig, EmbeddingScores, FitData, LinkPredictor, TrainError, TrainReport,
};

const NEIGHBOR_FAN: usize = 6;
const BATCH: usize = 64;

/// The GATNE-T baseline.
pub struct Gatne {
    config: CommonConfig,
    scores: EmbeddingScores,
}

pub(crate) struct GatneParams {
    pub base: ParamId,
    pub ctx: ParamId,
    /// Per relation: edge-embedding table (`N × d_e`).
    pub edge: Vec<ParamId>,
    /// Per relation: attention projection (`d_e × d_a`) and vector (`d_a × 1`).
    pub att_w: Vec<ParamId>,
    pub att_v: Vec<ParamId>,
    /// Per relation: output projection (`d_e × d`).
    pub proj: Vec<ParamId>,
}

/// Uniform random walk restricted to one relation-specific subgraph `g_r`.
pub(crate) fn walk_in_relation<R: Rng + ?Sized>(
    graph: &MultiplexGraph,
    r: RelationId,
    start: NodeId,
    length: usize,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut walk = Vec::with_capacity(length);
    walk.push(start);
    let mut current = start;
    while walk.len() < length {
        let ns = graph.neighbors(current, r);
        if ns.is_empty() {
            break;
        }
        current = ns[rng.gen_range(0..ns.len())];
        walk.push(current);
    }
    walk
}

impl Gatne {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }

    /// Registers all parameters.
    fn init_params(
        graph: &MultiplexGraph,
        dim: usize,
        edge_dim: usize,
        rng: &mut StdRng,
    ) -> (ParamStore, GatneParams) {
        let n = graph.num_nodes();
        let num_rel = graph.schema().num_relations();
        let da = edge_dim.max(4);
        let mut params = ParamStore::new();
        let p = GatneParams {
            base: params.register(
                "base",
                InitKind::Uniform {
                    limit: 0.5 / dim as f32,
                }
                .init(n, dim, rng),
            ),
            ctx: params.register("ctx", Tensor::zeros(n, dim)),
            edge: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("edge_r{i}"),
                        InitKind::Uniform {
                            limit: 0.5 / edge_dim as f32,
                        }
                        .init(n, edge_dim, rng),
                    )
                })
                .collect(),
            att_w: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("att_w_r{i}"),
                        InitKind::XavierUniform.init(edge_dim, da, rng),
                    )
                })
                .collect(),
            att_v: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("att_v_r{i}"),
                        InitKind::XavierUniform.init(da, 1, rng),
                    )
                })
                .collect(),
            proj: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("proj_r{i}"),
                        InitKind::XavierUniform.init(edge_dim, dim, rng),
                    )
                })
                .collect(),
        };
        (params, p)
    }

    /// Relation-specific representation of `v` under `r` on the tape.
    pub(crate) fn represent_node(
        g: &mut Graph<'_>,
        p: &GatneParams,
        graph: &MultiplexGraph,
        v: NodeId,
        r: RelationId,
        rng: &mut StdRng,
    ) -> Var {
        // One aggregated edge embedding per relation s.
        let rows: Vec<Var> = graph
            .schema()
            .relations()
            .map(|s| {
                let ns = graph.neighbors(v, s);
                let ids: Vec<u32> = if ns.is_empty() {
                    vec![v.0]
                } else {
                    (0..NEIGHBOR_FAN.min(ns.len()))
                        .map(|_| ns[rng.gen_range(0..ns.len())].0)
                        .collect()
                };
                let gathered = g.gather(p.edge[s.index()], &ids);
                g.mean_rows(gathered)
            })
            .collect();
        let u_stack = g.concat_rows(&rows); // L×d_e

        // Relation-r attention over the stacked relations.
        let w = g.param(p.att_w[r.index()]);
        let vq = g.param(p.att_v[r.index()]);
        let t = {
            let lin = g.matmul(u_stack, w);
            g.tanh(lin)
        };
        let scores = g.matmul(t, vq); // L×1
        let row = g.transpose(scores);
        let attn = g.softmax_rows(row); // 1×L
        let pooled = g.matmul(attn, u_stack); // 1×d_e

        let m = g.param(p.proj[r.index()]);
        let projected = g.matmul(pooled, m); // 1×d
        let base = g.gather(p.base, &[v.0]);
        g.add(base, projected)
    }

    /// Batched representations of `(node, relation)` pairs.
    fn represent_batch(
        g: &mut Graph<'_>,
        p: &GatneParams,
        graph: &MultiplexGraph,
        items: &[(NodeId, RelationId)],
        rng: &mut StdRng,
    ) -> Var {
        let rows: Vec<Var> = items
            .iter()
            .map(|&(v, r)| Self::represent_node(g, p, graph, v, r, rng))
            .collect();
        g.concat_rows(&rows)
    }

    /// Per-relation full inference tables.
    fn full_inference(
        params: &ParamStore,
        p: &GatneParams,
        graph: &MultiplexGraph,
        rng: &mut StdRng,
    ) -> Vec<Tensor> {
        let dim = params.value(p.base).cols();
        let nodes: Vec<NodeId> = graph.nodes().collect();
        graph
            .schema()
            .relations()
            .map(|r| {
                let mut table = Tensor::zeros(nodes.len(), dim);
                for (ci, chunk) in nodes.chunks(BATCH).enumerate() {
                    let items: Vec<(NodeId, RelationId)> = chunk.iter().map(|&v| (v, r)).collect();
                    let mut g = Graph::new(params);
                    let rep = Self::represent_batch(&mut g, p, graph, &items, rng);
                    for (i, row) in g.value(rep).rows_iter().enumerate() {
                        table.set_row(ci * BATCH + i, row);
                    }
                }
                table
            })
            .collect()
    }
}

/// The `TrainStep` for GATNE: relation-specific center representations
/// scored against the context table, per-relation table snapshot on
/// improvement.
struct GatneStep<'a> {
    params: ParamStore,
    p: GatneParams,
    graph: &'a MultiplexGraph,
    opt: Adam,
    val: &'a [LabeledEdge],
    scores: &'a mut EmbeddingScores,
    staged: EmbeddingScores,
}

impl TrainStep for GatneStep<'_> {
    type Batch = Vec<PairExample>;

    fn step(&mut self, batch: Vec<PairExample>, rng: &mut StdRng) -> BatchLoss {
        let mut centers = Vec::with_capacity(batch.len());
        let mut targets: Vec<u32> = Vec::new();
        let mut labels: Vec<f32> = Vec::new();
        // How many rows (1 positive + negatives) reuse each center.
        let mut row_counts = Vec::with_capacity(batch.len());
        for ex in &batch {
            centers.push((ex.center, ex.relation));
            targets.push(ex.context.0);
            labels.push(1.0);
            for &neg in &ex.negatives {
                targets.push(neg.0);
                labels.push(-1.0);
            }
            row_counts.push(1 + ex.negatives.len());
        }
        let mut g = Graph::new(&self.params);
        // Each center representation is computed once and its tape row
        // reused for the positive and all its negatives.
        let center_reps = Gatne::represent_batch(&mut g, &self.p, self.graph, &centers, rng);
        let mut expanded_rows = Vec::with_capacity(targets.len());
        for (ci, &count) in row_counts.iter().enumerate() {
            for _ in 0..count {
                expanded_rows.push(g.slice_rows(center_reps, ci, ci + 1));
            }
        }
        let left = g.concat_rows(&expanded_rows);
        let right = g.gather(self.p.ctx, &targets);
        let scores = g.row_dot(left, right);
        let loss = g.logistic_loss(scores, &labels);
        let loss_sum = g.scalar(loss) as f64;
        let grads = g.backward(loss);
        self.opt.step(&mut self.params, &grads);
        BatchLoss { loss_sum, denom: 1 }
    }

    fn eval(&mut self, rng: &mut StdRng) -> f64 {
        let tables = Gatne::full_inference(&self.params, &self.p, self.graph, rng);
        self.staged = EmbeddingScores::per_relation(tables)
            .with_context(self.params.value(self.p.ctx).clone());
        crate::common::val_auc(&self.staged, self.val)
    }

    fn promote(&mut self) {
        *self.scores = std::mem::take(&mut self.staged);
    }

    fn is_fitted(&self) -> bool {
        self.scores.is_ready()
    }

    fn export_state(&self, dict: &mut mhg_ckpt::StateDict) {
        self.params.export_state("model/params", dict);
        self.opt.export_state("model/opt", dict);
        self.scores.export_state("model/scores", dict);
    }

    fn import_state(&mut self, dict: &mhg_ckpt::StateDict) -> Result<(), mhg_ckpt::CkptError> {
        self.params.import_state("model/params", dict)?;
        self.opt.import_state("model/opt", dict)?;
        self.scores.import_state("model/scores", dict)
    }
}

impl LinkPredictor for Gatne {
    fn name(&self) -> &'static str {
        "GATNE"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = &self.config;
        let (params, p) = Self::init_params(graph, cfg.dim, cfg.edge_dim, rng);
        let negatives = NegativeSampler::new(graph);

        let pair_budget = crate::common::pair_budget(graph.num_edges());

        // Generate relation-tagged skip-gram pairs from walks in g_r.
        let sample = |_epoch: usize, rng: &mut StdRng| {
            let mut tagged: Vec<(Pair, RelationId)> = Vec::new();
            for r in graph.schema().relations() {
                for start in graph.nodes() {
                    if graph.degree(start, r) == 0 {
                        continue;
                    }
                    for _ in 0..cfg.walks_per_node.min(4) {
                        let walk = walk_in_relation(graph, r, start, cfg.walk_length, rng);
                        for pair in pairs_from_walk(&walk, cfg.window) {
                            tagged.push((pair, r));
                        }
                    }
                }
            }
            tagged.shuffle(rng);
            tagged.truncate(pair_budget);
            Ok(pair_batches(
                graph,
                &negatives,
                tagged,
                cfg.negatives,
                BATCH,
                rng,
            ))
        };

        let mut step = GatneStep {
            params,
            p,
            graph,
            opt: Adam::new(cfg.lr.min(0.01)),
            val: data.val,
            scores: &mut self.scores,
            staged: EmbeddingScores::default(),
        };
        mhg_train::train(&cfg.train_options(), sample, &mut step, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn relation_walks_stay_in_subgraph() {
        let dataset = DatasetKind::Taobao.generate(0.004, 22);
        let g = &dataset.graph;
        let mut rng = StdRng::seed_from_u64(23);
        for r in g.schema().relations() {
            let Some(start) = g.nodes().find(|&v| g.degree(v, r) > 0) else {
                continue;
            };
            let walk = walk_in_relation(g, r, start, 8, &mut rng);
            for pair in walk.windows(2) {
                assert!(g.has_edge(pair[0], pair[1], r));
            }
        }
    }

    #[test]
    fn beats_random_on_multiplex_graph() {
        let dataset = DatasetKind::Amazon.generate(0.008, 24);
        let mut rng = StdRng::seed_from_u64(25);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut cfg = CommonConfig::fast();
        cfg.epochs = 4;
        let mut model = Gatne::new(cfg);
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng).expect("fit must succeed");
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.55,
            "GATNE failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
