//! DeepWalk baseline (Perozzi et al., KDD 2014).
//!
//! Uniform random walks over the flattened graph (node and edge types
//! ignored, as the paper specifies for this baseline) feed a skip-gram model
//! with negative sampling. One shared embedding per node.

use mhg_graph::{NodeId, RelationId};
use mhg_sampling::{pairs_from_walk, sharded_over_obs, NegativeSampler, Pair, UniformWalker};
use mhg_train::pair_batches;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::common::{
    CommonConfig, EmbeddingScores, FitData, LinkPredictor, TrainError, TrainReport,
};
use crate::sgns::{Sgns, SgnsStep};

/// Pairs per minibatch for the hand-rolled SGNS models (pure grouping: the
/// update is per-pair, so the batch size never changes results).
pub(crate) const SGNS_BATCH: usize = 1024;

/// The DeepWalk baseline.
pub struct DeepWalk {
    config: CommonConfig,
    scores: EmbeddingScores,
}

impl DeepWalk {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }

    /// The trained embedding artefact (for inspection and regression tests).
    pub fn embedding_scores(&self) -> &EmbeddingScores {
        &self.scores
    }
}

impl LinkPredictor for DeepWalk {
    fn name(&self) -> &'static str {
        "DeepWalk"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = &self.config;
        let walker = UniformWalker::new(graph);
        let negatives = NegativeSampler::new(graph);
        let starts: Vec<NodeId> = graph.nodes().collect();

        // Full paper walk protocol (wall-clock-normalised budget: the
        // hand-rolled SGNS update is cheap enough for every pair). Walks are
        // generated in fixed shards with one derived sub-RNG each, so the
        // walk set is bit-identical for any thread count; the post-walk
        // shuffle keeps the SGD pair order random.
        let sample = |_epoch: usize, rng: &mut StdRng| {
            let base: u64 = rng.gen();
            let mut tagged: Vec<(Pair, RelationId)> =
                sharded_over_obs(&cfg.obs, base, &starts, |shard, rng| {
                    let mut out = Vec::new();
                    for &start in shard {
                        for _ in 0..cfg.walks_per_node {
                            let walk = walker.walk(start, cfg.walk_length, rng);
                            out.extend(
                                pairs_from_walk(&walk, cfg.window)
                                    .into_iter()
                                    .map(|p| (p, RelationId(0))),
                            );
                        }
                    }
                    out
                });
            tagged.shuffle(rng);
            Ok(pair_batches(
                graph,
                &negatives,
                tagged,
                cfg.negatives,
                SGNS_BATCH,
                rng,
            ))
        };

        let model = Sgns::new(graph.num_nodes(), cfg.dim, rng);
        let mut step = SgnsStep::new(model, cfg.lr, data.val, &mut self.scores);
        mhg_train::train(&cfg.train_options(), sample, &mut step, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: mhg_graph::RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_planted_graph() {
        let dataset = DatasetKind::Amazon.generate(0.01, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut model = DeepWalk::new(CommonConfig::fast());
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        let report = model.fit(&data, &mut rng).expect("fit must succeed");
        assert!(report.epochs_run >= 1);
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.6,
            "DeepWalk failed to learn: auc {}",
            metrics.roc_auc
        );
    }
}
