//! LINE baseline (Tang et al., WWW 2015).
//!
//! Trains two embedding halves: first-order proximity (direct edges score
//! high under a symmetric dot product) and second-order proximity (shared
//! neighborhoods, via a separate context table). The final embedding is the
//! concatenation of both halves, as in the original paper. Edge sampling
//! replaces walks; node and edge types are ignored.

use mhg_datasets::LabeledEdge;
use mhg_graph::{NodeId, RelationId};
use mhg_sampling::NegativeSampler;
use mhg_tensor::{sigmoid_scalar, InitKind, Tensor};
use mhg_train::{BatchLoss, TrainStep};
use rand::rngs::StdRng;
use rand::Rng;

use crate::common::{
    import_tensor_like, val_auc, CommonConfig, EmbeddingScores, FitData, LinkPredictor, TrainError,
    TrainReport,
};
use crate::sgns::Sgns;

/// Samples per LINE minibatch (pure grouping; the update is per-sample).
const LINE_BATCH: usize = 1024;

/// One pre-sampled LINE training example: an oriented edge with independent
/// negative sets for the first- and second-order halves.
struct LineExample {
    u: NodeId,
    v: NodeId,
    negs_first: Vec<NodeId>,
    negs_second: Vec<NodeId>,
}

/// The `TrainStep` for LINE: applies first-order + second-order updates per
/// example, snapshots the concatenated halves.
struct LineStep<'a> {
    first: Tensor,
    second: Sgns,
    lr: f32,
    val: &'a [LabeledEdge],
    scores: &'a mut EmbeddingScores,
    staged: EmbeddingScores,
}

impl TrainStep for LineStep<'_> {
    type Batch = Vec<LineExample>;

    fn step(&mut self, batch: Vec<LineExample>, _rng: &mut StdRng) -> BatchLoss {
        let mut loss_sum = 0.0f64;
        let denom = batch.len();
        for ex in batch {
            // First-order update: σ(e_u · e_v) toward 1, negatives to 0.
            loss_sum += first_order_step(&mut self.first, ex.u, ex.v, self.lr) as f64;
            for &neg in &ex.negs_first {
                loss_sum += first_order_neg_step(&mut self.first, ex.u, neg, self.lr) as f64;
            }
            // Second-order update via the shared SGNS core.
            loss_sum += self.second.train_pair(ex.u, ex.v, &ex.negs_second, self.lr) as f64;
        }
        BatchLoss { loss_sum, denom }
    }

    fn eval(&mut self, _rng: &mut StdRng) -> f64 {
        self.staged = EmbeddingScores::shared(concat_halves(&self.first, self.second.embeddings()));
        val_auc(&self.staged, self.val)
    }

    fn promote(&mut self) {
        *self.scores = std::mem::take(&mut self.staged);
    }

    fn is_fitted(&self) -> bool {
        self.scores.is_ready()
    }

    fn export_state(&self, dict: &mut mhg_ckpt::StateDict) {
        dict.put_tensor("model/first", self.first.clone());
        self.second.export_state("model/second", dict);
        self.scores.export_state("model/scores", dict);
    }

    fn import_state(&mut self, dict: &mhg_ckpt::StateDict) -> Result<(), mhg_ckpt::CkptError> {
        self.first = import_tensor_like(&self.first, "model/first", dict)?;
        self.second.import_state("model/second", dict)?;
        self.scores.import_state("model/scores", dict)
    }
}

/// The LINE baseline (first + second order proximity).
pub struct Line {
    config: CommonConfig,
    scores: EmbeddingScores,
}

impl Line {
    /// Creates an untrained model.
    pub fn new(config: CommonConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
        }
    }
}

impl LinkPredictor for Line {
    fn name(&self) -> &'static str {
        "LINE"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = &self.config;
        let half = (cfg.dim / 2).max(4);

        // First-order half: symmetric SGNS-style updates on direct edges.
        let limit = 0.5 / half as f32;
        let first = InitKind::Uniform { limit }.init(graph.num_nodes(), half, rng);
        // Second-order half: standard SGNS with edges as (center, context).
        let second = Sgns::new(graph.num_nodes(), half, rng);

        let negatives = NegativeSampler::new(graph);
        // Flatten the edge list once (LINE ignores types).
        let edges: Vec<(NodeId, NodeId)> = graph
            .schema()
            .relations()
            .flat_map(|r| graph.edges_in(r).collect::<Vec<_>>())
            .collect();
        if edges.is_empty() {
            self.scores = EmbeddingScores::shared(Tensor::zeros(graph.num_nodes(), 2 * half));
            return Ok(TrainReport::default());
        }

        // Full edge-sampling protocol (wall-clock-normalised budget; see
        // `pair_budget` for the tape-model counterpart).
        let samples_per_epoch = edges.len() * cfg.walks_per_node.max(1);
        let sample = |_epoch: usize, rng: &mut StdRng| {
            let mut batches: Vec<Vec<LineExample>> =
                Vec::with_capacity(samples_per_epoch.div_ceil(LINE_BATCH));
            let mut current = Vec::with_capacity(LINE_BATCH.min(samples_per_epoch));
            for _ in 0..samples_per_epoch {
                let &(u, v) = &edges[rng.gen_range(0..edges.len())];
                // Symmetrise direction.
                let (u, v) = if rng.gen::<bool>() { (u, v) } else { (v, u) };
                let ty = graph.node_type(v);
                current.push(LineExample {
                    u,
                    v,
                    negs_first: negatives.sample_many(ty, v, cfg.negatives, rng),
                    negs_second: negatives.sample_many(ty, v, cfg.negatives, rng),
                });
                if current.len() == LINE_BATCH {
                    batches.push(std::mem::take(&mut current));
                }
            }
            if !current.is_empty() {
                batches.push(current);
            }
            Ok(batches)
        };

        let mut step = LineStep {
            first,
            second,
            lr: cfg.lr,
            val: data.val,
            scores: &mut self.scores,
            staged: EmbeddingScores::default(),
        };
        mhg_train::train(&cfg.train_options(), sample, &mut step, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}

/// Symmetric positive update on the first-order table; returns the loss.
fn first_order_step(table: &mut Tensor, u: NodeId, v: NodeId, lr: f32) -> f32 {
    let s: f32 = table
        .row(u.index())
        .iter()
        .zip(table.row(v.index()))
        .map(|(a, b)| a * b)
        .sum();
    let p = sigmoid_scalar(s);
    let g = p - 1.0;
    let u_row: Vec<f32> = table.row(u.index()).to_vec();
    let v_row: Vec<f32> = table.row(v.index()).to_vec();
    for (x, gv) in table.row_mut(u.index()).iter_mut().zip(&v_row) {
        *x -= lr * g * gv;
    }
    for (x, gu) in table.row_mut(v.index()).iter_mut().zip(&u_row) {
        *x -= lr * g * gu;
    }
    -mhg_tensor::log_sigmoid(s)
}

/// Symmetric negative update; returns the loss.
fn first_order_neg_step(table: &mut Tensor, u: NodeId, neg: NodeId, lr: f32) -> f32 {
    if u == neg {
        return 0.0;
    }
    let s: f32 = table
        .row(u.index())
        .iter()
        .zip(table.row(neg.index()))
        .map(|(a, b)| a * b)
        .sum();
    let p = sigmoid_scalar(s);
    let g = p; // label 0
    let u_row: Vec<f32> = table.row(u.index()).to_vec();
    let n_row: Vec<f32> = table.row(neg.index()).to_vec();
    for (x, gv) in table.row_mut(u.index()).iter_mut().zip(&n_row) {
        *x -= lr * g * gv;
    }
    for (x, gu) in table.row_mut(neg.index()).iter_mut().zip(&u_row) {
        *x -= lr * g * gu;
    }
    -mhg_tensor::log_sigmoid(-s)
}

fn concat_halves(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rows(), b.rows());
    let mut out = Tensor::zeros(a.rows(), a.cols() + b.cols());
    for r in 0..a.rows() {
        out.row_mut(r)[..a.cols()].copy_from_slice(a.row(r));
        out.row_mut(r)[a.cols()..].copy_from_slice(b.row(r));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::evaluate;
    use mhg_datasets::{DatasetKind, EdgeSplit};
    use rand::SeedableRng;

    #[test]
    fn beats_random_on_planted_graph() {
        let dataset = DatasetKind::Amazon.generate(0.01, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut model = Line::new(CommonConfig::fast());
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng).expect("fit must succeed");
        let metrics = evaluate(&model, &split.test);
        assert!(
            metrics.roc_auc > 0.6,
            "LINE failed to learn: auc {}",
            metrics.roc_auc
        );
    }

    #[test]
    fn concat_preserves_halves() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0]]);
        let c = concat_halves(&a, &b);
        assert_eq!(c.row(0), &[1.0, 2.0, 3.0]);
    }
}
