//! The shared model interface, hyper-parameters and training utilities.

use std::path::PathBuf;

use mhg_ckpt::{CkptError, StateDict};
use mhg_datasets::LabeledEdge;
use mhg_graph::{GraphStore, MultiplexGraph, NodeId, NodeTypeId, RelationId};
use mhg_tensor::Tensor;
use mhg_train::TrainOptions;
use rand::rngs::StdRng;

pub use mhg_obs::{EventValue, Obs, ObsConfig};
pub use mhg_train::{
    pair_budget, EarlyStopper, RecoveryCounters, StopDecision, TimingBreakdown, TrainError,
    TrainReport,
};

/// Everything a model sees during training: the **training** graph (held-out
/// edges removed), the dataset's metapath shapes (Table II), and the
/// validation edges used for early stopping.
///
/// Generic over the [`GraphStore`] backend (defaulting to the in-RAM
/// [`MultiplexGraph`], which keeps every existing `FitData<'_>` signature
/// unchanged) so models that support it can train directly over the paged
/// `ShardedCsr` — the chaos-soak path.
pub struct FitData<'a, G: GraphStore = MultiplexGraph> {
    /// Training graph (same node set/schema as the full graph).
    pub graph: &'a G,
    /// Metapath type shapes for metapath-based models.
    pub metapath_shapes: &'a [Vec<NodeTypeId>],
    /// Labelled validation edges.
    pub val: &'a [LabeledEdge],
}

/// Hyper-parameters shared by all models — defaults follow the paper's
/// experimental settings (§IV-C) and its sensitivity analysis (Fig. 3:
/// `d_m = 128`, `d_e = 8`, 5 negatives).
#[derive(Clone, Debug)]
pub struct CommonConfig {
    /// Base embedding dimension `d_m`.
    pub dim: usize,
    /// Edge/relation-specific embedding dimension `d_e` (GATNE, HybridGNN).
    pub edge_dim: usize,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Walks started per node per epoch.
    pub walks_per_node: usize,
    /// Nodes per walk.
    pub walk_length: usize,
    /// Skip-gram window radius `δ`.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Learning rate.
    pub lr: f32,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Run each model's sampling recipe on a background worker thread,
    /// double-buffered against the compute stage. Bit-identical results to
    /// inline sampling (see `mhg-train`); purely a throughput knob.
    pub background_sampling: bool,
    /// Worker threads for the `mhg-par` kernel pool and sharded walk
    /// generation; `0` (the default) inherits the process-wide setting
    /// (`MHG_THREADS` env, else available parallelism). Like
    /// `background_sampling`, purely a throughput knob: results are
    /// bit-identical for any value.
    pub threads: usize,
    /// Checkpoint the full training state every this many epochs (`0` = no
    /// per-epoch cadence; a final checkpoint is still written when
    /// `checkpoint_dir` is set). See `mhg_train::TrainOptions`.
    pub checkpoint_every: usize,
    /// Directory for atomic, checksummed training checkpoints; `None`
    /// disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the latest checkpoint in `checkpoint_dir` before
    /// training. A resumed run is bit-identical to an uninterrupted one.
    pub resume: bool,
    /// Observability handle threaded into the training pipeline and the
    /// walk sampler: per-epoch metrics, stage spans, recovery events.
    /// Defaults to whatever the `MHG_OBS` environment variable configures
    /// (nothing, when unset). Recording never changes a result: metrics
    /// are clock/atomic side channels outside every RNG stream.
    pub obs: Obs,
}

impl Default for CommonConfig {
    fn default() -> Self {
        Self {
            dim: 128,
            edge_dim: 8,
            epochs: 30,
            walks_per_node: 20,
            walk_length: 10,
            window: 5,
            negatives: 5,
            lr: 0.025,
            patience: 5,
            background_sampling: true,
            threads: 0,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: false,
            obs: Obs::from_env(),
        }
    }
}

impl CommonConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            dim: 32,
            edge_dim: 8,
            epochs: 8,
            walks_per_node: 6,
            walk_length: 8,
            window: 3,
            negatives: 3,
            lr: 0.05,
            patience: 3,
            background_sampling: true,
            threads: 0,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: false,
            obs: Obs::from_env(),
        }
    }

    /// The pipeline options this configuration implies.
    pub fn train_options(&self) -> TrainOptions {
        TrainOptions {
            epochs: self.epochs,
            patience: self.patience,
            background: self.background_sampling,
            threads: self.threads,
            checkpoint_every: self.checkpoint_every,
            checkpoint_dir: self.checkpoint_dir.clone(),
            resume: self.resume,
            obs: self.obs.clone(),
        }
    }
}

/// A trained link predictor: scores candidate edges under a relation.
pub trait LinkPredictor {
    /// The model's display name (matches the paper's tables).
    fn name(&self) -> &'static str;

    /// Trains on `data`, deterministically under `rng`. Errors are typed:
    /// a bad sampling configuration, an unrecoverable checkpoint failure,
    /// or a run that stayed divergent through its rollback budget.
    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError>;

    /// Scores the candidate edge `(u, v)` under relation `r` (higher =
    /// more likely). Must only be called after [`LinkPredictor::fit`].
    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32;
}

/// Relation-aware (or shared) node embeddings with dot-product scoring —
/// the final artefact every model in this crate produces.
///
/// Skip-gram-trained models can additionally register their context table;
/// scoring then uses the symmetrised train-consistent decoder
/// `½(e_u·c_v + c_u·e_v)` instead of `e_u·e_v`, which matches the objective
/// those models actually optimised.
#[derive(Clone, Debug, Default)]
pub struct EmbeddingScores {
    /// One `num_nodes × dim` table per relation, or a single shared table.
    tables: Vec<Tensor>,
    /// Optional skip-gram context table (shared across relations).
    context: Option<Tensor>,
}

impl EmbeddingScores {
    /// A single table shared across relations (homogeneous models).
    pub fn shared(table: Tensor) -> Self {
        Self {
            tables: vec![table],
            context: None,
        }
    }

    /// One table per relation (multiplex models).
    pub fn per_relation(tables: Vec<Tensor>) -> Self {
        assert!(!tables.is_empty(), "need at least one table");
        Self {
            tables,
            context: None,
        }
    }

    /// Attaches the skip-gram context table, switching scoring to the
    /// symmetrised `½(e_u·c_v + c_u·e_v)` decoder.
    pub fn with_context(mut self, context: Tensor) -> Self {
        self.context = Some(context);
        self
    }

    /// Whether the scores have been initialised.
    pub fn is_ready(&self) -> bool {
        !self.tables.is_empty()
    }

    /// The embedding row for `v` under `r`.
    pub fn embedding(&self, v: NodeId, r: RelationId) -> &[f32] {
        let t = if self.tables.len() == 1 {
            &self.tables[0]
        } else {
            &self.tables[r.index()]
        };
        t.row(v.index())
    }

    /// Serialises the committed artefact into `dict` under `prefix`. An
    /// uninitialised artefact round-trips as uninitialised.
    pub fn export_state(&self, prefix: &str, dict: &mut StateDict) {
        dict.put_u64(format!("{prefix}/ntables"), self.tables.len() as u64);
        for (i, t) in self.tables.iter().enumerate() {
            dict.put_tensor(format!("{prefix}/table/{i}"), t.clone());
        }
        if let Some(c) = &self.context {
            dict.put_tensor(format!("{prefix}/context"), c.clone());
        }
    }

    /// Restores an artefact exported by [`EmbeddingScores::export_state`].
    pub fn import_state(&mut self, prefix: &str, dict: &StateDict) -> Result<(), CkptError> {
        let n = dict.u64(&format!("{prefix}/ntables"))? as usize;
        let mut tables = Vec::new();
        for i in 0..n {
            tables.push(dict.tensor(&format!("{prefix}/table/{i}"))?.clone());
        }
        let context_key = format!("{prefix}/context");
        let context = if dict.contains(&context_key) {
            Some(dict.tensor(&context_key)?.clone())
        } else {
            None
        };
        self.tables = tables;
        self.context = context;
        Ok(())
    }

    /// Dot-product score (train-consistent when a context table is set).
    pub fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        debug_assert!(self.is_ready(), "score() before fit()");
        match &self.context {
            None => dot(self.embedding(u, r), self.embedding(v, r)),
            Some(ctx) => {
                0.5 * (dot(self.embedding(u, r), ctx.row(v.index()))
                    + dot(ctx.row(u.index()), self.embedding(v, r)))
            }
        }
    }
}

/// Fetches `name` from `dict`, requiring the stored tensor to have the
/// same shape as `current` — the typed-error guard every model uses when
/// restoring raw tables, so a checkpoint from a different configuration
/// surfaces as [`CkptError::ShapeMismatch`] instead of corrupting state.
pub(crate) fn import_tensor_like(
    current: &Tensor,
    name: &str,
    dict: &StateDict,
) -> Result<Tensor, CkptError> {
    let stored = dict.tensor(name)?;
    if stored.rows() != current.rows() || stored.cols() != current.cols() {
        return Err(CkptError::ShapeMismatch(format!(
            "{name}: checkpoint is {}x{}, model expects {}x{}",
            stored.rows(),
            stored.cols(),
            current.rows(),
            current.cols()
        )));
    }
    Ok(stored.clone())
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Validation ROC-AUC of an embedding table over labelled edges.
pub fn val_auc(scores: &EmbeddingScores, val: &[LabeledEdge]) -> f64 {
    if val.is_empty() {
        return 0.5;
    }
    let s: Vec<f32> = val
        .iter()
        .map(|e| scores.score(e.u, e.v, e.relation))
        .collect();
    let l: Vec<bool> = val.iter().map(|e| e.label).collect();
    mhg_eval::roc_auc(&s, &l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_embedding_scoring() {
        let table = Tensor::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 1.0]]);
        let es = EmbeddingScores::shared(table);
        let r = RelationId(3); // any relation maps to the shared table
        assert_eq!(es.score(NodeId(0), NodeId(1), r), 1.0);
        assert_eq!(es.score(NodeId(0), NodeId(2), r), 0.0);
    }

    #[test]
    fn per_relation_scoring_differs() {
        let t0 = Tensor::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]);
        let t1 = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let es = EmbeddingScores::per_relation(vec![t0, t1]);
        assert_eq!(es.score(NodeId(0), NodeId(1), RelationId(0)), 1.0);
        assert_eq!(es.score(NodeId(0), NodeId(1), RelationId(1)), 0.0);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = CommonConfig::default();
        assert_eq!(c.dim, 128);
        assert_eq!(c.edge_dim, 8);
        assert_eq!(c.walks_per_node, 20);
        assert_eq!(c.walk_length, 10);
        assert_eq!(c.window, 5);
        assert_eq!(c.negatives, 5);
    }
}
