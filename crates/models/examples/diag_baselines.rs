//! Diagnostic driver: fits each baseline on a tiny synthetic dataset and
//! prints per-model ROC-AUC, for quick eyeballing during development.

use mhg_datasets::{DatasetKind, EdgeSplit};
use mhg_models::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("gcn");
    let scale: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let epochs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(15);
    let ds = args.get(4).map(|s| s.as_str()).unwrap_or("Amazon");
    let dataset = DatasetKind::parse(ds).unwrap().generate(scale, 10);
    println!(
        "{} nodes {} edges",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges()
    );
    let mut rng = StdRng::seed_from_u64(11);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    let mut cfg = CommonConfig::fast();
    cfg.epochs = epochs;
    cfg.patience = 100;
    let mut model: Box<dyn LinkPredictor> = match which {
        "gcn" => Box::new(Gcn::new(cfg)),
        "sage" => Box::new(GraphSage::new(cfg)),
        "rgcn" => Box::new(RGcn::new(cfg)),
        "magnn" => Box::new(Magnn::new(cfg)),
        "gatne" => Box::new(Gatne::new(cfg)),
        "han" => Box::new(Han::new(cfg)),
        _ => panic!(),
    };
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    let t0 = std::time::Instant::now();
    let report = model.fit(&data, &mut rng).expect("fit must succeed");
    let m = evaluate(model.as_ref(), &split.test);
    println!(
        "{}: epochs {} loss {:.4} best_val {:.4} test_auc {:.4} ({:?})",
        which,
        report.epochs_run,
        report.final_loss,
        report.best_val_auc,
        m.roc_auc,
        t0.elapsed()
    );
}
