//! Serial-vs-parallel bit-identity for every kernel on the `mhg-par` pool.
//!
//! The pool's contract is that the thread count never changes any f32
//! result. These properties drive each ported kernel across random shapes
//! (sized to straddle the pool's inline-work threshold, so the parallel
//! path genuinely runs) and assert `to_bits()` equality between 1 thread
//! and `MHG_THREADS` ∈ {2, 7}, plus a fixed paper-scale case for 1 vs 4.

use mhg_tensor::{InitKind, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Exact bit pattern of a tensor, shape included.
fn bits(t: &Tensor) -> (usize, usize, Vec<u32>) {
    (
        t.rows(),
        t.cols(),
        t.as_slice().iter().map(|v| v.to_bits()).collect(),
    )
}

/// Asserts `compute()` is bit-identical at 1, 2 and 7 threads.
fn assert_parity(compute: impl Fn() -> Tensor) -> Result<(), proptest::test_runner::TestCaseError> {
    let serial = mhg_par::with_threads(1, &compute);
    for threads in [2usize, 7] {
        let parallel = mhg_par::with_threads(threads, &compute);
        prop_assert_eq!(
            bits(&serial),
            bits(&parallel),
            "kernel diverged at {} threads",
            threads
        );
    }
    Ok(())
}

fn random(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    InitKind::Uniform { limit: 2.0 }.init(rows, cols, rng)
}

proptest! {
    #[test]
    fn matmul_parity((m, k, n) in (1usize..80, 1usize..64, 1usize..64), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random(m, k, &mut rng);
        let b = random(k, n, &mut rng);
        assert_parity(|| a.matmul(&b))?;
    }

    #[test]
    fn matmul_transposed_parity((m, k, n) in (1usize..80, 1usize..64, 1usize..64),
                                seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random(m, k, &mut rng);
        let b = random(n, k, &mut rng);
        assert_parity(|| a.matmul_transposed(&b))?;
    }

    #[test]
    fn transpose_parity((m, n) in (1usize..200, 1usize..120), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random(m, n, &mut rng);
        assert_parity(|| a.transpose())?;
        // And the tiled kernel must still be a correct transpose.
        let t = a.transpose();
        for i in 0..m.min(8) {
            for j in 0..n.min(8) {
                prop_assert_eq!(t[(j, i)].to_bits(), a[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn elementwise_parity((m, n) in (1usize..200, 1usize..120), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random(m, n, &mut rng);
        let b = random(m, n, &mut rng);
        assert_parity(|| a.zip_map(&b, |x, y| x * y + 0.5))?;
        assert_parity(|| a.map(|x| (x * 1.7).tanh()))?;
        assert_parity(|| a.sigmoid())?;
    }

    #[test]
    fn softmax_rows_parity((m, n) in (1usize..200, 1usize..64), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random(m, n, &mut rng);
        assert_parity(|| a.softmax_rows())?;
    }

    #[test]
    fn gather_scatter_parity((rows, n_idx, cols) in (1usize..100, 1usize..400, 1usize..48),
                             seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = random(rows, cols, &mut rng);
        let indices: Vec<usize> = (0..n_idx).map(|i| (i * 7 + seed as usize) % rows).collect();
        assert_parity(|| table.gather_rows(&indices))?;

        let grad = random(n_idx, cols, &mut rng);
        let idx32: Vec<u32> = indices.iter().map(|&i| i as u32).collect();
        assert_parity(|| {
            let mut acc = table.clone();
            acc.scatter_add_rows(&idx32, &grad);
            acc
        })?;
    }
}

/// Paper-scale matmul (batch 2048 walks × hidden 128 · 128×128), 1 vs 4
/// threads — the exact pairing the CI determinism matrix exercises.
#[test]
fn paper_scale_matmul_is_bit_identical_at_4_threads() {
    let mut rng = StdRng::seed_from_u64(2022);
    let a = random(2048, 128, &mut rng);
    let b = random(128, 128, &mut rng);
    let serial = mhg_par::with_threads(1, || a.matmul(&b));
    let parallel = mhg_par::with_threads(4, || a.matmul(&b));
    assert_eq!(bits(&serial), bits(&parallel));
}
