//! Property-based tests for the dense kernels.

use mhg_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a tensor with the given shape and bounded values.
fn tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

/// Strategy: small dims in `1..=6`.
fn dim() -> impl Strategy<Value = usize> {
    1usize..=6
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape() && a.max_abs_diff(b) <= tol
}

proptest! {
    #[test]
    fn matmul_associative((m, k, n, p) in (dim(), dim(), dim(), dim()),
                          seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        use mhg_tensor::InitKind;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = InitKind::Uniform { limit: 2.0 }.init(m, k, &mut rng);
        let b = InitKind::Uniform { limit: 2.0 }.init(k, n, &mut rng);
        let c = InitKind::Uniform { limit: 2.0 }.init(n, p, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(close(&left, &right, 1e-3 * (k * n) as f32));
    }

    #[test]
    fn matmul_distributes_over_add((m, k, n) in (dim(), dim(), dim()), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        use mhg_tensor::InitKind;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = InitKind::Uniform { limit: 2.0 }.init(m, k, &mut rng);
        let b = InitKind::Uniform { limit: 2.0 }.init(k, n, &mut rng);
        let c = InitKind::Uniform { limit: 2.0 }.init(k, n, &mut rng);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(close(&left, &right, 1e-3 * k as f32));
    }

    #[test]
    fn transpose_of_product((m, k, n) in (dim(), dim(), dim()), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        use mhg_tensor::InitKind;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = InitKind::Uniform { limit: 2.0 }.init(m, k, &mut rng);
        let b = InitKind::Uniform { limit: 2.0 }.init(k, n, &mut rng);
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(close(&left, &right, 1e-3 * k as f32));
    }

    #[test]
    fn add_commutes(t in (dim(), dim()).prop_flat_map(|(r, c)| (tensor(r, c), tensor(r, c)))) {
        let (a, b) = t;
        prop_assert!(close(&a.add(&b), &b.add(&a), 0.0));
    }

    #[test]
    fn scale_linear(t in (dim(), dim()).prop_flat_map(|(r, c)| tensor(r, c)),
                    s in -3.0f32..3.0) {
        let doubled = t.scale(s).scale(2.0);
        let direct = t.scale(2.0 * s);
        prop_assert!(close(&doubled, &direct, 1e-4));
    }

    #[test]
    fn softmax_rows_are_distributions(t in (dim(), dim()).prop_flat_map(|(r, c)| tensor(r, c))) {
        let s = t.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_invariant_to_row_shift(t in (dim(), dim()).prop_flat_map(|(r, c)| tensor(r, c)),
                                      shift in -5.0f32..5.0) {
        let shifted = t.map(|v| v + shift);
        prop_assert!(close(&t.softmax_rows(), &shifted.softmax_rows(), 1e-4));
    }

    #[test]
    fn sigmoid_bounds_and_symmetry(x in -50.0f32..50.0) {
        let s = mhg_tensor::sigmoid_scalar(x);
        prop_assert!((0.0..=1.0).contains(&s));
        let anti = mhg_tensor::sigmoid_scalar(-x);
        prop_assert!((s + anti - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_sigmoid_matches_naive(x in -20.0f32..20.0) {
        let stable = mhg_tensor::log_sigmoid(x);
        let naive = mhg_tensor::sigmoid_scalar(x).ln();
        prop_assert!((stable - naive).abs() < 1e-4);
    }

    #[test]
    fn gather_then_vstack_roundtrip(t in (2usize..6, dim()).prop_flat_map(|(r, c)| tensor(r, c))) {
        let all: Vec<usize> = (0..t.rows()).collect();
        let g = t.gather_rows(&all);
        prop_assert!(close(&g, &t, 0.0));
    }

    #[test]
    fn mean_rows_of_uniform_matrix(v in -5.0f32..5.0, (r, c) in (dim(), dim())) {
        let t = Tensor::full(r, c, v);
        let m = t.mean_rows();
        prop_assert!(m.row(0).iter().all(|x| (x - v).abs() < 1e-5));
    }
}
