//! Parameter initialisation schemes.

use rand::Rng;

use crate::Tensor;

/// Initialisation scheme for parameter tensors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum InitKind {
    /// All zeros (biases).
    Zeros,
    /// Uniform on `[-limit, limit]`.
    Uniform {
        /// Half-width of the interval.
        limit: f32,
    },
    /// Xavier/Glorot uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// Gaussian with the given standard deviation (Box–Muller).
    Normal {
        /// Standard deviation.
        std: f32,
    },
}

impl InitKind {
    /// Creates a `rows × cols` tensor initialised with this scheme.
    pub fn init<R: Rng + ?Sized>(self, rows: usize, cols: usize, rng: &mut R) -> Tensor {
        match self {
            InitKind::Zeros => Tensor::zeros(rows, cols),
            InitKind::Uniform { limit } => sample(rows, cols, || rng.gen_range(-limit..=limit)),
            InitKind::XavierUniform => xavier_uniform(rows, cols, rng),
            InitKind::Normal { std } => {
                let mut gauss = GaussSource::default();
                sample(rows, cols, || gauss.next(rng) * std)
            }
        }
    }
}

fn sample(rows: usize, cols: usize, mut f: impl FnMut() -> f32) -> Tensor {
    let data = (0..rows * cols).map(|_| f()).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform initialisation treating `rows` as fan-in and `cols`
/// as fan-out (the convention for a `fan_in × fan_out` weight matrix applied
/// as `x · W`).
pub fn xavier_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Tensor {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    sample(rows, cols, || rng.gen_range(-limit..=limit))
}

/// Box–Muller standard-normal source that caches the spare variate.
#[derive(Default)]
struct GaussSource {
    spare: Option<f32>,
}

impl GaussSource {
    fn next<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f32 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        // Draw from the open interval to avoid ln(0).
        let u1: f32 = loop {
            let v = rng.gen::<f32>();
            if v > f32::MIN_POSITIVE {
                break v;
            }
        };
        let u2: f32 = rng.gen();
        let mag = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f32::consts::PI * u2).sin_cos();
        self.spare = Some(mag * s);
        mag * c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_init() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = InitKind::Zeros.init(3, 3, &mut rng);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = InitKind::Uniform { limit: 0.25 }.init(50, 50, &mut rng);
        assert!(t.as_slice().iter().all(|v| v.abs() <= 0.25));
        // Not degenerate.
        assert!(t.as_slice().iter().any(|v| v.abs() > 0.01));
    }

    #[test]
    fn xavier_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = xavier_uniform(10, 20, &mut rng);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = InitKind::Normal { std: 2.0 }.init(100, 100, &mut rng);
        let mean = t.mean();
        let var =
            t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / (t.len() - 1) as f32;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - 2.0).abs() < 0.1,
            "std {} too far from 2",
            var.sqrt()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = InitKind::XavierUniform.init(4, 4, &mut StdRng::seed_from_u64(7));
        let b = InitKind::XavierUniform.init(4, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
