//! Dense 2-D `f32` tensor substrate for the HybridGNN reproduction.
//!
//! The paper's model is built from a handful of dense operations — matrix
//! multiplication, elementwise arithmetic, row-softmax, reductions and
//! embedding-row gathers. This crate provides exactly those, in a small,
//! allocation-conscious, BLAS-free package. Everything is row-major `f32`;
//! vectors are represented as `1 × n` matrices.
//!
//! The companion crate [`mhg-autograd`] layers reverse-mode differentiation
//! on top of these kernels.
//!
//! # Example
//!
//! ```
//! use mhg_tensor::Tensor;
//!
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod init;
mod ops;
mod shape;
mod tensor;

pub use init::{xavier_uniform, InitKind};
pub use ops::{log_sigmoid, sigmoid_scalar};
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide numeric tolerance used by tests and debug assertions.
pub const EPS: f32 = 1e-6;
