//! Dense kernels: matmul, elementwise arithmetic, reductions, softmax.
//!
//! These are the only numeric kernels the whole reproduction needs. They are
//! deliberately BLAS-free: matrix sizes in the paper's model are small
//! (hidden dims 2–512, batch 2048), so a cache-friendly `ikj` loop with the
//! inner loop auto-vectorised by LLVM is more than adequate and keeps the
//! build hermetic.
//!
//! The hot kernels (matmul, transpose, elementwise, softmax, gather/scatter)
//! run on the `mhg-par` worker pool. Each kernel partitions its *output* into
//! fixed per-worker row ranges, and each worker computes its rows exactly as
//! the serial loop would — so results are bit-identical for any `MHG_THREADS`
//! (see DESIGN.md §2.10 for the contract).

use crate::Tensor;

/// Routes an op's output through [`Tensor::assert_finite`] under the
/// `checked` feature; compiles to a move otherwise.
#[inline(always)]
fn guard(out: Tensor, _op: &str) -> Tensor {
    #[cfg(feature = "checked")]
    out.assert_finite(_op);
    out
}

/// Scalar counterpart of [`guard`]: rejects NaN/Inf reduction results under
/// the `checked` feature.
#[inline(always)]
fn guard_scalar(v: f32, _op: &str) -> f32 {
    #[cfg(feature = "checked")]
    assert!(v.is_finite(), "{_op}: non-finite scalar result {v}");
    v
}

impl Tensor {
    /// Matrix product `self · rhs`.
    ///
    /// Uses `ikj` loop order so the innermost loop walks both the output row
    /// and the `rhs` row contiguously (auto-vectorises well).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        mhg_par::opstats::bump(mhg_par::opstats::KernelOp::Matmul);
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul shape mismatch: {} · {}",
            self.shape(),
            rhs.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), rhs.cols());
        let mut out = Tensor::zeros(m, n);
        if out.is_empty() || k == 0 {
            return guard(out, "matmul");
        }
        let a = self.as_slice();
        let b = rhs.as_slice();
        // Branch-free inner loop: a zero-skip test here would block LLVM
        // from vectorising the fused multiply-add over the output row.
        mhg_par::par_chunks_mut(out.as_mut_slice(), n, 2 * k * n, |i0, chunk| {
            for (ii, c_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = i0 + ii;
                let a_row = &a[i * k..(i + 1) * k];
                for (kk, &a_ik) in a_row.iter().enumerate() {
                    let b_row = &b[kk * n..(kk + 1) * n];
                    for (c_v, b_v) in c_row.iter_mut().zip(b_row) {
                        *c_v += a_ik * b_v;
                    }
                }
            }
        });
        guard(out, "matmul")
    }

    /// Matrix product `self · rhsᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transposed(&self, rhs: &Tensor) -> Tensor {
        mhg_par::opstats::bump(mhg_par::opstats::KernelOp::MatmulTransposed);
        assert_eq!(
            self.cols(),
            rhs.cols(),
            "matmul_transposed shape mismatch: {} · {}ᵀ",
            self.shape(),
            rhs.shape()
        );
        let (m, k, n) = (self.rows(), self.cols(), rhs.rows());
        let mut out = Tensor::zeros(m, n);
        if out.is_empty() {
            return guard(out, "matmul_transposed");
        }
        let a = self.as_slice();
        let b = rhs.as_slice();
        mhg_par::par_chunks_mut(out.as_mut_slice(), n, 2 * k * n, |i0, chunk| {
            for (ii, out_row) in chunk.chunks_exact_mut(n).enumerate() {
                let i = i0 + ii;
                let a_row = &a[i * k..(i + 1) * k];
                for (j, out_v) in out_row.iter_mut().enumerate() {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (a_v, b_v) in a_row.iter().zip(b_row) {
                        acc += a_v * b_v;
                    }
                    *out_v = acc;
                }
            }
        });
        guard(out, "matmul_transposed")
    }

    /// Returns the transposed tensor.
    ///
    /// Cache-blocked in 32×32 tiles so both the source reads and the
    /// destination writes stay within a few cache lines per tile, instead of
    /// striding the whole source column by column.
    pub fn transpose(&self) -> Tensor {
        mhg_par::opstats::bump(mhg_par::opstats::KernelOp::Transpose);
        const TILE: usize = 32;
        let (m, n) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(n, m);
        if out.is_empty() {
            return guard(out, "transpose");
        }
        let src = self.as_slice();
        // Output rows (length m) are the parallel unit; tiles start at the
        // absolute row index so the tiling is identical for any partition.
        mhg_par::par_chunks_mut(out.as_mut_slice(), m, 2 * m, |j0, chunk| {
            let j_end = j0 + chunk.len() / m;
            let mut bj = j0;
            while bj < j_end {
                let j_hi = (bj + TILE).min(j_end);
                let mut bi = 0;
                while bi < m {
                    let i_hi = (bi + TILE).min(m);
                    for j in bj..j_hi {
                        for i in bi..i_hi {
                            chunk[(j - j0) * m + i] = src[i * n + j];
                        }
                    }
                    bi += TILE;
                }
                bj += TILE;
            }
        });
        guard(out, "transpose")
    }

    /// Elementwise binary op into a fresh tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        mhg_par::opstats::bump(mhg_par::opstats::KernelOp::ZipMap);
        assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
        let mut out = Tensor::zeros(self.rows(), self.cols());
        let (a, b) = (self.as_slice(), rhs.as_slice());
        mhg_par::par_chunks_mut(out.as_mut_slice(), 1, 4, |start, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = f(a[start + i], b[start + i]);
            }
        });
        guard(out, "zip_map")
    }

    /// Elementwise unary op into a fresh tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        mhg_par::opstats::bump(mhg_par::opstats::KernelOp::Map);
        let mut out = Tensor::zeros(self.rows(), self.cols());
        let a = self.as_slice();
        mhg_par::par_chunks_mut(out.as_mut_slice(), 1, 4, |start, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = f(a[start + i]);
            }
        });
        guard(out, "map")
    }

    /// Elementwise sum.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// In-place `self += alpha * rhs` (axpy).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) {
        assert_eq!(self.shape(), rhs.shape(), "axpy shape mismatch");
        for (a, b) in self.as_mut_slice().iter_mut().zip(rhs.as_slice()) {
            *a += alpha * b;
        }
        #[cfg(feature = "checked")]
        self.assert_finite("axpy");
    }

    /// Adds a `1 × cols` row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is `1 × self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), self.cols(), "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows() {
            for (o, b) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
                *o += b;
            }
        }
        guard(out, "add_row_broadcast")
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        guard_scalar(self.as_slice().iter().sum(), "sum")
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise mean: returns a `1 × cols` tensor.
    pub fn mean_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols());
        if self.rows() == 0 {
            return out;
        }
        for row in self.rows_iter() {
            for (o, v) in out.row_mut(0).iter_mut().zip(row) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows() as f32;
        for o in out.as_mut_slice() {
            *o *= inv;
        }
        guard(out, "mean_rows")
    }

    /// Dot product of row `i` of `self` with row `j` of `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn row_dot(&self, i: usize, rhs: &Tensor, j: usize) -> f32 {
        assert_eq!(self.cols(), rhs.cols(), "row_dot width mismatch");
        guard_scalar(
            self.row(i).iter().zip(rhs.row(j)).map(|(a, b)| a * b).sum(),
            "row_dot",
        )
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        guard_scalar(self.as_slice().iter().map(|v| v * v).sum(), "norm_sq")
    }

    /// Numerically-stable row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        mhg_par::opstats::bump(mhg_par::opstats::KernelOp::SoftmaxRows);
        let mut out = self.clone();
        let cols = out.cols();
        if out.is_empty() {
            return guard(out, "softmax_rows");
        }
        mhg_par::par_chunks_mut(out.as_mut_slice(), cols, 4 * cols, |_r0, chunk| {
            for row in chunk.chunks_exact_mut(cols) {
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                let inv = 1.0 / sum;
                for v in row.iter_mut() {
                    *v *= inv;
                }
            }
        });
        guard(out, "softmax_rows")
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(crate::ops::sigmoid_scalar)
    }

    /// Stacks tensors vertically (all must share a width).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or widths differ.
    pub fn vstack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "vstack of zero tensors");
        let cols = parts[0].cols();
        let rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols(), cols, "vstack width mismatch");
            data.extend_from_slice(p.as_slice());
        }
        guard(Tensor::from_vec(rows, cols, data), "vstack")
    }

    /// Gathers rows by index into a fresh tensor.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        mhg_par::opstats::bump(mhg_par::opstats::KernelOp::GatherRows);
        let (rows, cols) = (self.rows(), self.cols());
        for &idx in indices {
            assert!(
                idx < rows,
                "gather_rows index {idx} out of bounds for {rows} rows"
            );
        }
        let mut out = Tensor::zeros(indices.len(), cols);
        if out.is_empty() {
            return guard(out, "gather_rows");
        }
        let src = self.as_slice();
        mhg_par::par_chunks_mut(out.as_mut_slice(), cols, cols, |r0, chunk| {
            for (i, dst) in chunk.chunks_exact_mut(cols).enumerate() {
                let idx = indices[r0 + i];
                dst.copy_from_slice(&src[idx * cols..(idx + 1) * cols]);
            }
        });
        guard(out, "gather_rows")
    }

    /// Scatter-add: `self[indices[r], :] += src[r, :]` for every source row
    /// `r`, the adjoint of [`Tensor::gather_rows`].
    ///
    /// Deterministic for any worker count: workers own disjoint *destination*
    /// row ranges and each scans the contributions in input order, so every
    /// destination row accumulates in exactly the serial order no matter how
    /// the ranges are split.
    ///
    /// # Panics
    ///
    /// Panics if `indices.len() != src.rows()`, widths differ, or an index
    /// is out of bounds.
    pub fn scatter_add_rows(&mut self, indices: &[u32], src: &Tensor) {
        mhg_par::opstats::bump(mhg_par::opstats::KernelOp::ScatterAddRows);
        assert_eq!(
            indices.len(),
            src.rows(),
            "scatter_add_rows: {} indices for {} source rows",
            indices.len(),
            src.rows()
        );
        assert_eq!(
            self.cols(),
            src.cols(),
            "scatter_add_rows width mismatch: {} vs {}",
            self.cols(),
            src.cols()
        );
        let (rows, cols) = (self.rows(), self.cols());
        for &idx in indices {
            assert!(
                (idx as usize) < rows,
                "scatter_add_rows index {idx} out of bounds for {rows} rows"
            );
        }
        if self.is_empty() || indices.is_empty() {
            return;
        }
        let s = src.as_slice();
        let per_row = (indices.len() / rows + 1) * cols;
        mhg_par::par_chunks_mut(self.as_mut_slice(), cols, per_row, |first, chunk| {
            let range = first..first + chunk.len() / cols;
            for (r, &idx) in indices.iter().enumerate() {
                let idx = idx as usize;
                if range.contains(&idx) {
                    let dst = &mut chunk[(idx - first) * cols..(idx - first + 1) * cols];
                    for (d, v) in dst.iter_mut().zip(&s[r * cols..(r + 1) * cols]) {
                        *d += v;
                    }
                }
            }
        });
        #[cfg(feature = "checked")]
        self.assert_finite("scatter_add_rows");
    }
}

/// Numerically-stable scalar logistic sigmoid.
#[inline]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `ln(sigmoid(x))` computed without overflow for large negative `x`.
#[inline]
pub fn log_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        -(1.0 + (-x).exp()).ln()
    } else {
        x - (1.0 + x.exp()).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Tensor::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_transposed_agrees_with_explicit_transpose() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, 0.5, -1.0]]);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transposed(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-6);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b), Tensor::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(a.sub(&b), Tensor::from_rows(&[&[-2.0, -2.0]]));
        assert_eq!(a.mul(&b), Tensor::from_rows(&[&[3.0, 8.0]]));
        assert_eq!(a.scale(2.0), Tensor::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_rows(&[&[1.0, 1.0]]);
        let b = Tensor::from_rows(&[&[2.0, 3.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a, Tensor::from_rows(&[&[2.0, 2.5]]));
    }

    #[test]
    fn broadcast_bias() {
        let a = Tensor::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        let bias = Tensor::row_vector(&[10.0, 20.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out, Tensor::from_rows(&[&[10.0, 20.0], &[11.0, 21.0]]));
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert!(approx(a.sum(), 10.0));
        assert!(approx(a.mean(), 2.5));
        let mr = a.mean_rows();
        assert!(approx(mr[(0, 0)], 2.0));
        assert!(approx(mr[(0, 1)], 3.0));
        assert!(approx(a.norm_sq(), 30.0));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!(approx(sum, 1.0));
        }
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
        // Large uniform logits must not overflow.
        assert!(approx(s[(1, 0)], 1.0 / 3.0));
    }

    #[test]
    fn sigmoid_stability() {
        assert!(approx(sigmoid_scalar(0.0), 0.5));
        assert!(sigmoid_scalar(100.0) > 0.999);
        assert!(sigmoid_scalar(-100.0) < 1e-4);
        assert!(sigmoid_scalar(-1000.0).is_finite());
        assert!(log_sigmoid(-1000.0).is_finite());
        assert!(approx(log_sigmoid(0.0), (0.5f32).ln()));
    }

    #[test]
    fn vstack_and_gather() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = Tensor::vstack(&[&a, &b]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[5.0, 6.0]);
        let g = s.gather_rows(&[2, 0]);
        assert_eq!(g, Tensor::from_rows(&[&[5.0, 6.0], &[1.0, 2.0]]));
    }

    #[test]
    fn scatter_add_is_gather_adjoint() {
        let mut table = Tensor::zeros(4, 2);
        let src = Tensor::from_rows(&[&[1.0, 2.0], &[10.0, 20.0], &[0.5, 0.5]]);
        table.scatter_add_rows(&[3, 1, 3], &src);
        assert_eq!(table.row(0), &[0.0, 0.0]);
        assert_eq!(table.row(1), &[10.0, 20.0]);
        assert_eq!(table.row(3), &[1.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "scatter_add_rows index")]
    fn scatter_add_rejects_out_of_bounds() {
        let mut table = Tensor::zeros(2, 2);
        let src = Tensor::zeros(1, 2);
        table.scatter_add_rows(&[2], &src);
    }

    #[test]
    fn row_dot() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(approx(a.row_dot(0, &a, 1), 2.0));
    }
}
