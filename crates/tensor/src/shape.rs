//! Shape type for 2-D tensors.

use std::fmt;

/// The shape of a 2-D tensor: `rows × cols`.
///
/// Kept deliberately minimal — the whole reproduction only ever needs
/// matrices (and `1 × n` row vectors), so a full n-d shape type would be
/// unjustified complexity.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl Shape {
    /// Creates a new shape.
    #[inline]
    pub const fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols }
    }

    /// Total number of elements.
    #[inline]
    pub const fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the shape contains no elements.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The transposed shape.
    #[inline]
    pub const fn transposed(&self) -> Self {
        Self::new(self.cols, self.rows)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl From<(usize, usize)> for Shape {
    fn from((rows, cols): (usize, usize)) -> Self {
        Self::new(rows, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_empty() {
        assert_eq!(Shape::new(3, 4).len(), 12);
        assert!(Shape::new(0, 5).is_empty());
        assert!(!Shape::new(1, 1).is_empty());
    }

    #[test]
    fn transpose_roundtrip() {
        let s = Shape::new(2, 7);
        assert_eq!(s.transposed().transposed(), s);
        assert_eq!(s.transposed(), Shape::new(7, 2));
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(2, 3).to_string(), "2x3");
    }
}
