//! The core dense tensor type.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::Shape;

/// A dense, row-major, 2-D `f32` tensor.
///
/// All model state in the reproduction (embedding tables, weight matrices,
/// activations) is stored in this type. Row vectors are `1 × n` tensors.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            shape: Shape::new(rows, cols),
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            shape: Shape::new(rows, cols),
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t[(i, i)] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self {
            shape: Shape::new(rows, cols),
            data,
        }
    }

    /// Creates a tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or no rows are given.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows in from_rows");
            data.extend_from_slice(row);
        }
        Self::from_vec(rows.len(), cols, data)
    }

    /// Creates a `1 × n` row-vector tensor.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.shape.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.shape.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.shape.cols;
        &self.data[r * c..(r + 1) * c]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.shape.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.shape.cols.max(1))
    }

    /// Copies `src` into row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != self.cols()`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols(), "row length mismatch");
        self.row_mut(r).copy_from_slice(src);
    }

    /// Fills the tensor with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Returns `true` if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Panics with a diagnostic if any element is NaN or infinite.
    ///
    /// `context` names the operation or value being checked and is included
    /// in the panic message together with the position and value of the
    /// first offending element and the total count of non-finite entries.
    /// Under `--features checked` every kernel in [`crate::Tensor`] routes
    /// its output through this check.
    ///
    /// # Panics
    ///
    /// Panics if the tensor contains a non-finite element.
    pub fn assert_finite(&self, context: &str) {
        if self.all_finite() {
            return;
        }
        let bad = self.data.iter().filter(|v| !v.is_finite()).count();
        let (first, value) = self
            .data
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_finite())
            .map(|(i, v)| (i, *v))
            .unwrap_or((0, f32::NAN));
        let cols = self.shape.cols.max(1);
        panic!(
            "{context}: tensor {shape} contains {bad} non-finite element(s); \
             first at ({r}, {c}) = {value}",
            shape = self.shape,
            r = first / cols,
            c = first % cols,
        );
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Tensor {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.shape.rows && c < self.shape.cols);
        &self.data[r * self.shape.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Tensor {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.shape.rows && c < self.shape.cols);
        &mut self.data[r * self.shape.cols + c]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {} [", self.shape)?;
        for r in 0..self.shape.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.shape.cols.min(8) {
                write!(f, "{:>9.4}", self[(r, c)])?;
                if c + 1 < self.shape.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.shape.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.shape.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(2, 3);
        assert_eq!(z.shape(), Shape::new(2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let f = Tensor::full(2, 2, 7.5);
        assert!(f.as_slice().iter().all(|&v| v == 7.5));

        let i = Tensor::eye(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Tensor::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn row_access() {
        let mut t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
        t.set_row(0, &[9.0, 8.0]);
        assert_eq!(t.row(0), &[9.0, 8.0]);
        t.row_mut(1)[0] = 0.0;
        assert_eq!(t[(1, 0)], 0.0);
    }

    #[test]
    fn rows_iter_matches_rows() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let collected: Vec<&[f32]> = t.rows_iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], &[5.0, 6.0]);
    }

    #[test]
    fn finite_detection() {
        let mut t = Tensor::zeros(1, 2);
        assert!(t.all_finite());
        t[(0, 1)] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[1.5, 2.0]]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-7);
    }
}
