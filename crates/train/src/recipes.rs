//! Reusable sampling recipes: the Batcher stage of the pipeline.
//!
//! Models describe *what* to sample (walk pairs, edge lists); these helpers
//! turn that into ready-to-step minibatches with negatives attached, so the
//! whole sampling stage can run ahead of the compute stage on the prefetch
//! worker.

use mhg_graph::{GraphStore, NodeId, RelationId};
use mhg_sampling::{NegativeSampler, Pair};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// One skip-gram training example: a (center, context) pair tagged with the
/// relation it was walked in, plus pre-sampled negatives for the context.
#[derive(Clone, Debug)]
pub struct PairExample {
    /// Walk center node.
    pub center: NodeId,
    /// Walk context node (the positive target).
    pub context: NodeId,
    /// Relation the walk ran in (`RelationId(0)` for untyped walks).
    pub relation: RelationId,
    /// Negatives drawn from the context node's type.
    pub negatives: Vec<NodeId>,
}

/// Attaches `k` type-aware negatives to each tagged walk pair and chunks the
/// result into batches of `batch` examples (last batch may be short).
pub fn pair_batches<G: GraphStore>(
    graph: &G,
    negatives: &NegativeSampler,
    tagged: Vec<(Pair, RelationId)>,
    k: usize,
    batch: usize,
    rng: &mut StdRng,
) -> Vec<Vec<PairExample>> {
    let batch = batch.max(1);
    let mut out: Vec<Vec<PairExample>> = Vec::with_capacity(tagged.len().div_ceil(batch));
    for chunk in tagged.chunks(batch) {
        let examples = chunk
            .iter()
            .map(|&(pair, relation)| {
                let ty = graph.node_type(pair.context);
                PairExample {
                    center: pair.center,
                    context: pair.context,
                    relation,
                    negatives: negatives.sample_many(ty, pair.context, k, rng),
                }
            })
            .collect();
        out.push(examples);
    }
    out
}

/// One link-prediction minibatch for the tape models: parallel arrays of
/// endpoint pairs with ±1 labels, positives interleaved with their sampled
/// negatives.
#[derive(Clone, Debug, Default)]
pub struct EdgeBatch {
    /// Left endpoints (the anchor of each positive and its negatives).
    pub lefts: Vec<NodeId>,
    /// Right endpoints (the positive target or a sampled negative).
    pub rights: Vec<NodeId>,
    /// Relation of the originating positive edge, per row.
    pub relations: Vec<RelationId>,
    /// `1.0` for positives, `-1.0` for negatives.
    pub labels: Vec<f32>,
}

impl EdgeBatch {
    /// Number of rows (positives + negatives).
    pub fn len(&self) -> usize {
        self.lefts.len()
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.lefts.is_empty()
    }
}

/// Shuffles `edges`, chunks them into batches of `batch` positives, and
/// expands each positive `(u, v, r)` into a `+1` row plus `k` type-aware
/// negative `-1` rows sharing the anchor `u` and relation `r`.
pub fn edge_batches<G: GraphStore>(
    graph: &G,
    negatives: &NegativeSampler,
    edges: &[(NodeId, NodeId, RelationId)],
    k: usize,
    batch: usize,
    rng: &mut StdRng,
) -> Vec<EdgeBatch> {
    let batch = batch.max(1);
    let mut edges = edges.to_vec();
    edges.shuffle(rng);
    let mut out: Vec<EdgeBatch> = Vec::with_capacity(edges.len().div_ceil(batch));
    for chunk in edges.chunks(batch) {
        let mut b = EdgeBatch::default();
        let cap = chunk.len() * (1 + k);
        b.lefts.reserve(cap);
        b.rights.reserve(cap);
        b.relations.reserve(cap);
        b.labels.reserve(cap);
        for &(u, v, r) in chunk {
            b.lefts.push(u);
            b.rights.push(v);
            b.relations.push(r);
            b.labels.push(1.0);
            let ty = graph.node_type(v);
            for neg in negatives.sample_many(ty, v, k, rng) {
                b.lefts.push(u);
                b.rights.push(neg);
                b.relations.push(r);
                b.labels.push(-1.0);
            }
        }
        out.push(b);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_graph::{GraphBuilder, MultiplexGraph, Schema};
    use rand::SeedableRng;

    fn toy_graph() -> MultiplexGraph {
        let mut schema = Schema::new();
        let user = schema.add_node_type("user");
        let item = schema.add_node_type("item");
        let r = schema.add_relation("buy");
        let mut b = GraphBuilder::new(schema);
        let u0 = b.add_node(user);
        let u1 = b.add_node(user);
        let i0 = b.add_node(item);
        let i1 = b.add_node(item);
        let i2 = b.add_node(item);
        b.add_edge(u0, i0, r);
        b.add_edge(u0, i1, r);
        b.add_edge(u1, i2, r);
        b.build()
    }

    #[test]
    fn pair_batches_chunk_and_type_negatives() {
        let g = toy_graph();
        let sampler = NegativeSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let tagged: Vec<(Pair, RelationId)> = (0..5)
            .map(|i| {
                (
                    Pair {
                        center: NodeId(0),
                        context: NodeId(2 + i % 3),
                    },
                    RelationId(0),
                )
            })
            .collect();
        let batches = pair_batches(&g, &sampler, tagged, 3, 2, &mut rng);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 2);
        assert_eq!(batches[2].len(), 1);
        let item = g.schema().node_type_id("item").expect("item type");
        for ex in batches.iter().flatten() {
            assert_eq!(ex.negatives.len(), 3);
            for &n in &ex.negatives {
                assert_eq!(g.node_type(n), item, "negatives share the context type");
            }
        }
    }

    #[test]
    fn edge_batches_expand_positives_with_negatives() {
        let g = toy_graph();
        let sampler = NegativeSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        let edges: Vec<(NodeId, NodeId, RelationId)> = g
            .schema()
            .relations()
            .flat_map(|r| g.edges_in(r).map(move |(u, v)| (u, v, r)))
            .collect();
        let batches = edge_batches(&g, &sampler, &edges, 2, 2, &mut rng);
        assert_eq!(batches.len(), 2);
        let rows: usize = batches.iter().map(EdgeBatch::len).sum();
        assert_eq!(rows, edges.len() * 3, "each positive expands to 1 + k rows");
        for b in &batches {
            assert!(!b.is_empty());
            assert_eq!(b.lefts.len(), b.labels.len());
            assert_eq!(b.rights.len(), b.relations.len());
            let positives = b.labels.iter().filter(|&&l| l > 0.0).count();
            let negs = b.labels.len() - positives;
            assert_eq!(negs, positives * 2);
        }
    }

    #[test]
    fn edge_batches_deterministic_for_seed() {
        let g = toy_graph();
        let sampler = NegativeSampler::new(&g);
        let edges: Vec<(NodeId, NodeId, RelationId)> = g
            .schema()
            .relations()
            .flat_map(|r| g.edges_in(r).map(move |(u, v)| (u, v, r)))
            .collect();
        let run = || {
            let mut rng = StdRng::seed_from_u64(9);
            edge_batches(&g, &sampler, &edges, 2, 2, &mut rng)
                .into_iter()
                .map(|b| (b.lefts, b.rights, b.relations))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
