//! Typed errors surfaced by the training pipeline.

use std::error::Error;
use std::fmt;

use mhg_ckpt::CkptError;
use mhg_sampling::SampleError;

/// Everything that can go wrong inside [`crate::train`].
///
/// The pipeline recovers from transient faults on its own (a panicking
/// background sampler falls back to inline sampling, a non-finite epoch
/// loss rolls back to the last good state); these variants are what remains
/// when recovery is impossible or exhausted.
#[derive(Debug)]
pub enum TrainError {
    /// The sampling recipe failed deterministically (bad metapath scheme,
    /// repeated worker failure after the inline fallback).
    Sample(SampleError),
    /// Reading or writing a checkpoint failed.
    Checkpoint(CkptError),
    /// The sharded graph store exhausted its self-healing ladder mid-run:
    /// a shard failed its bounded retries *and* could not be rebuilt from
    /// source, so it is quarantined and every future access fails
    /// identically. Unlike a worker panic there is no inline fallback —
    /// replaying the epoch re-reads the same quarantined shard.
    StorageExhausted {
        /// Epoch whose sampling hit the dead shard.
        epoch: usize,
        /// The underlying store failure message.
        detail: String,
    },
    /// The epoch loss stayed non-finite through every rollback attempt —
    /// the run genuinely diverged rather than hitting a transient fault.
    Diverged {
        /// Epoch index at which the final non-finite loss was observed.
        epoch: usize,
        /// Rollbacks attempted before giving up.
        rollbacks: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Sample(e) => write!(f, "sampling failed: {e}"),
            TrainError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            TrainError::StorageExhausted { epoch, detail } => write!(
                f,
                "graph storage exhausted self-healing at epoch {epoch}: {detail}"
            ),
            TrainError::Diverged { epoch, rollbacks } => write!(
                f,
                "training diverged: non-finite loss at epoch {epoch} after {rollbacks} rollbacks"
            ),
        }
    }
}

impl Error for TrainError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TrainError::Sample(e) => Some(e),
            TrainError::Checkpoint(e) => Some(e),
            TrainError::StorageExhausted { .. } => None,
            TrainError::Diverged { .. } => None,
        }
    }
}

impl From<SampleError> for TrainError {
    fn from(e: SampleError) -> Self {
        TrainError::Sample(e)
    }
}

impl From<CkptError> for TrainError {
    fn from(e: CkptError) -> Self {
        TrainError::Checkpoint(e)
    }
}
