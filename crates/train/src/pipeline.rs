//! The epoch control flow: Sampler → Batcher → Step → Validator/EarlyStop,
//! plus crash-safe checkpointing and deterministic fault recovery.

use std::path::PathBuf;

use mhg_ckpt::{Checkpointer, CkptError, StateDict};
use mhg_faults::FaultSite;
use mhg_obs::{EventValue, Obs};
use mhg_sampling::{run_prefetched, SampleError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::TrainError;
use crate::report::{EarlyStopper, RecoveryCounters, StopDecision, TrainReport};

/// Loop-level options shared by every model.
#[derive(Clone, Debug)]
pub struct TrainOptions {
    /// Maximum epochs.
    pub epochs: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Run the sampling recipe on a background worker thread, double-
    /// buffered against the step stage. Bit-identical to inline sampling.
    pub background: bool,
    /// Worker threads for the `mhg-par` kernel pool and sharded walk
    /// generation during this run; `0` inherits the process-wide setting
    /// (`MHG_THREADS` env, else available parallelism). Bit-identical for
    /// any value by the pool's determinism contract.
    pub threads: usize,
    /// Snapshot the full pipeline state every this many completed epochs
    /// (`0` = no per-epoch cadence; a final checkpoint is still written
    /// when `checkpoint_dir` is set). The cadence also refreshes the
    /// in-memory rollback anchor used for divergence recovery, so it is
    /// meaningful even without a checkpoint directory.
    pub checkpoint_every: usize,
    /// Directory for on-disk checkpoints (atomic, checksummed `.mhgc`
    /// files via `mhg-ckpt`). `None` disables persistence entirely.
    pub checkpoint_dir: Option<PathBuf>,
    /// Restore from the latest checkpoint in `checkpoint_dir` before
    /// training, if one exists. The restored state is authoritative: the
    /// continuation is bit-identical to an uninterrupted run regardless of
    /// how the resuming process seeded its RNG or re-initialized the model.
    pub resume: bool,
    /// Observability handle: the loop times its sample/compute/eval/ckpt
    /// stages through its clock and records per-epoch metrics and recovery
    /// events into its registry. [`mhg_obs::Obs::disabled`] keeps timing
    /// functional with zero recording.
    pub obs: Obs,
}

/// Loss contribution of one minibatch step.
///
/// `denom` is whatever the model normalises its epoch loss by: the item
/// count for per-pair update models (SGNS), `1` for tape models whose loss
/// op already returns a batch mean.
#[derive(Clone, Copy, Debug)]
pub struct BatchLoss {
    /// Summed loss over the batch (in the model's own normalisation).
    pub loss_sum: f64,
    /// Number of units `loss_sum` accumulates over.
    pub denom: usize,
}

/// The per-model half of the pipeline: one optimizer step per minibatch,
/// plus the validation/snapshot hooks the Validator stage drives.
///
/// Contract: [`TrainStep::eval`] scores the *current* parameters on the
/// validation set and stages a snapshot candidate; [`TrainStep::promote`]
/// commits the staged candidate as the model's final artefact (called only
/// when validation improved); [`TrainStep::is_fitted`] reports whether a
/// final artefact exists. The pipeline guarantees `promote` is called at
/// least once per `fit`, so `is_fitted` holds on return from [`train`].
///
/// [`TrainStep::export_state`] / [`TrainStep::import_state`] serialise
/// everything the model owns that training mutates — parameters, optimizer
/// moments, the committed artefact — under the model's own key prefix
/// (conventionally `model/…`). Restoring an export and continuing must be
/// bit-identical to never having stopped; this is what checkpoint/resume
/// and divergence rollback are built on.
pub trait TrainStep {
    /// One epoch's minibatch unit, produced by the sampling recipe.
    /// `Send` so batches can cross from the prefetch worker thread.
    type Batch: Send;

    /// Performs one forward/backward/optimizer step on `batch`.
    fn step(&mut self, batch: Self::Batch, rng: &mut StdRng) -> BatchLoss;

    /// Evaluates the current parameters on the validation set, staging a
    /// snapshot candidate; returns the validation metric (ROC-AUC).
    fn eval(&mut self, rng: &mut StdRng) -> f64;

    /// Commits the candidate staged by the last [`TrainStep::eval`] call.
    fn promote(&mut self);

    /// Whether a final artefact has been committed.
    fn is_fitted(&self) -> bool;

    /// Serialises all training-mutable model state into `dict`.
    fn export_state(&self, dict: &mut StateDict);

    /// Restores state exported by [`TrainStep::export_state`].
    fn import_state(&mut self, dict: &StateDict) -> Result<(), CkptError>;
}

/// Derives the sampler seed for `epoch` from `base` (splitmix64 finalizer).
///
/// Sampling RNG streams are a pure function of `(base, epoch)` — never of
/// training progress — which is what lets the background worker run one
/// epoch ahead of the step stage without changing any result, and what
/// makes every recovery path below replayable: re-sampling an epoch after
/// a rollback or a sampler fallback reproduces its batches exactly.
pub fn epoch_seed(base: u64, epoch: u64) -> u64 {
    // Same mixer as the per-shard walk seeds; see mhg_sampling::derive_seed.
    mhg_sampling::derive_seed(base, epoch)
}

/// Rollback budget for non-finite epoch losses. Injected faults are
/// occurrence-consumed, so one rollback per injection suffices; a *real*
/// divergence replays identically every attempt and exhausts this budget
/// into [`TrainError::Diverged`].
const MAX_NAN_ROLLBACKS: usize = 4;

/// Checkpoint format version for the loop-level snapshot keys.
const SNAPSHOT_FORMAT: u64 = 1;

/// Everything the epoch loop itself owns; model state lives in the step.
struct LoopState {
    /// Base seed all per-epoch sampler seeds derive from.
    base: u64,
    /// Next epoch to run (== completed epoch count).
    epoch: usize,
    report: TrainReport,
    stopper: EarlyStopper,
    /// Early stopping fired; persisted so a resumed run does not continue.
    stopped: bool,
}

/// Captures the complete pipeline state (loop + RNG + model) after a
/// completed epoch boundary.
fn snapshot<T: TrainStep>(st: &LoopState, rng: &StdRng, step: &T) -> StateDict {
    let mut dict = StateDict::new();
    dict.put_u64("loop/format", SNAPSHOT_FORMAT);
    dict.put_u64("loop/base", st.base);
    dict.put_u64("loop/epoch", st.epoch as u64);
    dict.put_u64("loop/stopped", u64::from(st.stopped));
    dict.put_u64s("loop/rng", rng.to_state().to_vec());
    st.stopper.export_state("loop/stopper", &mut dict);
    dict.put_u64("loop/report/epochs_run", st.report.epochs_run as u64);
    dict.put_u64(
        "loop/report/final_loss",
        u64::from(st.report.final_loss.to_bits()),
    );
    // Wall-clock totals are persisted for report fidelity but are the one
    // part of a resumed report outside the bit-identity contract.
    dict.put_f64("loop/report/sample_ms", st.report.timing.sample_ms);
    dict.put_f64("loop/report/compute_ms", st.report.timing.compute_ms);
    dict.put_f64("loop/report/eval_ms", st.report.timing.eval_ms);
    step.export_state(&mut dict);
    dict
}

/// Restores a [`snapshot`]; the restored state is authoritative over
/// whatever the caller had (base seed, RNG stream, model parameters).
fn restore<T: TrainStep>(
    st: &mut LoopState,
    rng: &mut StdRng,
    step: &mut T,
    dict: &StateDict,
) -> Result<(), CkptError> {
    let format = dict.u64("loop/format")?;
    if format != SNAPSHOT_FORMAT {
        return Err(CkptError::UnsupportedVersion(format as u16));
    }
    let rng_state = dict.u64s("loop/rng")?;
    if rng_state.len() != 4 {
        return Err(CkptError::ShapeMismatch(format!(
            "loop/rng has {} words, expected 4",
            rng_state.len()
        )));
    }
    st.base = dict.u64("loop/base")?;
    st.epoch = dict.u64("loop/epoch")? as usize;
    st.stopped = dict.u64("loop/stopped")? != 0;
    *rng = StdRng::from_state([rng_state[0], rng_state[1], rng_state[2], rng_state[3]]);
    st.stopper = EarlyStopper::import_state("loop/stopper", dict)?;
    st.report.epochs_run = dict.u64("loop/report/epochs_run")? as usize;
    st.report.final_loss = f32::from_bits(dict.u64("loop/report/final_loss")? as u32);
    st.report.timing.sample_ms = dict.f64("loop/report/sample_ms")?;
    st.report.timing.compute_ms = dict.f64("loop/report/compute_ms")?;
    st.report.timing.eval_ms = dict.f64("loop/report/eval_ms")?;
    step.import_state(dict)?;
    Ok(())
}

/// How one contiguous stretch of epochs ended.
enum SpanExit {
    /// Epoch budget exhausted or early stopping fired.
    Finished,
    /// The sampling stage failed (worker panic or recipe error).
    SamplerFailed(SampleError),
    /// A non-finite epoch loss was detected before committing the epoch.
    Diverged,
}

/// Outcome of stepping + validating one epoch's batches.
enum EpochOutcome {
    Committed,
    Stopped,
    Diverged,
}

/// Runs the full training loop: samples each epoch with `sample` (inline or
/// double-buffered on a background thread per `opts.background`), steps
/// `step` over the produced batches, validates, early-stops, checkpoints at
/// the configured cadence, and returns a uniformly initialized and
/// finalized [`TrainReport`].
///
/// `sample(epoch, rng)` receives an RNG seeded by [`epoch_seed`] from a
/// base drawn once from `rng`; `step` hooks receive `rng` itself. The two
/// streams are independent, so background and inline sampling produce
/// byte-identical models.
///
/// # Crash safety and recovery
///
/// With `checkpoint_dir` set, the loop persists atomic checksummed
/// snapshots; `resume: true` restores the latest one, and
/// `train(k)` → crash → `train(n)` with resume is bit-identical to a
/// single `train(n)`. Independently of persistence, the loop survives a
/// panicking background sampler (inline fallback over the same epochs), a
/// non-finite epoch loss (rollback to the last good state, bounded by a
/// deterministic retry budget), and transient checkpoint-write IO errors
/// (bounded retry inside `mhg-ckpt`) — all without changing any result.
pub fn train<S, T>(
    opts: &TrainOptions,
    sample: S,
    step: &mut T,
    rng: &mut StdRng,
) -> Result<TrainReport, TrainError>
where
    T: TrainStep,
    S: Fn(usize, &mut StdRng) -> Result<Vec<T::Batch>, SampleError> + Sync,
{
    // Size the kernel/walk worker pool for the whole run (0 = inherit).
    let _pool = mhg_par::scoped_threads(opts.threads);
    let mut st = LoopState {
        base: rng.gen(),
        epoch: 0,
        report: TrainReport::default(),
        stopper: EarlyStopper::new(opts.patience),
        stopped: false,
    };
    let mut recovery = RecoveryCounters::default();

    let ckpt = match &opts.checkpoint_dir {
        Some(dir) => Some(Checkpointer::create(dir)?),
        None => None,
    };
    if opts.resume {
        if let Some(c) = &ckpt {
            if let Some((epoch, dict)) = c.load_latest()? {
                restore(&mut st, rng, step, &dict).map_err(TrainError::Checkpoint)?;
                recovery.resumed_from = Some(epoch);
                opts.obs
                    .event("resumed", &[("epoch", EventValue::U64(epoch as u64))]);
                opts.obs.note(&format!(
                    "[mhg-train] resumed from checkpoint at epoch {epoch}"
                ));
            }
        }
    }

    // In-memory rollback anchor for divergence recovery; refreshed at the
    // checkpoint cadence so it works with or without a checkpoint dir.
    let mut last_good = snapshot(&st, rng, step);
    let mut last_saved: Option<usize> = None;
    let mut background = opts.background;

    while !st.stopped && st.epoch < opts.epochs {
        let exit = run_span(
            opts,
            &sample,
            step,
            rng,
            &mut st,
            background,
            ckpt.as_ref(),
            &mut last_good,
            &mut last_saved,
        )?;
        match exit {
            SpanExit::Finished => break,
            SpanExit::SamplerFailed(e) => {
                if let SampleError::Storage(detail) = e {
                    // A dead (quarantined) shard fails identically on every
                    // replay — falling back to inline sampling would only
                    // re-read the same quarantined shard. Surface it typed.
                    opts.obs.event(
                        "storage_exhausted",
                        &[
                            ("epoch", EventValue::U64(st.epoch as u64)),
                            ("error", EventValue::Str(detail.clone())),
                        ],
                    );
                    opts.obs.note(&format!(
                        "[mhg-train] graph storage exhausted self-healing at epoch {}: {detail}",
                        st.epoch
                    ));
                    return Err(TrainError::StorageExhausted {
                        epoch: st.epoch,
                        detail,
                    });
                }
                if background {
                    opts.obs.event(
                        "sampler_fallback",
                        &[
                            ("epoch", EventValue::U64(st.epoch as u64)),
                            ("error", EventValue::Str(e.to_string())),
                        ],
                    );
                    opts.obs.note(&format!(
                        "[mhg-train] background sampler failed at epoch {}: {e}; \
                         falling back to inline sampling",
                        st.epoch
                    ));
                    recovery.sampler_fallbacks += 1;
                    background = false;
                } else {
                    return Err(TrainError::Sample(e));
                }
            }
            SpanExit::Diverged => {
                recovery.nan_rollbacks += 1;
                if recovery.nan_rollbacks > MAX_NAN_ROLLBACKS {
                    return Err(TrainError::Diverged {
                        epoch: st.epoch,
                        rollbacks: recovery.nan_rollbacks - 1,
                    });
                }
                opts.obs.event(
                    "nan_rollback",
                    &[("epoch", EventValue::U64(st.epoch as u64))],
                );
                opts.obs.note(&format!(
                    "[mhg-train] non-finite epoch loss at epoch {}; \
                     rolling back to last good state",
                    st.epoch
                ));
                restore(&mut st, rng, step, &last_good).map_err(TrainError::Checkpoint)?;
            }
        }
    }

    if !step.is_fitted() {
        // 0-epoch runs: still produce the final artefact and a real
        // validation score from the initial parameters, so every report is
        // finalized the same way. (With ≥ 1 epoch the first eval always
        // improves on −∞ and promotes.)
        let span = opts.obs.span("train/eval");
        let auc = step.eval(rng);
        st.report.timing.eval_ms += span.stop_ms();
        st.stopper.update(auc);
        step.promote();
    }
    st.report.best_val_auc = st.stopper.best();
    if let Some(c) = &ckpt {
        // Final checkpoint so a finished run resumes as a no-op; skipped if
        // the cadence already saved this exact boundary (the cadence
        // snapshot runs after the stopped flag is set, so it never misses
        // an early stop).
        if last_saved != Some(st.epoch) {
            let snap = snapshot(&st, rng, step);
            let span = opts.obs.span("train/ckpt");
            c.save(st.epoch, &snap)?;
            span.stop_ms();
            opts.obs
                .event("checkpoint", &[("epoch", EventValue::U64(st.epoch as u64))]);
        }
    }
    st.report.recovery = recovery;
    opts.obs.event(
        "train_end",
        &[
            ("epochs_run", EventValue::U64(st.report.epochs_run as u64)),
            (
                "final_loss",
                EventValue::F64(f64::from(st.report.final_loss)),
            ),
            ("best_val_auc", EventValue::F64(st.report.best_val_auc)),
            (
                "sampler_fallbacks",
                EventValue::U64(st.report.recovery.sampler_fallbacks as u64),
            ),
            (
                "nan_rollbacks",
                EventValue::U64(st.report.recovery.nan_rollbacks as u64),
            ),
        ],
    );
    Ok(st.report)
}

/// Runs epochs from `st.epoch` until the budget, early stopping, or a
/// recoverable fault ends the span. Sampling runs on a background worker
/// when `background` holds, inline otherwise — bit-identical either way.
#[allow(clippy::too_many_arguments)]
fn run_span<S, T>(
    opts: &TrainOptions,
    sample: &S,
    step: &mut T,
    rng: &mut StdRng,
    st: &mut LoopState,
    background: bool,
    ckpt: Option<&Checkpointer>,
    last_good: &mut StateDict,
    last_saved: &mut Option<usize>,
) -> Result<SpanExit, TrainError>
where
    T: TrainStep,
    S: Fn(usize, &mut StdRng) -> Result<Vec<T::Batch>, SampleError> + Sync,
{
    let start = st.epoch;
    let budget = opts.epochs - start;
    let base = st.base;

    // Sampling stage: timed where it runs (worker thread or inline). The
    // duration is measured with raw clock readings, not a span, so the
    // `train/sample` histogram entry is recorded by the consuming epoch —
    // a prefetched-but-never-consumed buffer leaves no metric behind.
    let obs = opts.obs.clone();
    let produce = move |offset: usize| -> Result<(Vec<T::Batch>, u64), SampleError> {
        let epoch = start + offset;
        let t0 = obs.now_ns();
        let mut sample_rng = StdRng::seed_from_u64(epoch_seed(base, epoch as u64));
        let batches = sample(epoch, &mut sample_rng)?;
        Ok((batches, obs.now_ns().saturating_sub(t0)))
    };

    if background && budget > 0 {
        run_prefetched(budget, &produce, |next| {
            pump(
                opts,
                step,
                rng,
                st,
                ckpt,
                last_good,
                last_saved,
                &mut || next().map(|r| r.and_then(|b| b)),
            )
        })
    } else {
        let mut offset = 0usize;
        pump(
            opts,
            step,
            rng,
            st,
            ckpt,
            last_good,
            last_saved,
            &mut || {
                if offset >= budget {
                    return None;
                }
                // A sharded-store failure escapes the infallible GraphStore
                // API as a panic; contain it here exactly like the prefetch
                // worker does, so the inline path also surfaces a typed
                // `SampleError::Storage` instead of aborting the process.
                // Any other panic is a real bug and keeps unwinding.
                let buffer = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    produce(offset)
                })) {
                    Ok(b) => b,
                    Err(payload) => match mhg_sampling::classify_panic(payload.as_ref()) {
                        e @ SampleError::Storage(_) => Err(e),
                        _ => std::panic::resume_unwind(payload),
                    },
                };
                offset += 1;
                Some(buffer)
            },
        )
    }
}

/// One sampled buffer: the epoch's batches plus the sample-stage duration
/// in nanoseconds (measured on whichever thread ran the recipe).
type SampledBuffer<B> = Result<(Vec<B>, u64), SampleError>;

/// The span body shared between the inline and background paths: `next`
/// yields `(batches, sample_ms)` buffers (or a sampling error) until the
/// span ends.
#[allow(clippy::too_many_arguments)]
fn pump<T: TrainStep>(
    opts: &TrainOptions,
    step: &mut T,
    rng: &mut StdRng,
    st: &mut LoopState,
    ckpt: Option<&Checkpointer>,
    last_good: &mut StateDict,
    last_saved: &mut Option<usize>,
    next: &mut dyn FnMut() -> Option<SampledBuffer<T::Batch>>,
) -> Result<SpanExit, TrainError> {
    while let Some(buffer) = next() {
        let (batches, sample_ns) = match buffer {
            Ok(b) => b,
            Err(e) => return Ok(SpanExit::SamplerFailed(e)),
        };
        let outcome = drive_epoch(&opts.obs, step, rng, st, batches, sample_ns);
        match outcome {
            EpochOutcome::Diverged => return Ok(SpanExit::Diverged),
            EpochOutcome::Committed | EpochOutcome::Stopped => {
                let completed = st.epoch;
                if opts.checkpoint_every > 0 && completed.is_multiple_of(opts.checkpoint_every) {
                    let snap = snapshot(st, rng, step);
                    if let Some(c) = ckpt {
                        let span = opts.obs.span("train/ckpt");
                        c.save(completed, &snap)?;
                        span.stop_ms();
                        opts.obs.event(
                            "checkpoint",
                            &[("epoch", EventValue::U64(completed as u64))],
                        );
                        *last_saved = Some(completed);
                    }
                    *last_good = snap;
                }
                if matches!(outcome, EpochOutcome::Stopped) {
                    return Ok(SpanExit::Finished);
                }
            }
        }
    }
    Ok(SpanExit::Finished)
}

/// Steps one epoch's batches, validates, and commits the epoch — unless
/// the epoch loss comes out non-finite, in which case nothing is committed
/// and the caller rolls back.
///
/// All per-epoch timing flows through `obs` spans (satellite of the
/// `TimingBreakdown` contract): the histogram record and the
/// `report.timing` accumulation come from the same clock reading.
fn drive_epoch<T: TrainStep>(
    obs: &Obs,
    step: &mut T,
    rng: &mut StdRng,
    st: &mut LoopState,
    batches: Vec<T::Batch>,
    sample_ns: u64,
) -> EpochOutcome {
    obs.record_duration_ns("train/sample", sample_ns);
    let sample_ms = sample_ns as f64 / 1e6;
    st.report.timing.sample_ms += sample_ms;

    let batch_count = batches.len();
    let compute = obs.span("train/compute");
    let mut loss_sum = 0.0f64;
    let mut denom = 0usize;
    for batch in batches {
        let batch_span = obs.span("train/step");
        let loss = step.step(batch, rng);
        batch_span.stop_ms();
        loss_sum += loss.loss_sum;
        denom += loss.denom;
    }
    let compute_ms = compute.stop_ms();
    st.report.timing.compute_ms += compute_ms;

    let mut epoch_loss = (loss_sum / denom.max(1) as f64) as f32;
    if mhg_faults::should_inject(FaultSite::NanLoss) {
        epoch_loss = f32::NAN;
    }
    if !epoch_loss.is_finite() {
        return EpochOutcome::Diverged;
    }
    st.report.epochs_run += 1;
    st.report.final_loss = epoch_loss;
    st.epoch += 1;

    let eval_span = obs.span("train/eval");
    let auc = step.eval(rng);
    let eval_ms = eval_span.stop_ms();
    st.report.timing.eval_ms += eval_ms;

    obs.counter_add("train/epochs", 1);
    obs.counter_add("train/batches", batch_count as u64);
    obs.counter_add("train/examples", denom as u64);
    let examples_per_sec = if compute_ms > 0.0 {
        denom as f64 * 1e3 / compute_ms
    } else {
        0.0
    };
    obs.event(
        "epoch",
        &[
            ("epoch", EventValue::U64((st.epoch - 1) as u64)),
            ("loss", EventValue::F64(f64::from(epoch_loss))),
            ("batches", EventValue::U64(batch_count as u64)),
            ("examples", EventValue::U64(denom as u64)),
            ("sample_ms", EventValue::F64(sample_ms)),
            ("compute_ms", EventValue::F64(compute_ms)),
            ("eval_ms", EventValue::F64(eval_ms)),
            ("examples_per_sec", EventValue::F64(examples_per_sec)),
            ("val_auc", EventValue::F64(auc)),
        ],
    );
    match st.stopper.update(auc) {
        StopDecision::Improved => {
            step.promote();
            EpochOutcome::Committed
        }
        StopDecision::Continue => EpochOutcome::Committed,
        StopDecision::Stop => {
            st.stopped = true;
            EpochOutcome::Stopped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Fault plans are process-global; tests that install one (or rely on
    /// none being installed) serialize on this guard.
    fn faults_guard() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mhg_train_pipeline").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Toy step: the "model" is a counter; validation improves for the
    /// first `peak` epochs then plateaus, triggering early stopping.
    #[derive(Debug)]
    struct CountingStep {
        steps: usize,
        evals: usize,
        promoted: usize,
        fitted: bool,
        peak: usize,
        trace: Vec<u64>,
        /// When set, every epoch loss comes out NaN (real divergence).
        diverge: bool,
    }

    impl CountingStep {
        fn new(peak: usize) -> Self {
            Self {
                steps: 0,
                evals: 0,
                promoted: 0,
                fitted: false,
                peak,
                trace: Vec::new(),
                diverge: false,
            }
        }
    }

    impl TrainStep for CountingStep {
        type Batch = Vec<u64>;

        fn step(&mut self, batch: Vec<u64>, _rng: &mut StdRng) -> BatchLoss {
            self.steps += 1;
            self.trace.extend(batch.iter().copied());
            BatchLoss {
                loss_sum: if self.diverge {
                    f64::NAN
                } else {
                    batch.len() as f64
                },
                denom: batch.len(),
            }
        }

        fn eval(&mut self, _rng: &mut StdRng) -> f64 {
            self.evals += 1;
            self.evals.min(self.peak) as f64
        }

        fn promote(&mut self) {
            self.promoted += 1;
            self.fitted = true;
        }

        fn is_fitted(&self) -> bool {
            self.fitted
        }

        fn export_state(&self, dict: &mut StateDict) {
            dict.put_u64("model/steps", self.steps as u64);
            dict.put_u64("model/evals", self.evals as u64);
            dict.put_u64("model/promoted", self.promoted as u64);
            dict.put_u64("model/fitted", u64::from(self.fitted));
            dict.put_u64s("model/trace", self.trace.clone());
        }

        fn import_state(&mut self, dict: &StateDict) -> Result<(), CkptError> {
            self.steps = dict.u64("model/steps")? as usize;
            self.evals = dict.u64("model/evals")? as usize;
            self.promoted = dict.u64("model/promoted")? as usize;
            self.fitted = dict.u64("model/fitted")? != 0;
            self.trace = dict.u64s("model/trace")?.to_vec();
            Ok(())
        }
    }

    fn recipe(epoch: usize, rng: &mut StdRng) -> Result<Vec<Vec<u64>>, SampleError> {
        // Two batches per epoch whose content depends on the epoch RNG.
        Ok(vec![
            vec![epoch as u64, rng.gen()],
            vec![rng.gen(), rng.gen(), rng.gen()],
        ])
    }

    fn opts(background: bool, epochs: usize) -> TrainOptions {
        TrainOptions {
            epochs,
            patience: 2,
            background,
            threads: 0,
            checkpoint_every: 0,
            checkpoint_dir: None,
            resume: false,
            obs: Obs::disabled(),
        }
    }

    fn run(background: bool, epochs: usize, peak: usize) -> (TrainReport, CountingStep) {
        let mut step = CountingStep::new(peak);
        let mut rng = StdRng::seed_from_u64(7);
        let report = train(&opts(background, epochs), recipe, &mut step, &mut rng)
            .expect("clean run must succeed");
        (report, step)
    }

    fn run_with(
        o: &TrainOptions,
        peak: usize,
        seed: u64,
    ) -> Result<(TrainReport, CountingStep), TrainError> {
        let mut step = CountingStep::new(peak);
        let mut rng = StdRng::seed_from_u64(seed);
        let report = train(o, recipe, &mut step, &mut rng)?;
        Ok((report, step))
    }

    #[test]
    fn background_matches_inline_exactly() {
        let _g = faults_guard();
        mhg_faults::clear();
        let (r_in, s_in) = run(false, 6, 10);
        let (r_bg, s_bg) = run(true, 6, 10);
        assert_eq!(s_in.trace, s_bg.trace, "batch streams must be identical");
        assert_eq!(r_in.epochs_run, r_bg.epochs_run);
        assert_eq!(r_in.final_loss, r_bg.final_loss);
        assert_eq!(r_in.best_val_auc, r_bg.best_val_auc);
    }

    #[test]
    fn early_stopping_cuts_the_run() {
        let _g = faults_guard();
        mhg_faults::clear();
        // Improves for 3 epochs, patience 2 → stops at epoch 5.
        let (report, step) = run(false, 30, 3);
        assert_eq!(report.epochs_run, 5);
        assert_eq!(step.promoted, 3);
        assert!((report.best_val_auc - 3.0).abs() < 1e-12);
        let (report_bg, _) = run(true, 30, 3);
        assert_eq!(report_bg.epochs_run, 5);
    }

    #[test]
    fn zero_epoch_run_is_finalized_uniformly() {
        let _g = faults_guard();
        mhg_faults::clear();
        for background in [false, true] {
            let (report, step) = run(background, 0, 10);
            assert_eq!(report.epochs_run, 0);
            assert_eq!(report.final_loss, 0.0);
            // Still evaluated and promoted once from initial parameters.
            assert_eq!(step.evals, 1);
            assert_eq!(step.promoted, 1);
            assert!(step.is_fitted());
            assert!((report.best_val_auc - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn epoch_seed_is_stable_and_spread() {
        assert_eq!(epoch_seed(42, 0), epoch_seed(42, 0));
        assert_ne!(epoch_seed(42, 0), epoch_seed(42, 1));
        assert_ne!(epoch_seed(42, 1), epoch_seed(43, 1));
    }

    #[test]
    fn timing_is_accumulated() {
        let _g = faults_guard();
        mhg_faults::clear();
        let (report, _) = run(false, 3, 10);
        // Totals are non-negative and finite; exact values are wall-clock.
        assert!(report.timing.sample_ms >= 0.0);
        assert!(report.timing.compute_ms >= 0.0);
        assert!(report.timing.eval_ms >= 0.0);
        assert!(report
            .timing
            .per_epoch(report.epochs_run)
            .sample_ms
            .is_finite());
    }

    /// The core resume contract: train(k) → new process → resume → train(n)
    /// is bit-identical to an uninterrupted train(n), even when the
    /// resuming process seeds its RNG differently.
    #[test]
    fn split_run_with_resume_matches_uninterrupted_run() {
        let _g = faults_guard();
        mhg_faults::clear();
        for background in [false, true] {
            let (full_report, full_step) = run(background, 6, 10);

            let dir = fresh_dir(if background { "split_bg" } else { "split_in" });
            let mut part1 = opts(background, 3);
            part1.checkpoint_every = 1;
            part1.checkpoint_dir = Some(dir.clone());
            run_with(&part1, 10, 7).expect("part 1 must succeed");

            // "New process": fresh step, *different* RNG seed — the restored
            // checkpoint must be authoritative over both.
            let mut part2 = opts(background, 6);
            part2.checkpoint_every = 1;
            part2.checkpoint_dir = Some(dir.clone());
            part2.resume = true;
            let (resumed_report, resumed_step) =
                run_with(&part2, 10, 999).expect("resumed run must succeed");

            assert_eq!(resumed_report.recovery.resumed_from, Some(3));
            assert_eq!(full_step.trace, resumed_step.trace);
            assert_eq!(full_report.epochs_run, resumed_report.epochs_run);
            assert_eq!(full_report.final_loss, resumed_report.final_loss);
            assert_eq!(full_report.best_val_auc, resumed_report.best_val_auc);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Resuming a run that already hit its epoch budget (or early-stopped)
    /// is a no-op: no extra steps, no re-evaluation, same report.
    #[test]
    fn resume_of_finished_run_is_a_noop() {
        let _g = faults_guard();
        mhg_faults::clear();
        let dir = fresh_dir("finished");
        let mut o = opts(false, 4);
        o.checkpoint_dir = Some(dir.clone());
        let (first, step1) = run_with(&o, 10, 7).expect("first run");
        o.resume = true;
        let (second, step2) = run_with(&o, 10, 123).expect("resume");
        assert_eq!(second.recovery.resumed_from, Some(4));
        assert_eq!(step1.steps, step2.steps, "no epochs may re-run");
        assert_eq!(step1.evals, step2.evals, "no extra evaluation");
        assert_eq!(first.epochs_run, second.epochs_run);
        assert_eq!(first.best_val_auc, second.best_val_auc);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An early-stopped run persists its `stopped` flag: resuming with a
    /// *larger* epoch budget still refuses to continue past the stop.
    #[test]
    fn resume_honors_a_persisted_early_stop() {
        let _g = faults_guard();
        mhg_faults::clear();
        let dir = fresh_dir("stopped");
        let mut o = opts(false, 30);
        o.checkpoint_dir = Some(dir.clone());
        let (first, _) = run_with(&o, 3, 7).expect("first run");
        assert_eq!(first.epochs_run, 5, "peak 3 + patience 2");
        let mut o2 = opts(false, 100);
        o2.checkpoint_dir = Some(dir.clone());
        o2.resume = true;
        let (second, step2) = run_with(&o2, 3, 7).expect("resume");
        assert_eq!(second.epochs_run, 5, "stopped flag must hold");
        assert_eq!(step2.steps, 10, "restored steps only, no new ones");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An injected NaN loss rolls back to the last good state and replays
    /// deterministically: the final trace and report match a clean run.
    #[test]
    fn injected_nan_loss_rolls_back_and_replays_bit_identically() {
        let _g = faults_guard();
        let (clean_report, clean_step) = {
            mhg_faults::clear();
            run(false, 5, 10)
        };
        let plan = mhg_faults::FaultPlan::new().inject(FaultSite::NanLoss, 3);
        mhg_faults::install(plan);
        let mut o = opts(false, 5);
        o.checkpoint_every = 1; // refresh the rollback anchor every epoch
        let (faulted_report, faulted_step) = run_with(&o, 10, 7).expect("must recover");
        mhg_faults::clear();
        assert_eq!(faulted_report.recovery.nan_rollbacks, 1);
        assert_eq!(clean_step.trace, faulted_step.trace);
        assert_eq!(clean_report.epochs_run, faulted_report.epochs_run);
        assert_eq!(clean_report.final_loss, faulted_report.final_loss);
        assert_eq!(clean_report.best_val_auc, faulted_report.best_val_auc);
    }

    /// Rollback works even with no cadence: the anchor is the run start.
    #[test]
    fn nan_rollback_to_run_start_still_recovers() {
        let _g = faults_guard();
        let (clean_report, clean_step) = {
            mhg_faults::clear();
            run(false, 4, 10)
        };
        let plan = mhg_faults::FaultPlan::new().inject(FaultSite::NanLoss, 2);
        mhg_faults::install(plan);
        let (faulted_report, faulted_step) =
            run_with(&opts(false, 4), 10, 7).expect("must recover");
        mhg_faults::clear();
        assert_eq!(faulted_report.recovery.nan_rollbacks, 1);
        assert_eq!(clean_step.trace, faulted_step.trace);
        assert_eq!(clean_report.final_loss, faulted_report.final_loss);
    }

    /// A *real* divergence (every replay reproduces the NaN) exhausts the
    /// rollback budget into a typed error instead of looping forever.
    #[test]
    fn real_divergence_exhausts_rollbacks_into_typed_error() {
        let _g = faults_guard();
        mhg_faults::clear();
        let mut step = CountingStep::new(10);
        step.diverge = true;
        let mut rng = StdRng::seed_from_u64(7);
        let err = train(&opts(false, 3), recipe, &mut step, &mut rng)
            .expect_err("must report divergence");
        match err {
            TrainError::Diverged { epoch, rollbacks } => {
                assert_eq!(epoch, 0, "never commits an epoch");
                assert_eq!(rollbacks, MAX_NAN_ROLLBACKS);
            }
            other => panic!("expected Diverged, got {other}"),
        }
    }

    /// A panicking background sampler degrades to inline sampling of the
    /// same epochs — run completes with an identical result.
    #[test]
    fn sampler_panic_falls_back_inline_bit_identically() {
        let _g = faults_guard();
        let (clean_report, clean_step) = {
            mhg_faults::clear();
            run(true, 5, 10)
        };
        let plan = mhg_faults::FaultPlan::new().inject(FaultSite::SamplerPanic, 2);
        mhg_faults::install(plan);
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        let result = run_with(&opts(true, 5), 10, 7);
        std::panic::set_hook(prev_hook);
        mhg_faults::clear();
        let (faulted_report, faulted_step) = result.expect("must fall back");
        assert_eq!(faulted_report.recovery.sampler_fallbacks, 1);
        assert_eq!(clean_step.trace, faulted_step.trace);
        assert_eq!(clean_report.epochs_run, faulted_report.epochs_run);
        assert_eq!(clean_report.final_loss, faulted_report.final_loss);
        assert_eq!(clean_report.best_val_auc, faulted_report.best_val_auc);
    }

    /// A sharded-store failure during sampling is terminal — no inline
    /// fallback, no process abort — and typed, on both sampling paths.
    #[test]
    fn storage_failure_is_terminal_and_typed_on_both_paths() {
        let _g = faults_guard();
        mhg_faults::clear();
        for background in [false, true] {
            let sample = |epoch: usize, rng: &mut StdRng| {
                if epoch == 2 {
                    // What `ShardedCsr::with_neighbors` panics with once a
                    // shard is quarantined and repair failed.
                    panic!(
                        "{}: shard r0-s1 quarantined: retries exhausted and repair failed",
                        mhg_graph::STORE_FAILURE_PREFIX
                    );
                }
                recipe(epoch, rng)
            };
            let mut step = CountingStep::new(10);
            let mut rng = StdRng::seed_from_u64(7);
            let prev_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let err = train(&opts(background, 5), sample, &mut step, &mut rng)
                .expect_err("dead shard must surface");
            std::panic::set_hook(prev_hook);
            match err {
                TrainError::StorageExhausted { epoch, detail } => {
                    assert_eq!(epoch, 2, "background={background}");
                    assert!(detail.contains("quarantined"), "got {detail}");
                }
                other => panic!("expected StorageExhausted, got {other} (background={background})"),
            }
        }
    }

    /// Checkpoint writes retry through injected IO faults without changing
    /// the training result.
    #[test]
    fn checkpoint_io_faults_are_retried_transparently() {
        let _g = faults_guard();
        let (clean_report, clean_step) = {
            mhg_faults::clear();
            run(false, 4, 10)
        };
        let dir = fresh_dir("io_retry");
        let plan = mhg_faults::FaultPlan::new()
            .inject(FaultSite::IoWrite, 1)
            .inject(FaultSite::IoWrite, 3);
        mhg_faults::install(plan);
        let mut o = opts(false, 4);
        o.checkpoint_every = 1;
        o.checkpoint_dir = Some(dir.clone());
        let result = run_with(&o, 10, 7);
        mhg_faults::clear();
        let (faulted_report, faulted_step) = result.expect("retries must absorb IO faults");
        assert_eq!(clean_step.trace, faulted_step.trace);
        assert_eq!(clean_report.final_loss, faulted_report.final_loss);
        // The checkpoints landed despite the injected write failures.
        assert!(Path::new(&dir).join("ckpt-000004.mhgc").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A corrupt latest checkpoint surfaces as a typed error, not a panic.
    #[test]
    fn corrupt_checkpoint_on_resume_is_a_typed_error() {
        let _g = faults_guard();
        mhg_faults::clear();
        let dir = fresh_dir("corrupt");
        let mut o = opts(false, 3);
        o.checkpoint_dir = Some(dir.clone());
        run_with(&o, 10, 7).expect("first run");
        // Flip a byte in the newest checkpoint.
        let path = Path::new(&dir).join("ckpt-000003.mhgc");
        let mut bytes = std::fs::read(&path).expect("read checkpoint");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite checkpoint");
        o.resume = true;
        let err = run_with(&o, 10, 7).expect_err("corruption must surface");
        assert!(
            matches!(
                err,
                TrainError::Checkpoint(CkptError::ChecksumMismatch { .. })
            ),
            "got {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
