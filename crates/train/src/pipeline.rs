//! The epoch control flow: Sampler → Batcher → Step → Validator/EarlyStop.

use std::time::Instant;

use mhg_sampling::run_prefetched;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{EarlyStopper, StopDecision, TrainReport};

/// Loop-level options shared by every model.
#[derive(Clone, Copy, Debug)]
pub struct TrainOptions {
    /// Maximum epochs.
    pub epochs: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Run the sampling recipe on a background worker thread, double-
    /// buffered against the step stage. Bit-identical to inline sampling.
    pub background: bool,
    /// Worker threads for the `mhg-par` kernel pool and sharded walk
    /// generation during this run; `0` inherits the process-wide setting
    /// (`MHG_THREADS` env, else available parallelism). Bit-identical for
    /// any value by the pool's determinism contract.
    pub threads: usize,
}

/// Loss contribution of one minibatch step.
///
/// `denom` is whatever the model normalises its epoch loss by: the item
/// count for per-pair update models (SGNS), `1` for tape models whose loss
/// op already returns a batch mean.
#[derive(Clone, Copy, Debug)]
pub struct BatchLoss {
    /// Summed loss over the batch (in the model's own normalisation).
    pub loss_sum: f64,
    /// Number of units `loss_sum` accumulates over.
    pub denom: usize,
}

/// The per-model half of the pipeline: one optimizer step per minibatch,
/// plus the validation/snapshot hooks the Validator stage drives.
///
/// Contract: [`TrainStep::eval`] scores the *current* parameters on the
/// validation set and stages a snapshot candidate; [`TrainStep::promote`]
/// commits the staged candidate as the model's final artefact (called only
/// when validation improved); [`TrainStep::is_fitted`] reports whether a
/// final artefact exists. The pipeline guarantees `promote` is called at
/// least once per `fit`, so `is_fitted` holds on return from [`train`].
pub trait TrainStep {
    /// One epoch's minibatch unit, produced by the sampling recipe.
    /// `Send` so batches can cross from the prefetch worker thread.
    type Batch: Send;

    /// Performs one forward/backward/optimizer step on `batch`.
    fn step(&mut self, batch: Self::Batch, rng: &mut StdRng) -> BatchLoss;

    /// Evaluates the current parameters on the validation set, staging a
    /// snapshot candidate; returns the validation metric (ROC-AUC).
    fn eval(&mut self, rng: &mut StdRng) -> f64;

    /// Commits the candidate staged by the last [`TrainStep::eval`] call.
    fn promote(&mut self);

    /// Whether a final artefact has been committed.
    fn is_fitted(&self) -> bool;
}

/// Derives the sampler seed for `epoch` from `base` (splitmix64 finalizer).
///
/// Sampling RNG streams are a pure function of `(base, epoch)` — never of
/// training progress — which is what lets the background worker run one
/// epoch ahead of the step stage without changing any result.
pub fn epoch_seed(base: u64, epoch: u64) -> u64 {
    // Same mixer as the per-shard walk seeds; see mhg_sampling::derive_seed.
    mhg_sampling::derive_seed(base, epoch)
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Runs the full training loop: samples each epoch with `sample` (inline or
/// double-buffered on a background thread per `opts.background`), steps
/// `step` over the produced batches, validates, early-stops, and returns a
/// uniformly initialized and finalized [`TrainReport`].
///
/// `sample(epoch, rng)` receives an RNG seeded by [`epoch_seed`] from a
/// base drawn once from `rng`; `step` hooks receive `rng` itself. The two
/// streams are independent, so background and inline sampling produce
/// byte-identical models.
pub fn train<S, T>(opts: &TrainOptions, sample: S, step: &mut T, rng: &mut StdRng) -> TrainReport
where
    T: TrainStep,
    S: Fn(usize, &mut StdRng) -> Vec<T::Batch> + Sync,
{
    // Size the kernel/walk worker pool for the whole run (0 = inherit).
    let _pool = mhg_par::scoped_threads(opts.threads);
    let base: u64 = rng.gen();
    let mut report = TrainReport::default();
    let mut stopper = EarlyStopper::new(opts.patience);

    // Sampling stage: timed where it runs (worker thread or inline).
    let produce = |epoch: usize| -> (Vec<T::Batch>, f64) {
        let started = Instant::now();
        let mut sample_rng = StdRng::seed_from_u64(epoch_seed(base, epoch as u64));
        let batches = sample(epoch, &mut sample_rng);
        (batches, ms_since(started))
    };

    if opts.background && opts.epochs > 0 {
        run_prefetched(opts.epochs, &produce, |next| {
            drive(step, rng, &mut report, &mut stopper, next);
        });
    } else {
        let mut epoch = 0usize;
        let epochs = opts.epochs;
        drive(step, rng, &mut report, &mut stopper, &mut || {
            if epoch >= epochs {
                return None;
            }
            let buffer = produce(epoch);
            epoch += 1;
            Some(buffer)
        });
    }

    if !step.is_fitted() {
        // 0-epoch runs: still produce the final artefact and a real
        // validation score from the initial parameters, so every report is
        // finalized the same way. (With ≥ 1 epoch the first eval always
        // improves on −∞ and promotes.)
        let started = Instant::now();
        let auc = step.eval(rng);
        report.timing.eval_ms += ms_since(started);
        stopper.update(auc);
        step.promote();
    }
    report.best_val_auc = stopper.best();
    report
}

/// The epoch loop body, shared between the inline and background paths:
/// `next` yields `(batches, sample_ms)` buffers until the epoch budget or
/// early stopping ends the run.
fn drive<T: TrainStep>(
    step: &mut T,
    rng: &mut StdRng,
    report: &mut TrainReport,
    stopper: &mut EarlyStopper,
    next: &mut dyn FnMut() -> Option<(Vec<T::Batch>, f64)>,
) {
    while let Some((batches, sample_ms)) = next() {
        report.timing.sample_ms += sample_ms;

        let started = Instant::now();
        let mut loss_sum = 0.0f64;
        let mut denom = 0usize;
        for batch in batches {
            let loss = step.step(batch, rng);
            loss_sum += loss.loss_sum;
            denom += loss.denom;
        }
        report.timing.compute_ms += ms_since(started);

        report.epochs_run += 1;
        report.final_loss = (loss_sum / denom.max(1) as f64) as f32;

        let started = Instant::now();
        let auc = step.eval(rng);
        report.timing.eval_ms += ms_since(started);
        match stopper.update(auc) {
            StopDecision::Improved => step.promote(),
            StopDecision::Continue => {}
            StopDecision::Stop => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy step: the "model" is a counter; validation improves for the
    /// first `peak` epochs then plateaus, triggering early stopping.
    struct CountingStep {
        steps: usize,
        evals: usize,
        promoted: usize,
        fitted: bool,
        peak: usize,
        trace: Vec<u64>,
    }

    impl CountingStep {
        fn new(peak: usize) -> Self {
            Self {
                steps: 0,
                evals: 0,
                promoted: 0,
                fitted: false,
                peak,
                trace: Vec::new(),
            }
        }
    }

    impl TrainStep for CountingStep {
        type Batch = Vec<u64>;

        fn step(&mut self, batch: Vec<u64>, _rng: &mut StdRng) -> BatchLoss {
            self.steps += 1;
            self.trace.extend(batch.iter().copied());
            BatchLoss {
                loss_sum: batch.len() as f64,
                denom: batch.len(),
            }
        }

        fn eval(&mut self, _rng: &mut StdRng) -> f64 {
            self.evals += 1;
            self.evals.min(self.peak) as f64
        }

        fn promote(&mut self) {
            self.promoted += 1;
            self.fitted = true;
        }

        fn is_fitted(&self) -> bool {
            self.fitted
        }
    }

    fn recipe(epoch: usize, rng: &mut StdRng) -> Vec<Vec<u64>> {
        // Two batches per epoch whose content depends on the epoch RNG.
        vec![
            vec![epoch as u64, rng.gen()],
            vec![rng.gen(), rng.gen(), rng.gen()],
        ]
    }

    fn run(background: bool, epochs: usize, peak: usize) -> (TrainReport, CountingStep) {
        let opts = TrainOptions {
            epochs,
            patience: 2,
            background,
            threads: 0,
        };
        let mut step = CountingStep::new(peak);
        let mut rng = StdRng::seed_from_u64(7);
        let report = train(&opts, recipe, &mut step, &mut rng);
        (report, step)
    }

    #[test]
    fn background_matches_inline_exactly() {
        let (r_in, s_in) = run(false, 6, 10);
        let (r_bg, s_bg) = run(true, 6, 10);
        assert_eq!(s_in.trace, s_bg.trace, "batch streams must be identical");
        assert_eq!(r_in.epochs_run, r_bg.epochs_run);
        assert_eq!(r_in.final_loss, r_bg.final_loss);
        assert_eq!(r_in.best_val_auc, r_bg.best_val_auc);
    }

    #[test]
    fn early_stopping_cuts_the_run() {
        // Improves for 3 epochs, patience 2 → stops at epoch 5.
        let (report, step) = run(false, 30, 3);
        assert_eq!(report.epochs_run, 5);
        assert_eq!(step.promoted, 3);
        assert!((report.best_val_auc - 3.0).abs() < 1e-12);
        let (report_bg, _) = run(true, 30, 3);
        assert_eq!(report_bg.epochs_run, 5);
    }

    #[test]
    fn zero_epoch_run_is_finalized_uniformly() {
        for background in [false, true] {
            let (report, step) = run(background, 0, 10);
            assert_eq!(report.epochs_run, 0);
            assert_eq!(report.final_loss, 0.0);
            // Still evaluated and promoted once from initial parameters.
            assert_eq!(step.evals, 1);
            assert_eq!(step.promoted, 1);
            assert!(step.is_fitted());
            assert!((report.best_val_auc - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn epoch_seed_is_stable_and_spread() {
        assert_eq!(epoch_seed(42, 0), epoch_seed(42, 0));
        assert_ne!(epoch_seed(42, 0), epoch_seed(42, 1));
        assert_ne!(epoch_seed(42, 1), epoch_seed(43, 1));
    }

    #[test]
    fn timing_is_accumulated() {
        let (report, _) = run(false, 3, 10);
        // Totals are non-negative and finite; exact values are wall-clock.
        assert!(report.timing.sample_ms >= 0.0);
        assert!(report.timing.compute_ms >= 0.0);
        assert!(report.timing.eval_ms >= 0.0);
        assert!(report
            .timing
            .per_epoch(report.epochs_run)
            .sample_ms
            .is_finite());
    }
}
