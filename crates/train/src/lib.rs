//! The shared training pipeline of the HybridGNN reproduction.
//!
//! Every model in the workspace — the nine baselines and HybridGNN itself —
//! trains through the same explicit stage sequence owned by this crate:
//!
//! ```text
//! Sampler ──► Batcher ──► Step (forward/backward/optim) ──► Validator/EarlyStop
//! ```
//!
//! A model contributes two things: a **sampling recipe** (a closure that
//! turns an epoch index and a seeded RNG into minibatches) and a
//! [`TrainStep`] implementation (one optimizer step per batch, plus
//! validation/snapshot hooks). The pipeline owns everything else: the epoch
//! loop, loss averaging, early stopping, report bookkeeping and the
//! per-stage timing breakdown.
//!
//! # Background sampling
//!
//! [`train`] can run the sampling recipe on a worker thread, double-buffered
//! against the compute stage (see `mhg_sampling::run_prefetched`): while the
//! main thread trains on epoch `e`, the worker generates the batches of
//! epoch `e + 1`. Each epoch's sampler RNG is derived deterministically from
//! a base seed and the epoch index ([`epoch_seed`]), so the produced batches
//! are bit-identical whether sampling runs inline or in the background —
//! the switch is purely a throughput knob.
//!
//! # Crash safety
//!
//! With [`TrainOptions::checkpoint_dir`] set, the pipeline persists
//! versioned, checksummed, atomically-written snapshots (via `mhg-ckpt`) of
//! everything a run owns — model parameters, optimizer moments, the RNG
//! stream, the epoch cursor, early-stopping state — at the configured
//! cadence and at run end. [`TrainOptions::resume`] restores the latest
//! snapshot; a killed-and-resumed run is bit-identical to an uninterrupted
//! one. Independently, the loop recovers from a panicking background
//! sampler (inline fallback), non-finite losses (rollback to the last good
//! state) and transient checkpoint IO errors (bounded retry) — all
//! deterministically, exercised by the `mhg-faults` injection harness.
//!
//! This crate is the single owner of training control flow: the `epoch-loop`
//! rule of `mhg-lint` flags `for epoch in` loops anywhere outside it.

mod error;
mod pipeline;
mod recipes;
mod report;

pub use error::TrainError;
pub use pipeline::{epoch_seed, train, BatchLoss, TrainOptions, TrainStep};
pub use recipes::{edge_batches, pair_batches, EdgeBatch, PairExample};
pub use report::{
    pair_budget, EarlyStopper, RecoveryCounters, StopDecision, TimingBreakdown, TrainReport,
};
