//! Training-run summaries, early stopping and shared budgets.

/// Per-stage wall-clock totals of a training run, in milliseconds.
///
/// `sample_ms` counts the time spent *producing* batches, wherever that
/// happened — on the main thread (inline sampling) or on the prefetch
/// worker (background sampling). Under background sampling the sample and
/// compute stages overlap, so the totals can legitimately sum to more than
/// the run's wall-clock time.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimingBreakdown {
    /// Total time in the sampling stage (walks, pair/negative sampling).
    pub sample_ms: f64,
    /// Total time in the step stage (forward/backward/optimizer).
    pub compute_ms: f64,
    /// Total time in the validation stage (inference + metric).
    pub eval_ms: f64,
}

impl TimingBreakdown {
    /// The per-epoch mean breakdown over `epochs` epochs (identity for 0).
    pub fn per_epoch(&self, epochs: usize) -> TimingBreakdown {
        let n = epochs.max(1) as f64;
        TimingBreakdown {
            sample_ms: self.sample_ms / n,
            compute_ms: self.compute_ms / n,
            eval_ms: self.eval_ms / n,
        }
    }
}

/// Summary of a training run, produced uniformly by [`crate::train`]: the
/// pipeline initializes it, updates it every epoch, and finalizes it after
/// the loop — a 0-epoch run still yields a fully consistent report
/// (`epochs_run = 0`, a real `best_val_auc` from the initial parameters).
#[derive(Clone, Copy, Debug, Default)]
pub struct TrainReport {
    /// Epochs actually executed (≤ configured epochs under early stopping).
    pub epochs_run: usize,
    /// Mean loss of the final epoch.
    pub final_loss: f32,
    /// Best validation ROC-AUC observed.
    pub best_val_auc: f64,
    /// Wall-clock totals per pipeline stage.
    pub timing: TimingBreakdown,
}

/// Per-epoch skip-gram pair budget for the *tape-based* walk models (GATNE,
/// HybridGNN): `12 × |E|`, clamped so dense graphs stay tractable on CPU.
///
/// The plain-SGNS baselines (DeepWalk, node2vec, LINE) keep the paper's
/// full 20×10 walk protocol instead: their hand-rolled update is ~50×
/// cheaper per pair, so equal *wall-clock* budgets — the normalisation the
/// paper's single-GPU-hours setting implies — give them proportionally
/// more samples. Capping everyone to this budget was tried and starves the
/// SGNS models into sub-random territory (see DESIGN.md §3.1).
pub fn pair_budget(num_edges: usize) -> usize {
    (12 * num_edges).clamp(512, 60_000)
}

/// Early-stopping state machine over validation ROC-AUC.
#[derive(Clone, Copy, Debug)]
pub struct EarlyStopper {
    best: f64,
    epochs_since_best: usize,
    patience: usize,
}

/// What to do after reporting a validation score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopDecision {
    /// New best — snapshot the model.
    Improved,
    /// No improvement yet; keep training.
    Continue,
    /// Patience exhausted; stop.
    Stop,
}

impl EarlyStopper {
    /// Creates a stopper with the given patience.
    pub fn new(patience: usize) -> Self {
        Self {
            best: f64::NEG_INFINITY,
            epochs_since_best: 0,
            patience,
        }
    }

    /// Reports this epoch's validation metric.
    pub fn update(&mut self, val_metric: f64) -> StopDecision {
        if val_metric > self.best {
            self.best = val_metric;
            self.epochs_since_best = 0;
            StopDecision::Improved
        } else {
            self.epochs_since_best += 1;
            if self.epochs_since_best >= self.patience {
                StopDecision::Stop
            } else {
                StopDecision::Continue
            }
        }
    }

    /// Best metric seen so far.
    pub fn best(&self) -> f64 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_stopper_lifecycle() {
        let mut s = EarlyStopper::new(2);
        assert_eq!(s.update(0.6), StopDecision::Improved);
        assert_eq!(s.update(0.55), StopDecision::Continue);
        assert_eq!(s.update(0.7), StopDecision::Improved);
        assert_eq!(s.update(0.69), StopDecision::Continue);
        assert_eq!(s.update(0.69), StopDecision::Stop);
        assert!((s.best() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn pair_budget_clamps() {
        assert_eq!(pair_budget(0), 512);
        assert_eq!(pair_budget(1_000), 12_000);
        assert_eq!(pair_budget(1_000_000), 60_000);
    }

    #[test]
    fn timing_per_epoch_divides() {
        let t = TimingBreakdown {
            sample_ms: 10.0,
            compute_ms: 20.0,
            eval_ms: 5.0,
        };
        let p = t.per_epoch(5);
        assert!((p.sample_ms - 2.0).abs() < 1e-12);
        assert!((p.compute_ms - 4.0).abs() < 1e-12);
        assert!((p.eval_ms - 1.0).abs() < 1e-12);
    }
}
