//! Training-run summaries, early stopping and shared budgets.

/// Per-stage wall-clock totals of a training run, in milliseconds.
///
/// `sample_ms` counts the time spent *producing* batches, wherever that
/// happened — on the main thread (inline sampling) or on the prefetch
/// worker (background sampling). Under background sampling the sample and
/// compute stages overlap, so the totals can legitimately sum to more than
/// the run's wall-clock time.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimingBreakdown {
    /// Total time in the sampling stage (walks, pair/negative sampling).
    pub sample_ms: f64,
    /// Total time in the step stage (forward/backward/optimizer).
    pub compute_ms: f64,
    /// Total time in the validation stage (inference + metric).
    pub eval_ms: f64,
}

impl TimingBreakdown {
    /// The per-epoch mean breakdown over `epochs` epochs (identity for 0).
    pub fn per_epoch(&self, epochs: usize) -> TimingBreakdown {
        let n = epochs.max(1) as f64;
        TimingBreakdown {
            sample_ms: self.sample_ms / n,
            compute_ms: self.compute_ms / n,
            eval_ms: self.eval_ms / n,
        }
    }
}

/// What the pipeline had to do to keep a run alive.
///
/// Purely diagnostic: all recoveries preserve bit-identical results (the
/// sampler fallback re-produces the same epoch inline; a rollback restores
/// the exact pre-epoch state and the deterministic re-run replays it), so
/// these counters are *not* part of any checkpoint — a resumed process
/// reports only its own recoveries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Times the background sampler died and the run fell back to inline
    /// sampling of the same epochs.
    pub sampler_fallbacks: usize,
    /// Times a non-finite epoch loss was rolled back to the last good state.
    pub nan_rollbacks: usize,
    /// Epoch the run was restored from, if it resumed from a checkpoint.
    pub resumed_from: Option<usize>,
}

/// Summary of a training run, produced uniformly by [`crate::train`]: the
/// pipeline initializes it, updates it every epoch, and finalizes it after
/// the loop — a 0-epoch run still yields a fully consistent report
/// (`epochs_run = 0`, a real `best_val_auc` from the initial parameters).
#[derive(Clone, Copy, Debug, Default)]
pub struct TrainReport {
    /// Epochs actually executed (≤ configured epochs under early stopping).
    pub epochs_run: usize,
    /// Mean loss of the final epoch.
    pub final_loss: f32,
    /// Best validation ROC-AUC observed.
    pub best_val_auc: f64,
    /// Wall-clock totals per pipeline stage.
    pub timing: TimingBreakdown,
    /// Fault-recovery actions taken during this process's run.
    pub recovery: RecoveryCounters,
}

/// Per-epoch skip-gram pair budget for the *tape-based* walk models (GATNE,
/// HybridGNN): `12 × |E|`, clamped so dense graphs stay tractable on CPU.
///
/// The plain-SGNS baselines (DeepWalk, node2vec, LINE) keep the paper's
/// full 20×10 walk protocol instead: their hand-rolled update is ~50×
/// cheaper per pair, so equal *wall-clock* budgets — the normalisation the
/// paper's single-GPU-hours setting implies — give them proportionally
/// more samples. Capping everyone to this budget was tried and starves the
/// SGNS models into sub-random territory (see DESIGN.md §3.1).
pub fn pair_budget(num_edges: usize) -> usize {
    (12 * num_edges).clamp(512, 60_000)
}

/// Early-stopping state machine over validation ROC-AUC.
#[derive(Clone, Copy, Debug)]
pub struct EarlyStopper {
    best: f64,
    epochs_since_best: usize,
    patience: usize,
}

/// What to do after reporting a validation score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopDecision {
    /// New best — snapshot the model.
    Improved,
    /// No improvement yet; keep training.
    Continue,
    /// Patience exhausted; stop.
    Stop,
}

impl EarlyStopper {
    /// Creates a stopper with the given patience.
    pub fn new(patience: usize) -> Self {
        Self {
            best: f64::NEG_INFINITY,
            epochs_since_best: 0,
            patience,
        }
    }

    /// Reports this epoch's validation metric.
    ///
    /// A NaN metric is never promoted as the best (the comparison below is
    /// false for NaN on either side); it counts as a non-improving epoch
    /// against the patience budget, like any other bad validation score.
    pub fn update(&mut self, val_metric: f64) -> StopDecision {
        if val_metric > self.best {
            self.best = val_metric;
            self.epochs_since_best = 0;
            StopDecision::Improved
        } else {
            self.epochs_since_best += 1;
            if self.epochs_since_best >= self.patience {
                StopDecision::Stop
            } else {
                StopDecision::Continue
            }
        }
    }

    /// Best metric seen so far.
    pub fn best(&self) -> f64 {
        self.best
    }

    /// Serialises the stopper into `dict` under `prefix` (bit-exact: the
    /// best metric is stored as raw IEEE-754 bits, so −∞ and any resumed
    /// comparison behave exactly as in the original process).
    pub fn export_state(&self, prefix: &str, dict: &mut mhg_ckpt::StateDict) {
        dict.put_u64(format!("{prefix}/best"), self.best.to_bits());
        dict.put_u64(format!("{prefix}/since"), self.epochs_since_best as u64);
        dict.put_u64(format!("{prefix}/patience"), self.patience as u64);
    }

    /// Rebuilds a stopper from state exported by [`EarlyStopper::export_state`].
    pub fn import_state(
        prefix: &str,
        dict: &mhg_ckpt::StateDict,
    ) -> Result<Self, mhg_ckpt::CkptError> {
        Ok(Self {
            best: f64::from_bits(dict.u64(&format!("{prefix}/best"))?),
            epochs_since_best: dict.u64(&format!("{prefix}/since"))? as usize,
            patience: dict.u64(&format!("{prefix}/patience"))? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_stopper_lifecycle() {
        let mut s = EarlyStopper::new(2);
        assert_eq!(s.update(0.6), StopDecision::Improved);
        assert_eq!(s.update(0.55), StopDecision::Continue);
        assert_eq!(s.update(0.7), StopDecision::Improved);
        assert_eq!(s.update(0.69), StopDecision::Continue);
        assert_eq!(s.update(0.69), StopDecision::Stop);
        assert!((s.best() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_patience_stops_on_first_plateau() {
        let mut s = EarlyStopper::new(0);
        // Improvements still register even with no patience budget…
        assert_eq!(s.update(0.5), StopDecision::Improved);
        assert_eq!(s.update(0.6), StopDecision::Improved);
        // …but the first non-improving epoch stops the run outright.
        assert_eq!(s.update(0.6), StopDecision::Stop);
        assert!((s.best() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn nan_metric_is_never_promoted_as_best() {
        let mut s = EarlyStopper::new(3);
        assert_eq!(s.update(f64::NAN), StopDecision::Continue);
        assert_eq!(s.best(), f64::NEG_INFINITY, "NaN must not replace −∞");
        assert_eq!(s.update(0.4), StopDecision::Improved);
        // NaN after a real best: counts against patience, best unchanged.
        assert_eq!(s.update(f64::NAN), StopDecision::Continue);
        assert_eq!(s.update(f64::NAN), StopDecision::Continue);
        assert_eq!(s.update(f64::NAN), StopDecision::Stop);
        assert!((s.best() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn infinite_metric_is_handled_without_panic() {
        let mut s = EarlyStopper::new(2);
        assert_eq!(s.update(f64::INFINITY), StopDecision::Improved);
        // Nothing beats +∞, so the run plateaus to a stop.
        assert_eq!(s.update(1.0), StopDecision::Continue);
        assert_eq!(s.update(f64::INFINITY), StopDecision::Stop);
        assert_eq!(s.best(), f64::INFINITY);
    }

    #[test]
    fn restored_stopper_continues_the_patience_budget() {
        let mut s = EarlyStopper::new(3);
        s.update(0.7);
        s.update(0.6); // one epoch into the patience budget
        let mut dict = mhg_ckpt::StateDict::new();
        s.export_state("loop/stopper", &mut dict);
        let mut restored = EarlyStopper::import_state("loop/stopper", &dict).unwrap();
        assert!((restored.best() - 0.7).abs() < 1e-12);
        // Two more plateau epochs exhaust the original 3-epoch budget.
        assert_eq!(restored.update(0.6), StopDecision::Continue);
        assert_eq!(restored.update(0.6), StopDecision::Stop);
    }

    #[test]
    fn stopper_roundtrip_preserves_neg_infinity_best() {
        let s = EarlyStopper::new(5);
        let mut dict = mhg_ckpt::StateDict::new();
        s.export_state("st", &mut dict);
        let restored = EarlyStopper::import_state("st", &dict).unwrap();
        assert_eq!(restored.best(), f64::NEG_INFINITY);
    }

    #[test]
    fn pair_budget_clamps() {
        assert_eq!(pair_budget(0), 512);
        assert_eq!(pair_budget(1_000), 12_000);
        assert_eq!(pair_budget(1_000_000), 60_000);
    }

    #[test]
    fn timing_per_epoch_divides() {
        let t = TimingBreakdown {
            sample_ms: 10.0,
            compute_ms: 20.0,
            eval_ms: 5.0,
        };
        let p = t.per_epoch(5);
        assert!((p.sample_ms - 2.0).abs() < 1e-12);
        assert!((p.compute_ms - 4.0).abs() < 1e-12);
        assert!((p.eval_ms - 1.0).abs() < 1e-12);
    }
}
