//! Metrics-verified timing tests for the training pipeline (DESIGN.md
//! §2.12): under a deterministic [`Obs::deterministic`] clock, the
//! per-epoch `TimingBreakdown` and the `train/*` span histograms are exact,
//! identical between inline and background sampling, and bounded by an
//! externally measured run time.
//!
//! The fake clock advances one fixed step per reading on each thread, so a
//! leaf span (begin + stop, no nested readings) always measures exactly one
//! step regardless of which thread runs it — the arithmetic below is exact,
//! not approximate.

use mhg_ckpt::{CkptError, StateDict};
use mhg_obs::{MetricValue, Obs};
use mhg_sampling::SampleError;
use mhg_train::{train, BatchLoss, TrainOptions, TrainStep};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fake-clock step: 1ms per reading, so span milliseconds are integers.
const STEP_NS: u64 = 1_000_000;
/// Batches per epoch produced by [`recipe`].
const BATCHES: u64 = 2;

/// Minimal model whose validation score improves every epoch (no early
/// stopping interferes with the epoch count).
struct TickStep {
    evals: usize,
    fitted: bool,
}

impl TrainStep for TickStep {
    type Batch = Vec<u64>;

    fn step(&mut self, batch: Vec<u64>, _rng: &mut StdRng) -> BatchLoss {
        BatchLoss {
            loss_sum: batch.len() as f64,
            denom: batch.len(),
        }
    }

    fn eval(&mut self, _rng: &mut StdRng) -> f64 {
        self.evals += 1;
        self.evals as f64
    }

    fn promote(&mut self) {
        self.fitted = true;
    }

    fn is_fitted(&self) -> bool {
        self.fitted
    }

    fn export_state(&self, dict: &mut StateDict) {
        dict.put_u64("model/evals", self.evals as u64);
        dict.put_u64("model/fitted", u64::from(self.fitted));
    }

    fn import_state(&mut self, dict: &StateDict) -> Result<(), CkptError> {
        self.evals = dict.u64("model/evals")? as usize;
        self.fitted = dict.u64("model/fitted")? != 0;
        Ok(())
    }
}

fn recipe(epoch: usize, rng: &mut StdRng) -> Result<Vec<Vec<u64>>, SampleError> {
    // Two batches per epoch; contents depend on the epoch RNG as usual.
    Ok(vec![
        vec![epoch as u64, rng.gen()],
        vec![rng.gen(), rng.gen()],
    ])
}

fn run(background: bool, epochs: usize) -> (Obs, mhg_train::TrainReport) {
    let obs = Obs::deterministic(STEP_NS);
    let opts = TrainOptions {
        epochs,
        patience: 2,
        background,
        threads: 0,
        checkpoint_every: 0,
        checkpoint_dir: None,
        resume: false,
        obs: obs.clone(),
    };
    let mut step = TickStep {
        evals: 0,
        fitted: false,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let report = train(&opts, recipe, &mut step, &mut rng).expect("train");
    (obs, report)
}

fn histogram(obs: &Obs, name: &str) -> mhg_obs::HistogramSnapshot {
    match obs
        .metrics()
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
    {
        Some(MetricValue::Histogram(h)) => h,
        other => panic!("expected histogram {name}, got {other:?}"),
    }
}

/// Under the fake clock each span measures an exact number of steps:
/// the sample stage is one leaf measurement (1ms), the compute span nests
/// one leaf span per batch (2·B + 1 ms), and eval is a leaf span (1ms).
#[test]
fn timing_breakdown_is_exact_under_fake_clock() {
    let epochs = 3usize;
    let (obs, report) = run(false, epochs);
    let e = epochs as f64;
    assert_eq!(report.epochs_run, epochs);
    assert_eq!(report.timing.sample_ms, e);
    assert_eq!(report.timing.compute_ms, (2.0 * BATCHES as f64 + 1.0) * e);
    assert_eq!(report.timing.eval_ms, e);

    let sample = histogram(&obs, "train/sample");
    assert_eq!(
        (sample.count, sample.sum),
        (epochs as u64, epochs as u64 * STEP_NS)
    );
    let compute = histogram(&obs, "train/compute");
    assert_eq!(
        (compute.count, compute.sum),
        (epochs as u64, epochs as u64 * (2 * BATCHES + 1) * STEP_NS)
    );
    let eval = histogram(&obs, "train/eval");
    assert_eq!(
        (eval.count, eval.sum),
        (epochs as u64, epochs as u64 * STEP_NS)
    );
    let step = histogram(&obs, "train/step");
    assert_eq!(
        (step.count, step.sum),
        (epochs as u64 * BATCHES, epochs as u64 * BATCHES * STEP_NS)
    );
}

/// The sample + compute + eval stage times must fit inside an external
/// measurement taken around the whole run on the same clock — the stages
/// are sub-intervals of the run, on any clock.
#[test]
fn stage_spans_sum_within_external_run_measurement() {
    let obs = Obs::deterministic(STEP_NS);
    let opts = TrainOptions {
        epochs: 4,
        patience: 2,
        background: false,
        threads: 0,
        checkpoint_every: 0,
        checkpoint_dir: None,
        resume: false,
        obs: obs.clone(),
    };
    let mut step = TickStep {
        evals: 0,
        fitted: false,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let t0 = obs.now_ns();
    let report = train(&opts, recipe, &mut step, &mut rng).expect("train");
    let total_ms = (obs.now_ns() - t0) as f64 / 1e6;
    let stages = report.timing.sample_ms + report.timing.compute_ms + report.timing.eval_ms;
    assert!(
        stages <= total_ms,
        "stage sum {stages}ms exceeds run total {total_ms}ms"
    );
}

/// Background prefetch must not change a single recorded byte: the sample
/// stage is measured on whichever thread runs it, and the fake clock's
/// per-thread step counter makes that measurement thread-invariant.
#[test]
fn metrics_are_identical_inline_and_background() {
    let (inline_obs, inline_report) = run(false, 3);
    let (bg_obs, bg_report) = run(true, 3);
    assert_eq!(inline_report.epochs_run, bg_report.epochs_run);
    assert_eq!(inline_report.timing.sample_ms, bg_report.timing.sample_ms);
    assert_eq!(inline_report.timing.compute_ms, bg_report.timing.compute_ms);
    assert_eq!(inline_report.timing.eval_ms, bg_report.timing.eval_ms);
    assert_eq!(
        inline_obs.render_jsonl(),
        bg_obs.render_jsonl(),
        "metrics.jsonl must be byte-identical between inline and background sampling"
    );
}
