//! The typed error surface of checkpoint encoding, decoding and IO.

use std::io;

/// Everything that can go wrong while saving or loading a checkpoint.
///
/// Decoding never panics and never trusts length fields: corrupt, truncated
/// or version-mismatched inputs all land in one of these variants.
#[derive(Debug)]
pub enum CkptError {
    /// The buffer does not start with the checkpoint magic bytes.
    BadMagic,
    /// The checkpoint was written by an unsupported format version.
    UnsupportedVersion(u16),
    /// The buffer ended prematurely or a length field is inconsistent.
    Truncated,
    /// The payload does not match its checksum (bit rot / partial write).
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// An entry name was not valid UTF-8.
    BadUtf8,
    /// An entry carried an unknown value-type tag.
    BadTag(u8),
    /// A field the loader requires is absent from the dictionary.
    MissingField(String),
    /// A field exists but holds a different value type than required.
    WrongType(String),
    /// A tensor field's shape does not match the destination parameter.
    ShapeMismatch(String),
    /// The underlying filesystem operation failed.
    Io(io::Error),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CkptError::Truncated => write!(f, "checkpoint truncated or inconsistent"),
            CkptError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            CkptError::BadUtf8 => write!(f, "invalid UTF-8 in checkpoint entry name"),
            CkptError::BadTag(t) => write!(f, "unknown checkpoint value tag {t}"),
            CkptError::MissingField(name) => write!(f, "checkpoint field `{name}` is missing"),
            CkptError::WrongType(name) => {
                write!(f, "checkpoint field `{name}` has the wrong type")
            }
            CkptError::ShapeMismatch(what) => write!(f, "checkpoint shape mismatch: {what}"),
            CkptError::Io(e) => write!(f, "checkpoint IO error: {e}"),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}
