//! The checkpoint container: a named, typed state dictionary with a
//! versioned, checksummed binary encoding.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "MHGC" | version u16 | entry count u32
//! entries: name_len u16, name bytes, tag u8, payload
//! trailer: FNV-1a 64 checksum of everything before it, u64
//! ```
//!
//! Entries are stored in name order (the dictionary is a `BTreeMap`), so
//! encoding is byte-deterministic: the same state always produces the same
//! file. Decoding bounds every allocation by the bytes actually remaining,
//! so corrupt length fields can never trigger huge allocations.

use std::collections::BTreeMap;

use mhg_tensor::Tensor;

use crate::error::CkptError;

const MAGIC: &[u8; 4] = b"MHGC";
const VERSION: u16 = 1;

const TAG_TENSOR: u8 = 1;
const TAG_U64: u8 = 2;
const TAG_F64: u8 = 3;
const TAG_U64S: u8 = 4;
const TAG_BYTES: u8 = 5;

/// One value in a [`StateDict`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A dense `f32` matrix (parameters, optimizer moments).
    Tensor(Tensor),
    /// An unsigned scalar (counters, cursors, bit-cast floats).
    U64(u64),
    /// A float scalar (metrics, timings) — stored bit-exactly.
    F64(f64),
    /// An unsigned array (RNG state, per-row step counts).
    U64s(Vec<u64>),
    /// An opaque payload (model-specific sub-encodings).
    Bytes(Vec<u8>),
}

/// A named, typed snapshot of training state.
///
/// Keys are flat, slash-separated paths (`"loop/rng"`, `"model/emb"`); the
/// map is ordered, so iteration and encoding are deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StateDict {
    entries: BTreeMap<String, Value>,
}

impl StateDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces an entry.
    pub fn put(&mut self, name: impl Into<String>, value: Value) {
        self.entries.insert(name.into(), value);
    }

    /// Stores a tensor.
    pub fn put_tensor(&mut self, name: impl Into<String>, t: Tensor) {
        self.put(name, Value::Tensor(t));
    }

    /// Stores a `u64` scalar.
    pub fn put_u64(&mut self, name: impl Into<String>, v: u64) {
        self.put(name, Value::U64(v));
    }

    /// Stores an `f64` scalar (bit-exact).
    pub fn put_f64(&mut self, name: impl Into<String>, v: f64) {
        self.put(name, Value::F64(v));
    }

    /// Stores a `u64` array.
    pub fn put_u64s(&mut self, name: impl Into<String>, v: Vec<u64>) {
        self.put(name, Value::U64s(v));
    }

    /// Stores an opaque byte payload.
    pub fn put_bytes(&mut self, name: impl Into<String>, v: Vec<u8>) {
        self.put(name, Value::Bytes(v));
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.get(name)
    }

    /// Whether an entry named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    fn require(&self, name: &str) -> Result<&Value, CkptError> {
        self.entries
            .get(name)
            .ok_or_else(|| CkptError::MissingField(name.to_string()))
    }

    /// The tensor stored under `name`.
    pub fn tensor(&self, name: &str) -> Result<&Tensor, CkptError> {
        match self.require(name)? {
            Value::Tensor(t) => Ok(t),
            _ => Err(CkptError::WrongType(name.to_string())),
        }
    }

    /// The `u64` stored under `name`.
    pub fn u64(&self, name: &str) -> Result<u64, CkptError> {
        match self.require(name)? {
            Value::U64(v) => Ok(*v),
            _ => Err(CkptError::WrongType(name.to_string())),
        }
    }

    /// The `f64` stored under `name`.
    pub fn f64(&self, name: &str) -> Result<f64, CkptError> {
        match self.require(name)? {
            Value::F64(v) => Ok(*v),
            _ => Err(CkptError::WrongType(name.to_string())),
        }
    }

    /// The `u64` array stored under `name`.
    pub fn u64s(&self, name: &str) -> Result<&[u64], CkptError> {
        match self.require(name)? {
            Value::U64s(v) => Ok(v),
            _ => Err(CkptError::WrongType(name.to_string())),
        }
    }

    /// The byte payload stored under `name`.
    pub fn bytes(&self, name: &str) -> Result<&[u8], CkptError> {
        match self.require(name)? {
            Value::Bytes(v) => Ok(v),
            _ => Err(CkptError::WrongType(name.to_string())),
        }
    }
}

/// FNV-1a 64 over a byte stream (the same hash the golden tests use).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Checked narrowing of a size to a `u32` wire field: a count that does not
/// fit would silently wrap and corrupt the archive, so fail loudly instead.
fn size_u32(n: usize, what: &str) -> u32 {
    assert!(
        u32::try_from(n).is_ok(),
        "encode: {what} {n} exceeds the u32 wire format"
    );
    n as u32
}

/// Checked narrowing of a size to a `u16` wire field.
fn size_u16(n: usize, what: &str) -> u16 {
    assert!(
        u16::try_from(n).is_ok(),
        "encode: {what} {n} exceeds the u16 wire format"
    );
    n as u16
}

/// Serialises a dictionary to its versioned, checksummed binary form.
pub fn encode(dict: &StateDict) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 16 * dict.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&size_u32(dict.len(), "entry count").to_le_bytes());
    for (name, value) in dict.iter() {
        out.extend_from_slice(&size_u16(name.len(), "name length").to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        match value {
            Value::Tensor(t) => {
                out.push(TAG_TENSOR);
                out.extend_from_slice(&size_u32(t.rows(), "tensor rows").to_le_bytes());
                out.extend_from_slice(&size_u32(t.cols(), "tensor cols").to_le_bytes());
                for v in t.as_slice() {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Value::U64(v) => {
                out.push(TAG_U64);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::F64(v) => {
                out.push(TAG_F64);
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Value::U64s(vs) => {
                out.push(TAG_U64S);
                out.extend_from_slice(&size_u32(vs.len(), "u64 array length").to_le_bytes());
                for v in vs {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Value::Bytes(bs) => {
                out.push(TAG_BYTES);
                out.extend_from_slice(&size_u32(bs.len(), "byte payload length").to_le_bytes());
                out.extend_from_slice(bs);
            }
        }
    }
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Deserialises a dictionary, verifying magic, version and checksum.
pub fn decode(buf: &[u8]) -> Result<StateDict, CkptError> {
    // Trailer first: the checksum covers everything before it.
    if buf.len() < MAGIC.len() + 2 + 4 + 8 {
        return Err(CkptError::Truncated);
    }
    let (payload, trailer) = buf.split_at(buf.len() - 8);
    if &payload[..4] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = u16::from_le_bytes([payload[4], payload[5]]);
    if version != VERSION {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let stored = u64::from_le_bytes(trailer.try_into().map_err(|_| CkptError::Truncated)?);
    let computed = fnv1a64(payload);
    if stored != computed {
        return Err(CkptError::ChecksumMismatch { stored, computed });
    }

    let mut cur = &payload[6..];
    let count = read_u32(&mut cur)? as usize;
    let mut dict = StateDict::new();
    for _ in 0..count {
        let name_len = read_u16(&mut cur)? as usize;
        let name_bytes = take(&mut cur, name_len)?;
        let name = String::from_utf8(name_bytes.to_vec()).map_err(|_| CkptError::BadUtf8)?;
        let tag = read_u8(&mut cur)?;
        let value = match tag {
            TAG_TENSOR => {
                let rows = read_u32(&mut cur)? as usize;
                let cols = read_u32(&mut cur)? as usize;
                let n = rows.checked_mul(cols).ok_or(CkptError::Truncated)?;
                let raw = take(&mut cur, n.checked_mul(4).ok_or(CkptError::Truncated)?)?;
                let data: Vec<f32> = raw
                    .chunks_exact(4)
                    .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
                    .collect();
                Value::Tensor(Tensor::from_vec(rows, cols, data))
            }
            TAG_U64 => Value::U64(u64::from_le_bytes(
                take(&mut cur, 8)?
                    .try_into()
                    .map_err(|_| CkptError::Truncated)?,
            )),
            TAG_F64 => Value::F64(f64::from_bits(u64::from_le_bytes(
                take(&mut cur, 8)?
                    .try_into()
                    .map_err(|_| CkptError::Truncated)?,
            ))),
            TAG_U64S => {
                let n = read_u32(&mut cur)? as usize;
                let raw = take(&mut cur, n.checked_mul(8).ok_or(CkptError::Truncated)?)?;
                let vs: Vec<u64> = raw
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                    .collect();
                Value::U64s(vs)
            }
            TAG_BYTES => {
                let n = read_u32(&mut cur)? as usize;
                Value::Bytes(take(&mut cur, n)?.to_vec())
            }
            other => return Err(CkptError::BadTag(other)),
        };
        dict.put(name, value);
    }
    if !cur.is_empty() {
        return Err(CkptError::Truncated);
    }
    Ok(dict)
}

/// Splits off the next `n` bytes, erroring instead of panicking when the
/// buffer is short — this is what bounds every allocation above: a hostile
/// length field can never request more than the bytes actually present.
fn take<'a>(cur: &mut &'a [u8], n: usize) -> Result<&'a [u8], CkptError> {
    if cur.len() < n {
        return Err(CkptError::Truncated);
    }
    let (head, tail) = cur.split_at(n);
    *cur = tail;
    Ok(head)
}

fn read_u8(cur: &mut &[u8]) -> Result<u8, CkptError> {
    Ok(take(cur, 1)?[0])
}

fn read_u16(cur: &mut &[u8]) -> Result<u16, CkptError> {
    let b = take(cur, 2)?;
    Ok(u16::from_le_bytes([b[0], b[1]]))
}

fn read_u32(cur: &mut &[u8]) -> Result<u32, CkptError> {
    let b = take(cur, 4)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dict() -> StateDict {
        let mut d = StateDict::new();
        d.put_tensor(
            "model/emb",
            Tensor::from_vec(2, 3, vec![1.0, -2.5, 0.0, 3.5, f32::MIN_POSITIVE, 7.0]),
        );
        d.put_u64("loop/epoch", 42);
        d.put_f64("loop/best", -0.123456789);
        d.put_u64s("loop/rng", vec![1, u64::MAX, 3, 4]);
        d.put_bytes("model/blob", vec![0xde, 0xad, 0xbe, 0xef]);
        d
    }

    #[test]
    fn roundtrip_is_exact() {
        let d = sample_dict();
        let bytes = encode(&d);
        let d2 = decode(&bytes).expect("decode");
        assert_eq!(d, d2);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode(&sample_dict()), encode(&sample_dict()));
    }

    #[test]
    fn typed_accessors_check_presence_and_type() {
        let d = sample_dict();
        assert_eq!(d.u64("loop/epoch").unwrap(), 42);
        assert!(matches!(
            d.u64("loop/absent"),
            Err(CkptError::MissingField(_))
        ));
        assert!(matches!(d.u64("loop/best"), Err(CkptError::WrongType(_))));
        assert_eq!(d.u64s("loop/rng").unwrap().len(), 4);
        assert_eq!(d.bytes("model/blob").unwrap(), &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = encode(&sample_dict());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(CkptError::BadMagic)));

        let mut bytes = encode(&sample_dict());
        bytes[4] = 0x63;
        // Re-stamp the checksum so the version check is what fires.
        let n = bytes.len();
        let sum = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(CkptError::UnsupportedVersion(0x63))
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode(&sample_dict());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    decode(&corrupt).is_err(),
                    "flip at byte {byte} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = encode(&sample_dict());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn hostile_length_fields_do_not_allocate() {
        // A tensor claiming u32::MAX × u32::MAX elements in a tiny buffer
        // must fail on the remaining-byte check, not attempt the allocation.
        let mut d = StateDict::new();
        d.put_tensor("t", Tensor::from_vec(1, 1, vec![1.0]));
        let mut bytes = encode(&d);
        // Entry layout after header(10): name_len(2) "t"(1) tag(1) rows(4) cols(4).
        let rows_at = 10 + 2 + 1 + 1;
        bytes[rows_at..rows_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        bytes[rows_at + 4..rows_at + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let n = bytes.len();
        let sum = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(CkptError::Truncated)));
    }
}
