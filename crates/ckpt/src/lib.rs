//! Crash-safe checkpointing for the training pipeline.
//!
//! Three layers, each usable on its own:
//!
//! * [`StateDict`] + [`encode`] / [`decode`] — a named, typed state
//!   dictionary with a versioned, checksummed, byte-deterministic binary
//!   codec. Corrupt input (bit flips, truncation, hostile length fields,
//!   version skew) always yields a typed [`CkptError`], never a panic or an
//!   unbounded allocation.
//! * [`atomic_write`] / [`atomic_write_retry`] / [`read_file`] — durable
//!   file IO: write-tmp + fsync + rename, with a bounded retry whose
//!   decisions depend only on the attempt count (deterministic under fault
//!   injection; see `mhg-faults`).
//! * [`Checkpointer`] — epoch-indexed checkpoint files in a directory,
//!   with newest-checkpoint discovery for resume.
//!
//! The `mhg-train` pipeline composes these into `train(k) → crash → resume`
//! runs that are bit-identical to straight-through training; see
//! DESIGN.md §2.11.

mod atomic;
mod checkpoint;
mod codec;
mod error;

pub use atomic::{
    atomic_write, atomic_write_retry, read_file, write_retries, DEFAULT_WRITE_ATTEMPTS,
};
pub use checkpoint::Checkpointer;
pub use codec::{decode, encode, fnv1a64, StateDict, Value};
pub use error::CkptError;

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared serialization of tests that install process-global fault
    //! plans or write through the fault-injectable IO layer.

    use std::sync::{Mutex, MutexGuard};

    pub fn faults_guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }
}
