//! Atomic, fault-injectable file IO.
//!
//! Every durable write in the workspace goes through [`atomic_write`]
//! (enforced by the `atomic-write` lint rule): the payload lands in a
//! `*.tmp` sibling, is fsynced, and is renamed over the destination. A
//! crash at any point leaves either the old file or the new file — never a
//! half-written one.
//!
//! Transient failures are handled by [`atomic_write_retry`] with a bounded,
//! *deterministic* retry policy: the retry decision depends only on the
//! attempt count, never on wall-clock time, so fault-injected runs replay
//! identically. The inter-attempt backoff is a bounded busy-yield — a side
//! effect only, invisible to the decision path.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use mhg_faults::FaultSite;

/// Default attempt budget for [`atomic_write_retry`].
pub const DEFAULT_WRITE_ATTEMPTS: u32 = 3;

/// Process-wide count of transient write failures absorbed by
/// [`atomic_write_retry`]. Read by the observability layer's run summary.
static WRITE_RETRIES: AtomicU64 = AtomicU64::new(0);

/// Total transient write failures absorbed (retried) by
/// [`atomic_write_retry`] since process start. Failures that exhausted the
/// retry budget are surfaced as errors, not counted here.
pub fn write_retries() -> u64 {
    WRITE_RETRIES.load(Ordering::Relaxed)
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: tmp file + fsync + rename.
///
/// Subject to [`FaultSite::IoWrite`] injection (one occurrence per call).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    mhg_faults::io_error_if_scheduled(FaultSite::IoWrite, &path.display().to_string())?;
    let tmp = tmp_sibling(path);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Make the rename itself durable where the platform allows syncing a
    // directory handle; failure here is not fatal to atomicity.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// [`atomic_write`] with up to `attempts` tries. Transient errors (like
/// injected [`FaultSite::IoWrite`] faults) are counted in [`write_retries`]
/// and retried; the last error is returned once the budget is exhausted.
pub fn atomic_write_retry(path: impl AsRef<Path>, bytes: &[u8], attempts: u32) -> io::Result<()> {
    let path = path.as_ref();
    let attempts = attempts.max(1);
    let mut attempt = 0;
    loop {
        attempt += 1;
        match atomic_write(path, bytes) {
            Ok(()) => return Ok(()),
            Err(_) if attempt < attempts => {
                WRITE_RETRIES.fetch_add(1, Ordering::Relaxed);
                backoff(attempt);
            }
            Err(e) => return Err(e),
        }
    }
}

/// Deterministically bounded backoff: yields the scheduler a number of
/// times that grows with the attempt index. No clocks, no randomness.
fn backoff(attempt: u32) {
    for _ in 0..(1u32 << attempt.min(8)) {
        std::thread::yield_now();
    }
}

/// Reads a file fully. Subject to [`FaultSite::IoRead`] injection.
pub fn read_file(path: impl AsRef<Path>) -> io::Result<Vec<u8>> {
    let path = path.as_ref();
    mhg_faults::io_error_if_scheduled(FaultSite::IoRead, &path.display().to_string())?;
    fs::read(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::faults_guard;
    use mhg_faults::FaultPlan;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mhg_ckpt_atomic").join(name);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_read_roundtrips() {
        let _g = faults_guard();
        mhg_faults::clear();
        let path = tmp_dir("roundtrip").join("f.bin");
        atomic_write(&path, b"payload").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"payload");
        assert!(
            !tmp_sibling(&path).exists(),
            "tmp sibling must not survive a successful write"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn overwrite_is_atomic_replacement() {
        let _g = faults_guard();
        mhg_faults::clear();
        let path = tmp_dir("overwrite").join("f.bin");
        atomic_write(&path, b"old").unwrap();
        atomic_write(&path, b"new").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"new");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn retry_survives_injected_transient_faults() {
        let _g = faults_guard();
        let path = tmp_dir("retry").join("f.bin");
        fs::remove_file(&path).ok();
        // Fail the first two attempts; the third succeeds.
        mhg_faults::install(
            FaultPlan::new()
                .inject(FaultSite::IoWrite, 1)
                .inject(FaultSite::IoWrite, 2),
        );
        let retries_before = write_retries();
        atomic_write_retry(&path, b"survived", 3).unwrap();
        mhg_faults::clear();
        assert_eq!(
            write_retries() - retries_before,
            2,
            "both absorbed faults must be counted"
        );
        assert_eq!(read_file(&path).unwrap(), b"survived");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn retry_budget_is_bounded() {
        let _g = faults_guard();
        let path = tmp_dir("budget").join("f.bin");
        fs::remove_file(&path).ok();
        mhg_faults::install(
            FaultPlan::new()
                .inject(FaultSite::IoWrite, 1)
                .inject(FaultSite::IoWrite, 2)
                .inject(FaultSite::IoWrite, 3),
        );
        let err = atomic_write_retry(&path, b"doomed", 3).unwrap_err();
        mhg_faults::clear();
        assert!(err.to_string().contains("injected fault"));
        assert!(!path.exists(), "no partial file after exhausted retries");
    }
}
