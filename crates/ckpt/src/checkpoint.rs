//! Epoch-indexed checkpoint management on top of the codec and atomic IO.

use std::fs;
use std::path::{Path, PathBuf};

use crate::atomic::{atomic_write_retry, read_file, DEFAULT_WRITE_ATTEMPTS};
use crate::codec::{decode, encode, StateDict};
use crate::error::CkptError;

const CKPT_PREFIX: &str = "ckpt-";
const CKPT_SUFFIX: &str = ".mhgc";

/// Default retention: how many newest checkpoints a save leaves behind.
pub const DEFAULT_RETENTION: usize = 3;

/// Writes and discovers epoch checkpoints inside one directory.
///
/// Files are named `ckpt-<epoch>.mhgc`. Writes are atomic with a bounded
/// deterministic retry, so a crash (or an injected IO fault) never leaves a
/// half-written checkpoint under the final name.
///
/// Each successful save also garbage-collects old checkpoints down to the
/// retention budget (default [`DEFAULT_RETENTION`], `0` = keep everything).
/// The GC runs strictly *after* the new checkpoint is durably in place and
/// always keeps the newest file, so a crash at any point leaves at least
/// one loadable checkpoint — `last_good` is never removed.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    dir: PathBuf,
    attempts: u32,
    retention: usize,
}

impl Checkpointer {
    /// Opens (creating if needed) the checkpoint directory.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            attempts: DEFAULT_WRITE_ATTEMPTS,
            retention: DEFAULT_RETENTION,
        })
    }

    /// Overrides the per-save write-attempt budget.
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts.max(1);
        self
    }

    /// Overrides the retention budget: keep the `keep` newest checkpoints
    /// after every save (`0` disables GC and keeps everything).
    pub fn with_retention(mut self, keep: usize) -> Self {
        self.retention = keep;
        self
    }

    /// The directory this checkpointer manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path of epoch `epoch`'s checkpoint.
    pub fn path_for(&self, epoch: usize) -> PathBuf {
        self.dir
            .join(format!("{CKPT_PREFIX}{epoch:06}{CKPT_SUFFIX}"))
    }

    /// Atomically writes `dict` as the checkpoint for `epoch`, then
    /// garbage-collects old checkpoints down to the retention budget.
    pub fn save(&self, epoch: usize, dict: &StateDict) -> Result<(), CkptError> {
        let bytes = encode(dict);
        atomic_write_retry(self.path_for(epoch), &bytes, self.attempts)?;
        self.collect_garbage()
    }

    /// Deletes the oldest checkpoints beyond the retention budget. The
    /// newest checkpoint is always kept regardless of the budget; removal
    /// failures of individual files are typed errors, but the checkpoint
    /// just saved is already durable by the time GC runs.
    fn collect_garbage(&self) -> Result<(), CkptError> {
        if self.retention == 0 {
            return Ok(());
        }
        let epochs = self.epochs()?;
        let keep = self.retention.max(1);
        if epochs.len() <= keep {
            return Ok(());
        }
        for &old in &epochs[..epochs.len() - keep] {
            fs::remove_file(self.path_for(old))?;
        }
        Ok(())
    }

    /// Loads and verifies the checkpoint for `epoch`.
    pub fn load_epoch(&self, epoch: usize) -> Result<StateDict, CkptError> {
        decode(&read_file(self.path_for(epoch))?)
    }

    /// The epochs that have a checkpoint file, sorted ascending.
    pub fn epochs(&self) -> Result<Vec<usize>, CkptError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(stem) = name
                .strip_prefix(CKPT_PREFIX)
                .and_then(|s| s.strip_suffix(CKPT_SUFFIX))
            else {
                continue;
            };
            if let Ok(epoch) = stem.parse::<usize>() {
                out.push(epoch);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Loads the newest checkpoint, or `None` when the directory holds no
    /// checkpoint files. A corrupt or version-mismatched newest file is a
    /// typed error, never a silent skip: atomic writes mean corruption is
    /// external damage worth surfacing, not a crash artefact.
    pub fn load_latest(&self) -> Result<Option<(usize, StateDict)>, CkptError> {
        match self.epochs()?.last() {
            None => Ok(None),
            Some(&epoch) => Ok(Some((epoch, self.load_epoch(epoch)?))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::faults_guard;
    use mhg_faults::{FaultPlan, FaultSite};

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mhg_ckpt_mgr").join(name);
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sample(epoch: u64) -> StateDict {
        let mut d = StateDict::new();
        d.put_u64("loop/epoch", epoch);
        d.put_u64s("loop/rng", vec![epoch, 2, 3, 4]);
        d
    }

    #[test]
    fn save_load_roundtrip_and_latest_discovery() {
        let _g = faults_guard();
        mhg_faults::clear();
        let ck = Checkpointer::create(fresh_dir("roundtrip")).unwrap();
        assert!(ck.load_latest().unwrap().is_none());
        ck.save(1, &sample(1)).unwrap();
        ck.save(3, &sample(3)).unwrap();
        ck.save(2, &sample(2)).unwrap();
        assert_eq!(ck.epochs().unwrap(), vec![1, 2, 3]);
        let (epoch, dict) = ck.load_latest().unwrap().unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(dict.u64("loop/epoch").unwrap(), 3);
        fs::remove_dir_all(ck.dir()).ok();
    }

    #[test]
    fn corrupt_newest_checkpoint_is_a_typed_error() {
        let _g = faults_guard();
        mhg_faults::clear();
        let ck = Checkpointer::create(fresh_dir("corrupt")).unwrap();
        ck.save(5, &sample(5)).unwrap();
        // Flip one byte in place — external damage, not a partial write.
        let path = ck.path_for(5);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        match ck.load_latest() {
            Err(CkptError::ChecksumMismatch { .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        fs::remove_dir_all(ck.dir()).ok();
    }

    #[test]
    fn stray_files_are_ignored_by_discovery() {
        let _g = faults_guard();
        mhg_faults::clear();
        let ck = Checkpointer::create(fresh_dir("stray")).unwrap();
        ck.save(7, &sample(7)).unwrap();
        fs::write(ck.dir().join("notes.txt"), b"hi").unwrap();
        fs::write(ck.dir().join("ckpt-xyz.mhgc"), b"junk").unwrap();
        fs::write(ck.dir().join("ckpt-000009.mhgc.tmp"), b"partial").unwrap();
        assert_eq!(ck.epochs().unwrap(), vec![7]);
        let (epoch, _) = ck.load_latest().unwrap().unwrap();
        assert_eq!(epoch, 7);
        fs::remove_dir_all(ck.dir()).ok();
    }

    #[test]
    fn retention_keeps_the_newest_n_checkpoints() {
        let _g = faults_guard();
        mhg_faults::clear();
        let ck = Checkpointer::create(fresh_dir("retention")).unwrap();
        for epoch in 1..=7 {
            ck.save(epoch, &sample(epoch as u64)).unwrap();
        }
        // Default retention is 3: only the newest three survive.
        assert_eq!(ck.epochs().unwrap(), vec![5, 6, 7]);
        let (epoch, dict) = ck.load_latest().unwrap().unwrap();
        assert_eq!(epoch, 7);
        assert_eq!(dict.u64("loop/epoch").unwrap(), 7);
        fs::remove_dir_all(ck.dir()).ok();
    }

    #[test]
    fn retention_is_configurable_and_zero_keeps_everything() {
        let _g = faults_guard();
        mhg_faults::clear();
        let keep1 = Checkpointer::create(fresh_dir("keep1"))
            .unwrap()
            .with_retention(1);
        for epoch in 1..=4 {
            keep1.save(epoch, &sample(epoch as u64)).unwrap();
        }
        assert_eq!(
            keep1.epochs().unwrap(),
            vec![4],
            "keep-1 leaves only the newest"
        );
        fs::remove_dir_all(keep1.dir()).ok();

        let keep_all = Checkpointer::create(fresh_dir("keep0"))
            .unwrap()
            .with_retention(0);
        for epoch in 1..=5 {
            keep_all.save(epoch, &sample(epoch as u64)).unwrap();
        }
        assert_eq!(keep_all.epochs().unwrap(), vec![1, 2, 3, 4, 5]);
        fs::remove_dir_all(keep_all.dir()).ok();
    }

    #[test]
    fn gc_runs_after_the_save_and_never_removes_the_newest() {
        let _g = faults_guard();
        // A save whose *write* exhausts its retry budget fails before GC
        // touches anything: the previously retained files all survive, so
        // the last good checkpoint is intact.
        let ck = Checkpointer::create(fresh_dir("crash_safe"))
            .unwrap()
            .with_attempts(1)
            .with_retention(2);
        mhg_faults::clear();
        ck.save(1, &sample(1)).unwrap();
        ck.save(2, &sample(2)).unwrap();
        mhg_faults::install(FaultPlan::new().inject(FaultSite::IoWrite, 1));
        let err = ck.save(3, &sample(3));
        mhg_faults::clear();
        assert!(
            err.is_err(),
            "single-attempt save must fail under the fault"
        );
        assert_eq!(ck.epochs().unwrap(), vec![1, 2], "failed save must not GC");
        let (epoch, _) = ck.load_latest().unwrap().unwrap();
        assert_eq!(epoch, 2, "last good checkpoint survives");
        fs::remove_dir_all(ck.dir()).ok();
    }

    #[test]
    fn save_retries_through_injected_io_faults() {
        let _g = faults_guard();
        let ck = Checkpointer::create(fresh_dir("faulty")).unwrap();
        mhg_faults::install(FaultPlan::new().inject(FaultSite::IoWrite, 1));
        ck.save(1, &sample(1)).unwrap();
        mhg_faults::clear();
        assert_eq!(ck.load_epoch(1).unwrap().u64("loop/epoch").unwrap(), 1);
        fs::remove_dir_all(ck.dir()).ok();
    }
}
