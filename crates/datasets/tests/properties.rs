//! Property-based tests for the dataset generators and the edge splitter.

use mhg_datasets::{DatasetKind, EdgeSplit, SplitConfig};
use proptest::prelude::*;

fn kind() -> impl Strategy<Value = DatasetKind> {
    prop_oneof![
        Just(DatasetKind::Amazon),
        Just(DatasetKind::YouTube),
        Just(DatasetKind::Imdb),
        Just(DatasetKind::Taobao),
        Just(DatasetKind::Kuaishou),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generation_is_deterministic(k in kind(), seed in 0u64..50) {
        let a = k.generate(0.005, seed);
        let b = k.generate(0.005, seed);
        prop_assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
        prop_assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for v in a.graph.nodes() {
            prop_assert_eq!(a.graph.total_degree(v), b.graph.total_degree(v));
        }
    }

    #[test]
    fn scaling_grows_graphs(k in kind(), seed in 0u64..20) {
        let small = k.generate(0.004, seed);
        let large = k.generate(0.02, seed);
        prop_assert!(large.graph.num_nodes() > small.graph.num_nodes());
        prop_assert!(large.graph.num_edges() >= small.graph.num_edges());
    }

    #[test]
    fn shapes_valid_for_schema(k in kind(), seed in 0u64..20) {
        let d = k.generate(0.005, seed);
        for shape in &d.metapath_shapes {
            prop_assert!(shape.len() >= 3, "shape too short");
            for &t in shape {
                prop_assert!(t.index() < d.graph.schema().num_node_types());
            }
        }
        // Every instantiated scheme must validate against the schema.
        for (_, scheme) in d.all_schemes() {
            prop_assert!(scheme.validate(d.graph.schema()).is_ok());
            prop_assert!(scheme.is_intra_relationship());
        }
    }

    #[test]
    fn split_partitions_edges(k in kind(), seed in 0u64..20) {
        use rand::{rngs::StdRng, SeedableRng};
        let d = k.generate(0.008, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let split = EdgeSplit::default_split(&d.graph, &mut rng);
        let train = split.train_graph.num_edges();
        let val_pos = split.val.iter().filter(|e| e.label).count();
        let test_pos = split.test.iter().filter(|e| e.label).count();
        prop_assert_eq!(train + val_pos + test_pos, d.graph.num_edges());
        // No evaluation positive leaks into the training graph.
        for e in split.val.iter().chain(&split.test).filter(|e| e.label) {
            prop_assert!(!split.train_graph.has_edge(e.u, e.v, e.relation));
        }
    }

    #[test]
    fn custom_split_fractions(k in kind(), frac in 0.5f64..0.9) {
        use rand::{rngs::StdRng, SeedableRng};
        let d = k.generate(0.008, 3);
        let mut rng = StdRng::seed_from_u64(9);
        let split = EdgeSplit::new(
            &d.graph,
            SplitConfig { train_frac: frac, val_frac: 0.05 },
            &mut rng,
        );
        let total = d.graph.num_edges() as f64;
        let train = split.train_graph.num_edges() as f64;
        // Per-relation rounding allows small drift.
        prop_assert!((train / total - frac).abs() < 0.1, "train frac {}", train / total);
    }
}
