//! YouTube-multi-view-like generator.
//!
//! Paper statistics (Table II): `|V| = 2,000`, `|E| = 1,310,544`, `|O| = 1`,
//! `|R| = 5` (*contact*, *shared friends*, *shared subscription*, *shared
//! subscriber*, *shared videos*), metapath `I-I-I`.
//!
//! Substitution: all five views are drawn over one shared community
//! assignment with per-view noise and density — each added view contributes
//! correlated evidence about the same communities, the regime the paper's
//! Table VII uplift experiment depends on. The graph is very dense (mean
//! degree ≈ 1300 at full scale), so edge targets are capped at 30% of the
//! possible pairs at any scale.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mhg_graph::{GraphBuilder, NodeId, Schema};

use crate::dataset::{cap_edges, scaled, scaled_communities, Dataset};
use crate::synth::{zipf_activity, Communities, EdgeSampler};

const FULL_NODES: usize = 2_000;
const RELATIONS: [&str; 5] = [
    "contact",
    "shared-friends",
    "shared-subscription",
    "shared-subscriber",
    "shared-videos",
];
/// Per-relation full-scale edge targets (sum = 1,310,544).
const FULL_EDGES: [usize; 5] = [286_544, 380_000, 300_000, 244_000, 100_000];
const NOISE: [f32; 5] = [0.10, 0.22, 0.25, 0.28, 0.33];
const FULL_COMMUNITIES: usize = 40;

/// Generates the YouTube-like dataset at `scale`, seeded deterministically.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x10u64));

    let mut schema = Schema::new();
    let user = schema.add_node_type("user");
    let rels: Vec<_> = RELATIONS.iter().map(|r| schema.add_relation(r)).collect();

    let n = scaled(FULL_NODES, scale);
    let mut builder = GraphBuilder::new(schema);
    let users: Vec<NodeId> = builder.add_nodes(user, n).map(NodeId).collect();

    let comms = Communities::random(n, scaled_communities(FULL_COMMUNITIES, scale), &mut rng);
    let activity = zipf_activity(n, 0.6, &mut rng);

    let pairs = n * n.saturating_sub(1) / 2;
    for (i, &r) in rels.iter().enumerate() {
        let sampler = EdgeSampler::new(
            users.clone(),
            &comms,
            &activity,
            users.clone(),
            &comms,
            &activity,
            NOISE[i],
        );
        // Edge density, not count, is what transfers across scales for this
        // dense graph: scale by `scale²` (both endpoints shrink) with a cap.
        let target = cap_edges(scaled(FULL_EDGES[i], scale * scale), pairs);
        for (u, v) in sampler.sample_edges(target, &mut rng) {
            builder.add_edge(u, v, r);
        }
    }

    Dataset {
        name: "YouTube".to_string(),
        graph: builder.build(),
        metapath_shapes: vec![vec![user, user, user]], // I-I-I
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let d = generate(0.1, 7);
        assert_eq!(d.graph.schema().num_node_types(), 1);
        assert_eq!(d.graph.schema().num_relations(), 5);
    }

    #[test]
    fn all_relations_populated() {
        let d = generate(0.1, 7);
        for r in d.graph.schema().relations() {
            assert!(
                d.graph.num_edges_in(r) > 50,
                "relation {r:?} nearly empty: {}",
                d.graph.num_edges_in(r)
            );
        }
    }

    #[test]
    fn graph_is_dense() {
        let d = generate(0.1, 7);
        let stats = mhg_graph::GraphStats::compute(&d.graph);
        assert!(
            stats.mean_degree > 20.0,
            "mean degree {}",
            stats.mean_degree
        );
        // Multiplexity: shared communities make repeated pairs common.
        assert!(stats.multiplex_pair_fraction > 0.05);
    }
}
