//! The [`Dataset`] bundle and the registry of the paper's five datasets.

use mhg_graph::{MetapathScheme, MultiplexGraph, NodeTypeId, RelationId};

/// A generated dataset: the graph plus the predefined metapath shapes from
/// the paper's Table II.
///
/// Shapes are node-type sequences (e.g. `U-I-U`); the per-relation scheme
/// sets `PS_{r_l}` of §III-C are obtained by instantiating every shape as an
/// intra-relationship scheme under `r_l` via [`Dataset::schemes_for`].
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable dataset name.
    pub name: String,
    /// The generated multiplex heterogeneous graph.
    pub graph: MultiplexGraph,
    /// Metapath type shapes from Table II.
    pub metapath_shapes: Vec<Vec<NodeTypeId>>,
}

impl Dataset {
    /// The predefined scheme set `PS_r`: every Table II shape instantiated
    /// under relation `r`.
    pub fn schemes_for(&self, r: RelationId) -> Vec<MetapathScheme> {
        self.metapath_shapes
            .iter()
            .map(|shape| MetapathScheme::intra(shape.clone(), r))
            .collect()
    }

    /// All `(relation, scheme)` combinations.
    pub fn all_schemes(&self) -> Vec<(RelationId, MetapathScheme)> {
        self.graph
            .schema()
            .relations()
            .flat_map(|r| self.schemes_for(r).into_iter().map(move |s| (r, s)))
            .collect()
    }
}

/// The five datasets of the paper's evaluation (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Amazon Electronics: 1 node type, 2 relations (`G₁`: `|O|=1, |R|≥2`).
    Amazon,
    /// YouTube multi-view: 1 node type, 5 relations (`G₁`).
    YouTube,
    /// IMDb: 3 node types, 1 relation (`G₂`: `|O|≥2, |R|=1`).
    Imdb,
    /// Taobao user behaviours: 2 node types, 4 relations (`G₃`).
    Taobao,
    /// Kuaishou interactions: 3 node types, 4 relations (`G₃`).
    Kuaishou,
}

impl DatasetKind {
    /// All five datasets in the paper's order.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::Amazon,
        DatasetKind::YouTube,
        DatasetKind::Imdb,
        DatasetKind::Taobao,
        DatasetKind::Kuaishou,
    ];

    /// The dataset's display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Amazon => "Amazon",
            DatasetKind::YouTube => "YouTube",
            DatasetKind::Imdb => "IMDb",
            DatasetKind::Taobao => "Taobao",
            DatasetKind::Kuaishou => "Kuaishou",
        }
    }

    /// Parses a case-insensitive dataset name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "amazon" => Some(DatasetKind::Amazon),
            "youtube" => Some(DatasetKind::YouTube),
            "imdb" => Some(DatasetKind::Imdb),
            "taobao" => Some(DatasetKind::Taobao),
            "kuaishou" => Some(DatasetKind::Kuaishou),
            _ => None,
        }
    }

    /// Generates the dataset at `scale ∈ (0, 1]` of the paper's published
    /// size, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1.5]`.
    pub fn generate(self, scale: f64, seed: u64) -> Dataset {
        assert!(
            scale > 0.0 && scale <= 1.5,
            "scale must be in (0, 1.5], got {scale}"
        );
        match self {
            DatasetKind::Amazon => crate::amazon::generate(scale, seed),
            DatasetKind::YouTube => crate::youtube::generate(scale, seed),
            DatasetKind::Imdb => crate::imdb::generate(scale, seed),
            DatasetKind::Taobao => crate::taobao::generate(scale, seed),
            DatasetKind::Kuaishou => crate::kuaishou::generate(scale, seed),
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Scales a published count, keeping a sane floor.
pub(crate) fn scaled(full: usize, scale: f64) -> usize {
    ((full as f64 * scale).round() as usize).max(4)
}

/// Scales a community count with the square root of `scale` so communities
/// keep a useful size on small graphs.
pub(crate) fn scaled_communities(full: usize, scale: f64) -> usize {
    ((full as f64 * scale.sqrt()).round() as usize).clamp(3, full.max(3))
}

/// Caps an edge target at a fraction of the possible pairs so dense graphs
/// stay samplable at small scales.
pub(crate) fn cap_edges(target: usize, possible_pairs: usize) -> usize {
    target.min((possible_pairs as f64 * 0.3) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for kind in DatasetKind::ALL {
            assert_eq!(DatasetKind::parse(kind.name()), Some(kind));
            assert_eq!(DatasetKind::parse(&kind.name().to_uppercase()), Some(kind));
        }
        assert_eq!(DatasetKind::parse("nope"), None);
    }

    #[test]
    fn scaling_helpers() {
        assert_eq!(scaled(1000, 0.1), 100);
        assert_eq!(scaled(10, 0.01), 4); // floor
        assert!(scaled_communities(100, 0.01) >= 3);
        assert_eq!(cap_edges(1000, 100), 30);
        assert_eq!(cap_edges(10, 1_000_000), 10);
    }
}
