//! Kuaishou-like generator.
//!
//! Paper statistics (Table II): `|V| = 105,749`, `|E| = 175,870`, `|O| = 3`
//! (*user*, *video*, *author*), `|R| = 4` (*click*, *like*, *comment*,
//! *download* — the order the paper uses in Fig. 4), metapaths U-A-U,
//! A-U-A, V-U-V, U-V-U.
//!
//! Substitution: the proprietary one-day log is replaced by an
//! interest-block model with an explicit *author-owns-video* coupling: each
//! video inherits its author's interest community (with some spill-over),
//! so user–video and user–author edges carry mutually-reinforcing signal —
//! this is what gives the U-A-U / U-V-U metapaths their meaning on the real
//! platform. Engagement depth grades the relations: clicks are plentiful
//! and noisy, downloads rare and clean.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use mhg_graph::{GraphBuilder, NodeId, Schema};

use crate::dataset::{cap_edges, scaled, scaled_communities, Dataset};
use crate::synth::{zipf_activity, Communities, EdgeSampler};

const FULL_USERS: usize = 60_000;
const FULL_VIDEOS: usize = 40_000;
const FULL_AUTHORS: usize = 5_749;
const RELATIONS: [&str; 4] = ["click", "like", "comment", "download"];
const FULL_EDGES: [usize; 4] = [100_000, 45_000, 20_870, 10_000];
const NOISE: [f32; 4] = [0.25, 0.15, 0.10, 0.08];
/// Fraction of each relation's edges that connect user–video (the rest are
/// user–author).
const VIDEO_FRACTION: f64 = 0.75;
const FULL_COMMUNITIES: usize = 100;
/// Probability a video inherits its author's community exactly.
const OWNERSHIP_COHERENCE: f64 = 0.85;

/// Generates the Kuaishou-like dataset at `scale`, seeded deterministically.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x40u64));

    let mut schema = Schema::new();
    let user = schema.add_node_type("user");
    let video = schema.add_node_type("video");
    let author = schema.add_node_type("author");
    let rels: Vec<_> = RELATIONS.iter().map(|r| schema.add_relation(r)).collect();

    let n_u = scaled(FULL_USERS, scale);
    let n_v = scaled(FULL_VIDEOS, scale);
    let n_a = scaled(FULL_AUTHORS, scale);

    let mut builder = GraphBuilder::new(schema);
    let users: Vec<NodeId> = builder.add_nodes(user, n_u).map(NodeId).collect();
    let videos: Vec<NodeId> = builder.add_nodes(video, n_v).map(NodeId).collect();
    let authors: Vec<NodeId> = builder.add_nodes(author, n_a).map(NodeId).collect();

    let k = scaled_communities(FULL_COMMUNITIES, scale);
    let u_comms = Communities::random(n_u, k, &mut rng);
    let a_comms = Communities::random(n_a, k, &mut rng);

    // Videos inherit their owner-author's community with high probability:
    // the ownership coupling that correlates U-V and U-A interactions.
    let v_comms = {
        let membership: Vec<u16> = (0..n_v)
            .map(|_| {
                let owner = rng.gen_range(0..n_a);
                if rng.gen_bool(OWNERSHIP_COHERENCE) {
                    a_comms.of(owner)
                } else {
                    rng.gen_range(0..k) as u16
                }
            })
            .collect();
        Communities::from_membership(membership, k)
    };

    let u_act = zipf_activity(n_u, 0.8, &mut rng);
    let v_act = zipf_activity(n_v, 1.0, &mut rng);
    let a_act = zipf_activity(n_a, 1.1, &mut rng);

    for (idx, &r) in rels.iter().enumerate() {
        let uv_target = cap_edges(
            scaled((FULL_EDGES[idx] as f64 * VIDEO_FRACTION) as usize, scale),
            n_u * n_v,
        );
        let ua_target = cap_edges(
            scaled(
                (FULL_EDGES[idx] as f64 * (1.0 - VIDEO_FRACTION)) as usize,
                scale,
            ),
            n_u * n_a,
        );

        let uv = EdgeSampler::new(
            users.clone(),
            &u_comms,
            &u_act,
            videos.clone(),
            &v_comms,
            &v_act,
            NOISE[idx],
        );
        for (u, v) in uv.sample_edges(uv_target, &mut rng) {
            builder.add_edge(u, v, r);
        }

        let ua = EdgeSampler::new(
            users.clone(),
            &u_comms,
            &u_act,
            authors.clone(),
            &a_comms,
            &a_act,
            NOISE[idx],
        );
        for (u, v) in ua.sample_edges(ua_target, &mut rng) {
            builder.add_edge(u, v, r);
        }
    }

    Dataset {
        name: "Kuaishou".to_string(),
        graph: builder.build(),
        metapath_shapes: vec![
            vec![user, author, user],   // U-A-U
            vec![author, user, author], // A-U-A
            vec![video, user, video],   // V-U-V
            vec![user, video, user],    // U-V-U
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let d = generate(0.05, 7);
        assert_eq!(d.graph.schema().num_node_types(), 3);
        assert_eq!(d.graph.schema().num_relations(), 4);
        assert_eq!(d.metapath_shapes.len(), 4);
    }

    #[test]
    fn engagement_gradient() {
        let d = generate(0.1, 7);
        let s = d.graph.schema();
        let count = |name: &str| d.graph.num_edges_in(s.relation_id(name).unwrap());
        assert!(count("click") > count("like"));
        assert!(count("like") > count("comment"));
        assert!(count("comment") > count("download"));
    }

    #[test]
    fn edges_touch_users_only_on_one_side() {
        let d = generate(0.03, 8);
        let s = d.graph.schema();
        let user = s.node_type_id("user").unwrap();
        for r in s.relations() {
            for (u, v) in d.graph.edges_in(r) {
                let users = [u, v]
                    .iter()
                    .filter(|&&n| d.graph.node_type(n) == user)
                    .count();
                assert_eq!(users, 1, "edge must be user-video or user-author");
            }
        }
    }

    #[test]
    fn both_video_and_author_edges_exist() {
        let d = generate(0.05, 9);
        let s = d.graph.schema();
        let video = s.node_type_id("video").unwrap();
        let author = s.node_type_id("author").unwrap();
        let click = s.relation_id("click").unwrap();
        let mut has_video = false;
        let mut has_author = false;
        for (u, v) in d.graph.edges_in(click) {
            for n in [u, v] {
                if d.graph.node_type(n) == video {
                    has_video = true;
                }
                if d.graph.node_type(n) == author {
                    has_author = true;
                }
            }
        }
        assert!(has_video && has_author);
    }
}
