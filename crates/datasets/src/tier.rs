//! The 10×-scale synthetic tier: a functionally-defined edge stream for
//! graphs too large to hold as edge lists.
//!
//! The five Table-II generators materialise a [`MultiplexGraph`] in RAM,
//! which caps them at a few hundred thousand edges. [`SyntheticTier`]
//! instead *is* the graph definition: every edge is a pure function of
//! `(seed, relation, chunk, draw)`, so the stream can be replayed any
//! number of times at a fixed cost of O(1) memory. That is exactly the
//! [`EdgeSource`] contract the sharded store's wave builder needs — it
//! re-streams the source once per wave instead of spilling edges to disk.
//!
//! The planted structure mirrors `synth.rs` in spirit with arithmetic in
//! place of tables: node `i` of a group belongs to community `i mod k`, and
//! an edge keeps its endpoints in one community with probability
//! `1 − noise_r`. Relations share the assignment, so the inter-relationship
//! correlation the paper's uplift experiment measures survives the scale-up.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mhg_graph::{EdgeSource, GraphBuilder, MultiplexGraph, NodeId, NodeTypeId, RelationId, Schema};
use mhg_sampling::derive_seed;

/// Edges drawn per RNG chunk. Fixed so the stream decomposition — and the
/// stream itself — never depends on thread count or caller batching.
const EDGE_CHUNK: usize = 1 << 16;

/// A deterministic, re-streamable user–item multiplex graph defined by its
/// generator parameters instead of stored edges.
#[derive(Clone, Debug)]
pub struct SyntheticTier {
    schema: Schema,
    num_users: usize,
    num_items: usize,
    edges_per_relation: Vec<usize>,
    noise_per_relation: Vec<f32>,
    num_communities: usize,
    seed: u64,
}

impl SyntheticTier {
    /// Taobao-shaped tier at `scale` of the 10×-target size: at
    /// `scale = 1.0` this is 800k users, 200k items and 10M candidate edges
    /// over the four behaviour relations (`view`/`cart`/`buy`/`fav`, graded
    /// 64/16/12/8%). Small scales (`0.001`) are cheap enough for unit tests.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn taobao(scale: f64, seed: u64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "scale must be positive, got {scale}"
        );
        let scaled = |base: usize, floor: usize| ((base as f64 * scale) as usize).max(floor);
        let mut schema = Schema::new();
        schema.add_node_type("user");
        schema.add_node_type("item");
        for name in ["view", "cart", "buy", "fav"] {
            schema.add_relation(name);
        }
        let num_communities = scaled(800, 8);
        Self {
            schema,
            num_users: scaled(800_000, 4 * num_communities),
            num_items: scaled(200_000, 2 * num_communities),
            edges_per_relation: vec![
                scaled(6_400_000, 64),
                scaled(1_600_000, 16),
                scaled(1_200_000, 12),
                scaled(800_000, 8),
            ],
            noise_per_relation: vec![0.10, 0.05, 0.05, 0.15],
            num_communities,
            seed,
        }
    }

    /// Candidate edges across all relations (before CSR deduplication).
    pub fn total_edges(&self) -> usize {
        self.edges_per_relation.iter().sum()
    }

    /// Candidate edges per relation, in relation-id order.
    pub fn edges_per_relation(&self) -> &[usize] {
        &self.edges_per_relation
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the equivalent in-RAM graph by replaying the stream through
    /// [`GraphBuilder`]. Intended for small scales (tests, parity checks);
    /// at full scale use `ShardedCsr::build(&tier, …)` instead.
    pub fn materialize(&self) -> MultiplexGraph {
        let mut b = GraphBuilder::new(self.schema.clone());
        let user = NodeTypeId(0);
        let item = NodeTypeId(1);
        for _ in 0..self.num_users {
            b.add_node(user);
        }
        for _ in 0..self.num_items {
            b.add_node(item);
        }
        self.for_each_edge(&mut |r, u, v| {
            b.add_edge(u, v, r);
        });
        b.build()
    }

    /// Items with local index ≡ `c` (mod `k`): `ceil((num_items − c) / k)`.
    fn items_in_community(&self, c: usize) -> usize {
        (self.num_items - c).div_ceil(self.num_communities)
    }
}

impl EdgeSource for SyntheticTier {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn num_nodes(&self) -> usize {
        self.num_users + self.num_items
    }

    fn node_type_of(&self, v: NodeId) -> NodeTypeId {
        if v.index() < self.num_users {
            NodeTypeId(0)
        } else {
            NodeTypeId(1)
        }
    }

    fn for_each_edge(&self, f: &mut dyn FnMut(RelationId, NodeId, NodeId)) {
        let k = self.num_communities;
        for (ri, (&count, &noise)) in self
            .edges_per_relation
            .iter()
            .zip(&self.noise_per_relation)
            .enumerate()
        {
            let r = RelationId(ri as u16);
            let rel_seed = derive_seed(self.seed, ri as u64);
            let chunks = count.div_ceil(EDGE_CHUNK);
            for chunk in 0..chunks {
                let mut rng = StdRng::seed_from_u64(derive_seed(rel_seed, chunk as u64));
                let lo = chunk * EDGE_CHUNK;
                let hi = (lo + EDGE_CHUNK).min(count);
                for _ in lo..hi {
                    let u_local = rng.gen_range(0..self.num_users);
                    let c = u_local % k;
                    let v_local = if rng.gen::<f32>() < noise {
                        rng.gen_range(0..self.num_items)
                    } else {
                        c + rng.gen_range(0..self.items_in_community(c)) * k
                    };
                    f(
                        r,
                        NodeId(u_local as u32),
                        NodeId((self.num_users + v_local) as u32),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_replayable_bit_identically() {
        let tier = SyntheticTier::taobao(0.001, 7);
        let mut a = Vec::new();
        tier.for_each_edge(&mut |r, u, v| a.push((r, u, v)));
        let mut b = Vec::new();
        tier.for_each_edge(&mut |r, u, v| b.push((r, u, v)));
        assert_eq!(a, b);
        assert_eq!(a.len(), tier.total_edges());
    }

    #[test]
    fn endpoints_respect_types_and_ranges() {
        let tier = SyntheticTier::taobao(0.001, 7);
        let users = tier.num_users;
        let total = tier.num_nodes();
        tier.for_each_edge(&mut |_, u, v| {
            assert!(u.index() < users, "left endpoint must be a user");
            assert!(
                (users..total).contains(&v.index()),
                "right endpoint must be an item"
            );
        });
        assert_eq!(tier.node_type_of(NodeId(0)), NodeTypeId(0));
        assert_eq!(tier.node_type_of(NodeId(users as u32)), NodeTypeId(1));
    }

    #[test]
    fn materialized_graph_matches_stream_counts() {
        let tier = SyntheticTier::taobao(0.001, 11);
        let g = tier.materialize();
        assert_eq!(g.num_nodes(), tier.num_nodes());
        assert_eq!(g.schema().num_relations(), 4);
        // CSR dedup can only shrink the candidate counts.
        for (ri, &cand) in tier.edges_per_relation().iter().enumerate() {
            let stored = g.num_edges_in(RelationId(ri as u16));
            assert!(stored <= cand, "relation {ri}: {stored} > {cand}");
            assert!(stored > 0, "relation {ri} is empty");
        }
    }

    #[test]
    fn communities_correlate_relations() {
        // With low noise, most edges stay within a community, so the
        // community residues of the two endpoints agree far more often
        // than the 1/k chance level.
        let tier = SyntheticTier::taobao(0.001, 13);
        let k = tier.num_communities;
        let mut same = 0usize;
        let mut total = 0usize;
        tier.for_each_edge(&mut |_, u, v| {
            let cu = u.index() % k;
            let cv = (v.index() - tier.num_users) % k;
            total += 1;
            if cu == cv {
                same += 1;
            }
        });
        assert!(
            same as f64 / total as f64 > 0.5,
            "community correlation lost: {same}/{total}"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticTier::taobao(0.001, 1);
        let b = SyntheticTier::taobao(0.001, 2);
        let mut ea = Vec::new();
        a.for_each_edge(&mut |r, u, v| ea.push((r, u, v)));
        let mut eb = Vec::new();
        b.for_each_edge(&mut |r, u, v| eb.push((r, u, v)));
        assert_ne!(ea, eb);
    }
}
