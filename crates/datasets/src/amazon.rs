//! Amazon-Electronics-like generator.
//!
//! Paper statistics (Table II): `|V| = 10,099`, `|E| = 148,659`, `|O| = 1`
//! (*item*), `|R| = 2` (*common bought*, *common viewed*), metapath `I-I-I`.
//!
//! Substitution: the real co-purchase graph is replaced by a planted-topic
//! model where both relations share one topic assignment — co-purchases are
//! cleaner (lower noise) than co-views, mirroring the real data where
//! purchasing is the stronger signal.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mhg_graph::{GraphBuilder, NodeId, Schema};

use crate::dataset::{cap_edges, scaled, scaled_communities, Dataset};
use crate::synth::{zipf_activity, Communities, EdgeSampler};

/// Full-scale counts from the paper.
const FULL_ITEMS: usize = 10_099;
const FULL_EDGES: [usize; 2] = [99_000, 49_659]; // common-bought, common-viewed
const NOISE: [f32; 2] = [0.12, 0.25];
const FULL_COMMUNITIES: usize = 80;

/// Generates the Amazon-like dataset at `scale`, seeded deterministically.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);

    let mut schema = Schema::new();
    let item = schema.add_node_type("item");
    let rels = [
        schema.add_relation("common-bought"),
        schema.add_relation("common-viewed"),
    ];

    let n = scaled(FULL_ITEMS, scale);
    let mut builder = GraphBuilder::new(schema);
    let items: Vec<NodeId> = builder.add_nodes(item, n).map(NodeId).collect();

    let comms = Communities::random(n, scaled_communities(FULL_COMMUNITIES, scale), &mut rng);
    let activity = zipf_activity(n, 0.75, &mut rng);

    let pairs = n * n.saturating_sub(1) / 2;
    for (i, &r) in rels.iter().enumerate() {
        let sampler = EdgeSampler::new(
            items.clone(),
            &comms,
            &activity,
            items.clone(),
            &comms,
            &activity,
            NOISE[i],
        );
        let target = cap_edges(scaled(FULL_EDGES[i], scale), pairs);
        for (u, v) in sampler.sample_edges(target, &mut rng) {
            builder.add_edge(u, v, r);
        }
    }

    Dataset {
        name: "Amazon".to_string(),
        graph: builder.build(),
        metapath_shapes: vec![vec![item, item, item]], // I-I-I
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let d = generate(0.05, 7);
        assert_eq!(d.graph.schema().num_node_types(), 1);
        assert_eq!(d.graph.schema().num_relations(), 2);
        assert_eq!(d.metapath_shapes.len(), 1);
        assert_eq!(d.metapath_shapes[0].len(), 3);
    }

    #[test]
    fn sizes_scale() {
        let d = generate(0.05, 7);
        assert!(
            (400..=650).contains(&d.graph.num_nodes()),
            "{}",
            d.graph.num_nodes()
        );
        assert!(d.graph.num_edges() > 1000, "{}", d.graph.num_edges());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(0.03, 1);
        let b = generate(0.03, 1);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        let c = generate(0.03, 2);
        // Different seed should (overwhelmingly) differ somewhere.
        let differs = a.graph.num_edges() != c.graph.num_edges()
            || a.graph
                .nodes()
                .any(|v| a.graph.total_degree(v) != c.graph.total_degree(v));
        assert!(differs);
    }

    #[test]
    fn bought_denser_than_viewed() {
        let d = generate(0.1, 3);
        let s = d.graph.schema();
        let cb = s.relation_id("common-bought").unwrap();
        let cv = s.relation_id("common-viewed").unwrap();
        assert!(d.graph.num_edges_in(cb) > d.graph.num_edges_in(cv));
    }
}
