//! Taobao-user-behaviour-like generator.
//!
//! Paper statistics (Table II): `|V| = 64,737`, `|E| = 144,511`, `|O| = 2`
//! (*user*, *item*), `|R| = 4` (*page view*, *item favoring*, *purchase*,
//! *add to cart* — the relation order the paper uses in Fig. 4), metapaths
//! U-I-U and I-U-I.
//!
//! Substitution: the proprietary log is replaced by a shared-interest block
//! model with *graded density and noise*: page views are plentiful but
//! noisy; favoring / cart / purchase are progressively sparser and cleaner.
//! Because all four behaviours share one interest assignment, the sparse
//! relations are predictable from the dense ones — the exact mechanism that
//! makes inter-relationship exploration win big on Taobao in the paper
//! (largest ablation gaps in Table VIII).

use rand::rngs::StdRng;
use rand::SeedableRng;

use mhg_graph::{GraphBuilder, NodeId, Schema};

use crate::dataset::{cap_edges, scaled, scaled_communities, Dataset};
use crate::synth::{zipf_activity, Communities, EdgeSampler};

const FULL_USERS: usize = 48_000;
const FULL_ITEMS: usize = 16_737;
const RELATIONS: [&str; 4] = ["page-view", "item-favoring", "purchase", "add-to-cart"];
const FULL_EDGES: [usize; 4] = [120_000, 7_500, 6_511, 10_500];
const NOISE: [f32; 4] = [0.30, 0.10, 0.06, 0.12];
const FULL_COMMUNITIES: usize = 120;

/// Generates the Taobao-like dataset at `scale`, seeded deterministically.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x30u64));

    let mut schema = Schema::new();
    let user = schema.add_node_type("user");
    let item = schema.add_node_type("item");
    let rels: Vec<_> = RELATIONS.iter().map(|r| schema.add_relation(r)).collect();

    let n_u = scaled(FULL_USERS, scale);
    let n_i = scaled(FULL_ITEMS, scale);
    let mut builder = GraphBuilder::new(schema);
    let users: Vec<NodeId> = builder.add_nodes(user, n_u).map(NodeId).collect();
    let items: Vec<NodeId> = builder.add_nodes(item, n_i).map(NodeId).collect();

    let k = scaled_communities(FULL_COMMUNITIES, scale);
    let u_comms = Communities::random(n_u, k, &mut rng);
    let i_comms = Communities::random(n_i, k, &mut rng);
    let u_act = zipf_activity(n_u, 0.8, &mut rng);
    let i_act = zipf_activity(n_i, 0.9, &mut rng);

    for (idx, &r) in rels.iter().enumerate() {
        let sampler = EdgeSampler::new(
            users.clone(),
            &u_comms,
            &u_act,
            items.clone(),
            &i_comms,
            &i_act,
            NOISE[idx],
        );
        let target = cap_edges(scaled(FULL_EDGES[idx], scale), n_u * n_i);
        for (u, v) in sampler.sample_edges(target, &mut rng) {
            builder.add_edge(u, v, r);
        }
    }

    Dataset {
        name: "Taobao".to_string(),
        graph: builder.build(),
        metapath_shapes: vec![
            vec![user, item, user], // U-I-U
            vec![item, user, item], // I-U-I
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let d = generate(0.05, 7);
        assert_eq!(d.graph.schema().num_node_types(), 2);
        assert_eq!(d.graph.schema().num_relations(), 4);
        assert_eq!(d.metapath_shapes.len(), 2);
    }

    #[test]
    fn density_gradient() {
        // pv ≫ cart > fav > buy at any scale.
        let d = generate(0.1, 7);
        let s = d.graph.schema();
        let count = |name: &str| d.graph.num_edges_in(s.relation_id(name).unwrap());
        assert!(count("page-view") > 3 * count("add-to-cart"));
        assert!(count("add-to-cart") > count("item-favoring"));
        assert!(count("item-favoring") > count("purchase") / 2);
    }

    #[test]
    fn bipartite_structure() {
        let d = generate(0.05, 8);
        let s = d.graph.schema();
        let user = s.node_type_id("user").unwrap();
        for r in s.relations() {
            for (u, v) in d.graph.edges_in(r) {
                assert_ne!(
                    d.graph.node_type(u) == user,
                    d.graph.node_type(v) == user,
                    "non-bipartite edge"
                );
            }
        }
    }
}
