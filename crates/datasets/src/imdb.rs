//! IMDb-like generator.
//!
//! Paper statistics (Table II): `|V| = 11,616`, `|O| = 3` (*movie*,
//! *director*, *actor*), `|R| = 1`, metapaths M-D-M, M-A-M, D-M-D, A-M-A,
//! D-M-A-M-D, A-M-D-M-A.
//!
//! Substitution: the MAGNN IMDb subset (4,278 movies / 2,081 directors /
//! 5,257 actors; every movie has one director and ~3 actors) is replaced by
//! a genre-block model: movies, directors and actors share latent genre
//! communities; M-D and M-A edges are drawn within genres. The paper reports
//! `|E| = 34,212`, which counts both directions of the 17,106 undirected
//! M-D/M-A links; this generator targets the undirected counts.

use rand::rngs::StdRng;
use rand::SeedableRng;

use mhg_graph::{GraphBuilder, NodeId, Schema};

use crate::dataset::{cap_edges, scaled, scaled_communities, Dataset};
use crate::synth::{zipf_activity, Communities, EdgeSampler};

const FULL_MOVIES: usize = 4_278;
const FULL_DIRECTORS: usize = 2_081;
const FULL_ACTORS: usize = 5_257;
const FULL_MD_EDGES: usize = 4_278;
const FULL_MA_EDGES: usize = 12_828;
const FULL_GENRES: usize = 20;
const NOISE: f32 = 0.10;

/// Generates the IMDb-like dataset at `scale`, seeded deterministically.
pub fn generate(scale: f64, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0x20u64));

    let mut schema = Schema::new();
    let movie = schema.add_node_type("movie");
    let director = schema.add_node_type("director");
    let actor = schema.add_node_type("actor");
    let to = schema.add_relation("to");

    let n_m = scaled(FULL_MOVIES, scale);
    let n_d = scaled(FULL_DIRECTORS, scale);
    let n_a = scaled(FULL_ACTORS, scale);

    let mut builder = GraphBuilder::new(schema);
    let movies: Vec<NodeId> = builder.add_nodes(movie, n_m).map(NodeId).collect();
    let directors: Vec<NodeId> = builder.add_nodes(director, n_d).map(NodeId).collect();
    let actors: Vec<NodeId> = builder.add_nodes(actor, n_a).map(NodeId).collect();

    let genres = scaled_communities(FULL_GENRES, scale);
    let m_comms = Communities::random(n_m, genres, &mut rng);
    let d_comms = Communities::random(n_d, genres, &mut rng);
    let a_comms = Communities::random(n_a, genres, &mut rng);
    let m_act = zipf_activity(n_m, 0.4, &mut rng);
    let d_act = zipf_activity(n_d, 0.7, &mut rng);
    let a_act = zipf_activity(n_a, 0.7, &mut rng);

    // Movie–director edges.
    let md = EdgeSampler::new(
        movies.clone(),
        &m_comms,
        &m_act,
        directors,
        &d_comms,
        &d_act,
        NOISE,
    );
    let md_target = cap_edges(scaled(FULL_MD_EDGES, scale), n_m * n_d);
    for (u, v) in md.sample_edges(md_target, &mut rng) {
        builder.add_edge(u, v, to);
    }

    // Movie–actor edges.
    let ma = EdgeSampler::new(movies, &m_comms, &m_act, actors, &a_comms, &a_act, NOISE);
    let ma_target = cap_edges(scaled(FULL_MA_EDGES, scale), n_m * n_a);
    for (u, v) in ma.sample_edges(ma_target, &mut rng) {
        builder.add_edge(u, v, to);
    }

    Dataset {
        name: "IMDb".to_string(),
        graph: builder.build(),
        metapath_shapes: vec![
            vec![movie, director, movie],                  // M-D-M
            vec![movie, actor, movie],                     // M-A-M
            vec![director, movie, director],               // D-M-D
            vec![actor, movie, actor],                     // A-M-A
            vec![director, movie, actor, movie, director], // D-M-A-M-D
            vec![actor, movie, director, movie, actor],    // A-M-D-M-A
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper() {
        let d = generate(0.1, 7);
        assert_eq!(d.graph.schema().num_node_types(), 3);
        assert_eq!(d.graph.schema().num_relations(), 1);
        assert_eq!(d.metapath_shapes.len(), 6);
    }

    #[test]
    fn node_type_proportions() {
        let d = generate(0.1, 7);
        let s = d.graph.schema();
        let movies = d
            .graph
            .nodes_of_type(s.node_type_id("movie").unwrap())
            .len();
        let directors = d
            .graph
            .nodes_of_type(s.node_type_id("director").unwrap())
            .len();
        let actors = d
            .graph
            .nodes_of_type(s.node_type_id("actor").unwrap())
            .len();
        assert!(movies > directors, "movies {movies} directors {directors}");
        assert!(actors > movies, "actors {actors} movies {movies}");
    }

    #[test]
    fn edges_only_touch_movies() {
        // All edges are M-D or M-A: exactly one endpoint is a movie.
        let d = generate(0.05, 9);
        let s = d.graph.schema();
        let movie = s.node_type_id("movie").unwrap();
        let r = s.relation_id("to").unwrap();
        for (u, v) in d.graph.edges_in(r) {
            let m_count = [u, v]
                .iter()
                .filter(|&&n| d.graph.node_type(n) == movie)
                .count();
            assert_eq!(m_count, 1, "edge {u:?}-{v:?}");
        }
    }

    #[test]
    fn long_metapaths_present() {
        let d = generate(0.05, 9);
        assert!(d.metapath_shapes.iter().any(|s| s.len() == 5));
    }
}
