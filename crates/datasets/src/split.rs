//! Train/validation/test edge splitting with sampled negatives.
//!
//! Follows the paper's protocol (§IV-C): 85% of edges train, 5% validate,
//! 10% test, split per relation; for every positive evaluation edge one
//! negative of the same relation is sampled with a matched endpoint type and
//! verified absent from the *full* graph.

use rand::seq::SliceRandom;
use rand::Rng;

use mhg_graph::{GraphBuilder, MultiplexGraph, NodeId, RelationId, Schema};

/// An evaluation edge with its ground-truth label.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabeledEdge {
    /// Source endpoint.
    pub u: NodeId,
    /// Target endpoint.
    pub v: NodeId,
    /// Relation being predicted.
    pub relation: RelationId,
    /// `true` for held-out positives, `false` for sampled negatives.
    pub label: bool,
}

/// Split fractions.
#[derive(Clone, Copy, Debug)]
pub struct SplitConfig {
    /// Fraction of edges used for training (default 0.85).
    pub train_frac: f64,
    /// Fraction used for validation (default 0.05). The remainder tests.
    pub val_frac: f64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self {
            train_frac: 0.85,
            val_frac: 0.05,
        }
    }
}

/// The result of splitting a multiplex graph.
#[derive(Clone, Debug)]
pub struct EdgeSplit {
    /// Graph containing only training edges (same node set and schema).
    pub train_graph: MultiplexGraph,
    /// Validation positives and negatives (interleaved, shuffled).
    pub val: Vec<LabeledEdge>,
    /// Test positives and negatives (interleaved, shuffled).
    pub test: Vec<LabeledEdge>,
}

impl EdgeSplit {
    /// Splits `graph` per relation with the given fractions.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are out of range.
    pub fn new<R: Rng + ?Sized>(graph: &MultiplexGraph, config: SplitConfig, rng: &mut R) -> Self {
        assert!(
            config.train_frac > 0.0
                && config.val_frac >= 0.0
                && config.train_frac + config.val_frac < 1.0,
            "invalid split fractions"
        );

        let schema: Schema = graph.schema().clone();
        let mut builder = GraphBuilder::new(schema);
        for v in graph.nodes() {
            builder.add_node(graph.node_type(v));
        }

        let mut val = Vec::new();
        let mut test = Vec::new();

        for r in graph.schema().relations() {
            let mut edges: Vec<(NodeId, NodeId)> = graph.edges_in(r).collect();
            edges.shuffle(rng);
            let n = edges.len();
            let n_train = ((n as f64) * config.train_frac).round() as usize;
            let n_val = ((n as f64) * config.val_frac).round() as usize;

            for &(u, v) in &edges[..n_train.min(n)] {
                builder.add_edge(u, v, r);
            }
            for &(u, v) in edges.iter().skip(n_train).take(n_val) {
                push_labeled(graph, u, v, r, &mut val, rng);
            }
            for &(u, v) in edges.iter().skip(n_train + n_val) {
                push_labeled(graph, u, v, r, &mut test, rng);
            }
        }

        val.shuffle(rng);
        test.shuffle(rng);

        Self {
            train_graph: builder.build(),
            val,
            test,
        }
    }

    /// Splits with the paper's default 85/5/10 fractions.
    pub fn default_split<R: Rng + ?Sized>(graph: &MultiplexGraph, rng: &mut R) -> Self {
        Self::new(graph, SplitConfig::default(), rng)
    }

    /// Test positives only (e.g. for ranking metrics).
    pub fn test_positives(&self) -> impl Iterator<Item = &LabeledEdge> {
        self.test.iter().filter(|e| e.label)
    }
}

/// Pushes the positive and one matched negative.
fn push_labeled<R: Rng + ?Sized>(
    graph: &MultiplexGraph,
    u: NodeId,
    v: NodeId,
    r: RelationId,
    out: &mut Vec<LabeledEdge>,
    rng: &mut R,
) {
    out.push(LabeledEdge {
        u,
        v,
        relation: r,
        label: true,
    });
    if let Some(neg) = sample_negative(graph, u, v, r, rng) {
        out.push(LabeledEdge {
            u,
            v: neg,
            relation: r,
            label: false,
        });
    }
}

/// Samples `v'` with `type(v') == type(v)` and `(u, v') ∉ E_r` in the full
/// graph. Bounded attempts; `None` when the type is saturated.
fn sample_negative<R: Rng + ?Sized>(
    graph: &MultiplexGraph,
    u: NodeId,
    v: NodeId,
    r: RelationId,
    rng: &mut R,
) -> Option<NodeId> {
    let candidates = graph.nodes_of_type(graph.node_type(v));
    if candidates.len() < 2 {
        return None;
    }
    for _ in 0..64 {
        let cand = candidates[rng.gen_range(0..candidates.len())];
        if cand != u && cand != v && !graph.has_edge(u, cand, r) {
            return Some(cand);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_graph::{GraphBuilder, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_graph(n: usize) -> MultiplexGraph {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r0 = schema.add_relation("a");
        let r1 = schema.add_relation("b");
        let mut b = GraphBuilder::new(schema);
        let nodes: Vec<_> = (0..n).map(|_| b.add_node(t)).collect();
        for i in 0..n {
            b.add_edge(nodes[i], nodes[(i + 1) % n], r0);
            if i % 2 == 0 {
                b.add_edge(nodes[i], nodes[(i + 3) % n], r1);
            }
        }
        b.build()
    }

    #[test]
    fn fractions_roughly_respected() {
        let g = ring_graph(100);
        let mut rng = StdRng::seed_from_u64(1);
        let split = EdgeSplit::default_split(&g, &mut rng);
        let total = g.num_edges();
        let train = split.train_graph.num_edges();
        assert!(
            (train as f64 / total as f64 - 0.85).abs() < 0.05,
            "train fraction {}",
            train as f64 / total as f64
        );
        let test_pos = split.test_positives().count();
        assert!(
            (test_pos as f64 / total as f64 - 0.10).abs() < 0.05,
            "test fraction {}",
            test_pos as f64 / total as f64
        );
    }

    #[test]
    fn train_graph_preserves_nodes_and_schema() {
        let g = ring_graph(40);
        let mut rng = StdRng::seed_from_u64(2);
        let split = EdgeSplit::default_split(&g, &mut rng);
        assert_eq!(split.train_graph.num_nodes(), g.num_nodes());
        assert_eq!(split.train_graph.schema(), g.schema());
    }

    #[test]
    fn eval_positives_are_real_edges_and_not_in_train() {
        let g = ring_graph(60);
        let mut rng = StdRng::seed_from_u64(3);
        let split = EdgeSplit::default_split(&g, &mut rng);
        for e in split.val.iter().chain(&split.test) {
            if e.label {
                assert!(g.has_edge(e.u, e.v, e.relation), "positive not in graph");
                assert!(
                    !split.train_graph.has_edge(e.u, e.v, e.relation),
                    "leak: eval edge in train graph"
                );
            }
        }
    }

    #[test]
    fn negatives_are_nonedges_with_matched_type() {
        let g = ring_graph(60);
        let mut rng = StdRng::seed_from_u64(4);
        let split = EdgeSplit::default_split(&g, &mut rng);
        for e in split.val.iter().chain(&split.test) {
            if !e.label {
                assert!(
                    !g.has_edge(e.u, e.v, e.relation),
                    "negative is actually an edge"
                );
            }
        }
    }

    #[test]
    fn negatives_roughly_balance_positives() {
        let g = ring_graph(100);
        let mut rng = StdRng::seed_from_u64(5);
        let split = EdgeSplit::default_split(&g, &mut rng);
        let pos = split.test.iter().filter(|e| e.label).count();
        let neg = split.test.len() - pos;
        assert!(neg >= pos * 9 / 10, "too few negatives: {neg} vs {pos}");
    }

    #[test]
    fn per_relation_split() {
        // Both relations must appear in test if they have enough edges.
        let g = ring_graph(100);
        let mut rng = StdRng::seed_from_u64(6);
        let split = EdgeSplit::default_split(&g, &mut rng);
        let mut rels: Vec<u16> = split.test.iter().map(|e| e.relation.0).collect();
        rels.sort_unstable();
        rels.dedup();
        assert_eq!(rels, vec![0, 1]);
    }
}
