//! Planted-community edge sampling — the shared machinery behind all five
//! dataset generators.
//!
//! Every synthetic graph is built from the same latent structure:
//!
//! * nodes are partitioned into latent *communities* (topics, genres,
//!   interest clusters);
//! * node *activity* follows a heavy-tailed distribution, producing the
//!   skewed degree profiles real interaction logs show;
//! * an edge under relation `r` connects two nodes of the *same community*
//!   with probability `1 − noise_r`, and a uniformly random pair otherwise.
//!
//! Relations drawn over the **same** community assignment are correlated —
//! observing `u ~ v` under a dense relation is evidence for `u ~ v` under a
//! sparse one. That is precisely the inter-relationship signal HybridGNN's
//! randomized exploration is designed to exploit (and what the paper's
//! Table VII uplift experiment measures), so the generators preserve the
//! property the headline results depend on.

use rand::Rng;

use mhg_graph::NodeId;
use mhg_sampling::AliasTable;

/// Community assignment for a set of nodes.
#[derive(Clone, Debug)]
pub struct Communities {
    /// `membership[i]` = community of node `nodes[i]` (group-local index).
    membership: Vec<u16>,
    num_communities: usize,
}

impl Communities {
    /// Assigns `n` nodes to `k` communities uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > u16::MAX`.
    pub fn random<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k > 0 && k <= u16::MAX as usize, "bad community count {k}");
        let membership = (0..n).map(|_| rng.gen_range(0..k) as u16).collect();
        Self {
            membership,
            num_communities: k,
        }
    }

    /// Wraps an explicit membership vector.
    ///
    /// # Panics
    ///
    /// Panics if any membership exceeds `k` or `k == 0`.
    pub fn from_membership(membership: Vec<u16>, k: usize) -> Self {
        assert!(k > 0, "need at least one community");
        assert!(
            membership.iter().all(|&m| (m as usize) < k),
            "membership out of range"
        );
        Self {
            membership,
            num_communities: k,
        }
    }

    /// Number of communities.
    pub fn num_communities(&self) -> usize {
        self.num_communities
    }

    /// Community of local node index `i`.
    pub fn of(&self, i: usize) -> u16 {
        self.membership[i]
    }

    /// Number of assigned nodes.
    pub fn len(&self) -> usize {
        self.membership.len()
    }

    /// Whether no nodes are assigned.
    pub fn is_empty(&self) -> bool {
        self.membership.is_empty()
    }
}

/// Heavy-tailed activity weights: `w_i = (rank_i + 1)^(-alpha)`, with ranks
/// shuffled so activity is independent of node id.
pub fn zipf_activity<R: Rng + ?Sized>(n: usize, alpha: f32, rng: &mut R) -> Vec<f32> {
    use rand::seq::SliceRandom;
    let mut ranks: Vec<usize> = (0..n).collect();
    ranks.shuffle(rng);
    ranks
        .into_iter()
        .map(|r| ((r + 1) as f32).powf(-alpha))
        .collect()
}

/// One side of an edge-sampling group: a node list with per-community alias
/// tables over activity weights.
struct Side {
    nodes: Vec<NodeId>,
    /// Per community: (alias over member positions, member positions).
    by_community: Vec<Option<(AliasTable, Vec<u32>)>>,
    /// Alias over the whole group (for the noise branch).
    all: AliasTable,
}

impl Side {
    fn new(nodes: Vec<NodeId>, comms: &Communities, activity: &[f32]) -> Self {
        assert_eq!(nodes.len(), comms.len());
        assert_eq!(nodes.len(), activity.len());
        let k = comms.num_communities();
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); k];
        for i in 0..nodes.len() {
            members[comms.of(i) as usize].push(i as u32);
        }
        let by_community = members
            .into_iter()
            .map(|m| {
                if m.is_empty() {
                    None
                } else {
                    let w: Vec<f32> = m.iter().map(|&i| activity[i as usize]).collect();
                    Some((AliasTable::new(&w), m))
                }
            })
            .collect();
        let all = AliasTable::new(activity);
        Self {
            nodes,
            by_community,
            all,
        }
    }

    fn sample_in_community<R: Rng + ?Sized>(&self, c: usize, rng: &mut R) -> Option<NodeId> {
        let (table, members) = self.by_community[c].as_ref()?;
        let pos = members[table.sample(rng)];
        Some(self.nodes[pos as usize])
    }

    fn sample_any<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        self.nodes[self.all.sample(rng)]
    }
}

/// Samples planted-community edges between two node groups (which may be the
/// same group for unipartite relations).
pub struct EdgeSampler {
    left: Side,
    right: Side,
    community_weights: AliasTable,
    noise: f32,
}

impl EdgeSampler {
    /// Creates a sampler.
    ///
    /// * `left` / `right` — node groups for the two endpoints. For a
    ///   unipartite relation pass the same list twice.
    /// * `left_comms` / `right_comms` — community assignments (must share
    ///   `num_communities`).
    /// * `noise` — probability that the right endpoint ignores the
    ///   community (uniform random), in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched community counts, empty groups, or `noise`
    /// outside `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        left: Vec<NodeId>,
        left_comms: &Communities,
        left_activity: &[f32],
        right: Vec<NodeId>,
        right_comms: &Communities,
        right_activity: &[f32],
        noise: f32,
    ) -> Self {
        assert!(
            !left.is_empty() && !right.is_empty(),
            "empty endpoint group"
        );
        assert_eq!(
            left_comms.num_communities(),
            right_comms.num_communities(),
            "community spaces must match"
        );
        assert!((0.0..=1.0).contains(&noise), "noise out of range");

        let k = left_comms.num_communities();
        let left_side = Side::new(left, left_comms, left_activity);
        let right_side = Side::new(right, right_comms, right_activity);

        // A community is sampleable when both sides have members; weight by
        // the smaller side so tiny communities don't dominate.
        let weights: Vec<f32> = (0..k)
            .map(|c| {
                let l = left_side.by_community[c]
                    .as_ref()
                    .map_or(0, |(_, m)| m.len());
                let r = right_side.by_community[c]
                    .as_ref()
                    .map_or(0, |(_, m)| m.len());
                if l == 0 || r == 0 {
                    0.0
                } else {
                    (l.min(r)) as f32
                }
            })
            .collect();
        assert!(
            weights.iter().any(|&w| w > 0.0),
            "no community populated on both sides"
        );

        Self {
            left: left_side,
            right: right_side,
            community_weights: AliasTable::new(&weights),
            noise,
        }
    }

    /// Draws one candidate edge (may be a duplicate or self-pair; the graph
    /// builder deduplicates and the caller filters self-pairs).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (NodeId, NodeId) {
        let c = self.community_weights.sample(rng);
        let u = self
            .left
            .sample_in_community(c, rng)
            .unwrap_or_else(|| self.left.sample_any(rng));
        let v = if rng.gen::<f32>() < self.noise {
            self.right.sample_any(rng)
        } else {
            self.right
                .sample_in_community(c, rng)
                .unwrap_or_else(|| self.right.sample_any(rng))
        };
        (u, v)
    }

    /// Draws approximately `count` *distinct* non-self edges (bounded
    /// attempts: gives up after `8 × count` draws, so saturated graphs don't
    /// loop forever).
    pub fn sample_edges<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
    ) -> Vec<(NodeId, NodeId)> {
        let mut seen = std::collections::HashSet::with_capacity(count * 2);
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0usize;
        let max_attempts = count.saturating_mul(8).max(64);
        while out.len() < count && attempts < max_attempts {
            attempts += 1;
            let (u, v) = self.sample(rng);
            if u == v {
                continue;
            }
            let key = if u <= v { (u.0, v.0) } else { (v.0, u.0) };
            if seen.insert(key) {
                out.push((u, v));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    #[test]
    fn communities_cover_all_nodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = Communities::random(100, 7, &mut rng);
        assert_eq!(c.len(), 100);
        assert!((0..100).all(|i| (c.of(i) as usize) < 7));
    }

    #[test]
    fn zipf_is_decreasing_in_rank() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = zipf_activity(50, 0.8, &mut rng);
        assert_eq!(w.len(), 50);
        let mut sorted = w.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        // Max weight is rank 0: 1.0; min is 50^-0.8.
        assert!((sorted[0] - 1.0).abs() < 1e-6);
        assert!(sorted[49] < 0.1);
    }

    #[test]
    fn zero_noise_keeps_edges_within_communities() {
        let mut rng = StdRng::seed_from_u64(3);
        let nodes = ids(0..60);
        let comms = Communities::random(60, 4, &mut rng);
        let act = zipf_activity(60, 0.5, &mut rng);
        let sampler = EdgeSampler::new(nodes.clone(), &comms, &act, nodes, &comms, &act, 0.0);
        for _ in 0..500 {
            let (u, v) = sampler.sample(&mut rng);
            assert_eq!(
                comms.of(u.index()),
                comms.of(v.index()),
                "cross-community edge at noise 0"
            );
        }
    }

    #[test]
    fn full_noise_crosses_communities() {
        let mut rng = StdRng::seed_from_u64(4);
        let nodes = ids(0..60);
        let comms = Communities::random(60, 4, &mut rng);
        let act = vec![1.0; 60];
        let sampler = EdgeSampler::new(nodes.clone(), &comms, &act, nodes, &comms, &act, 1.0);
        let crossings = (0..1000)
            .filter(|_| {
                let (u, v) = sampler.sample(&mut rng);
                comms.of(u.index()) != comms.of(v.index())
            })
            .count();
        // With 4 equal communities, random pairs cross ~75% of the time.
        assert!(crossings > 500, "crossings {crossings}");
    }

    #[test]
    fn sample_edges_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        let nodes = ids(0..20);
        let comms = Communities::random(20, 2, &mut rng);
        let act = vec![1.0; 20];
        let sampler = EdgeSampler::new(nodes.clone(), &comms, &act, nodes, &comms, &act, 0.3);
        let edges = sampler.sample_edges(50, &mut rng);
        let mut keys: Vec<_> = edges
            .iter()
            .map(|&(u, v)| if u <= v { (u, v) } else { (v, u) })
            .collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "duplicates returned");
        assert!(edges.iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn saturated_request_terminates() {
        // 4 nodes → at most 6 undirected pairs; asking for 100 must not hang.
        let mut rng = StdRng::seed_from_u64(6);
        let nodes = ids(0..4);
        let comms = Communities::random(4, 1, &mut rng);
        let act = vec![1.0; 4];
        let sampler = EdgeSampler::new(nodes.clone(), &comms, &act, nodes, &comms, &act, 0.0);
        let edges = sampler.sample_edges(100, &mut rng);
        assert!(edges.len() <= 6);
    }

    #[test]
    fn bipartite_sampling_respects_sides() {
        let mut rng = StdRng::seed_from_u64(7);
        let users = ids(0..30);
        let items = ids(30..50);
        let uc = Communities::random(30, 3, &mut rng);
        let ic = Communities::random(20, 3, &mut rng);
        let ua = vec![1.0; 30];
        let ia = vec![1.0; 20];
        let sampler = EdgeSampler::new(users, &uc, &ua, items, &ic, &ia, 0.2);
        for _ in 0..300 {
            let (u, v) = sampler.sample(&mut rng);
            assert!(u.0 < 30 && (30..50).contains(&v.0));
        }
    }
}
