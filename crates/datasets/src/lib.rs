//! Synthetic multiplex heterogeneous datasets calibrated to the five graphs
//! in the HybridGNN paper's Table II.
//!
//! The paper evaluates on Amazon, YouTube, IMDb, Taobao and a proprietary
//! Kuaishou log. None ship with this reproduction, so each is substituted by
//! a planted-community generator that preserves the property the paper's
//! experiments measure (see `DESIGN.md` §1 for the per-dataset argument):
//!
//! * matching type/relation structure and (scaled) node/edge counts;
//! * heavy-tailed degrees;
//! * correlated relations over shared communities — the inter-relationship
//!   signal HybridGNN exploits;
//! * graded relation density (Taobao/Kuaishou), making sparse relations
//!   predictable from dense ones.
//!
//! # Example
//!
//! ```
//! use mhg_datasets::{DatasetKind, EdgeSplit};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let dataset = DatasetKind::Taobao.generate(0.01, 42);
//! assert_eq!(dataset.graph.schema().num_relations(), 4);
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
//! assert!(split.test.iter().any(|e| e.label) && split.test.iter().any(|e| !e.label));
//! ```

mod amazon;
mod dataset;
mod imdb;
mod kuaishou;
mod split;
mod synth;
mod taobao;
mod tier;
mod youtube;

pub use dataset::{Dataset, DatasetKind};
pub use split::{EdgeSplit, LabeledEdge, SplitConfig};
pub use synth::{zipf_activity, Communities, EdgeSampler};
pub use tier::SyntheticTier;
