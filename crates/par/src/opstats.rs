//! Process-global kernel operation counters.
//!
//! The tensor kernels (and the pool itself) call [`bump`] on every entry;
//! the counts feed the observability layer's stderr summary. Counting is
//! compiled in only under the `checked` feature (the same switch as the
//! runtime sanitizer) so release training loops pay nothing — without it,
//! [`bump`] is an empty inline function and [`snapshot`] reads all zeros.
//!
//! The counters are deliberately *global* rather than per-`Obs`-handle:
//! the kernels sit below the observability crate in the dependency graph,
//! and a handful of relaxed atomics is the entire cost.

use std::sync::atomic::AtomicU64;
#[cfg(feature = "checked")]
use std::sync::atomic::Ordering;

/// Kernel operations counted by the checked-mode instrumentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelOp {
    /// `mhg_tensor::ops::matmul`.
    Matmul,
    /// `mhg_tensor::ops::matmul_transposed`.
    MatmulTransposed,
    /// `mhg_tensor::ops::transpose`.
    Transpose,
    /// `mhg_tensor::ops::map`.
    Map,
    /// `mhg_tensor::ops::zip_map`.
    ZipMap,
    /// `mhg_tensor::ops::softmax_rows`.
    SoftmaxRows,
    /// `mhg_tensor::ops::gather_rows`.
    GatherRows,
    /// `mhg_tensor::ops::scatter_add_rows`.
    ScatterAddRows,
    /// A multi-worker fan-out in the pool (`par_map_collect` et al with
    /// more than one worker).
    ParallelJobs,
}

const N_OPS: usize = 9;

const NAMES: [&str; N_OPS] = [
    "matmul",
    "matmul_transposed",
    "transpose",
    "map",
    "zip_map",
    "softmax_rows",
    "gather_rows",
    "scatter_add_rows",
    "parallel_jobs",
];

static COUNTS: [AtomicU64; N_OPS] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

impl KernelOp {
    /// The metric name of this op (`matmul`, `zip_map`, …).
    pub fn name(self) -> &'static str {
        NAMES[self as usize]
    }
}

/// Counts one execution of `op`. No-op unless the `checked` feature is
/// enabled.
#[inline]
pub fn bump(op: KernelOp) {
    #[cfg(feature = "checked")]
    COUNTS[op as usize].fetch_add(1, Ordering::Relaxed);
    #[cfg(not(feature = "checked"))]
    let _ = op;
}

/// A point-in-time copy of every op counter as `(name, count)`, in a fixed
/// order. All zeros unless the `checked` feature is enabled.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    NAMES
        .iter()
        .zip(COUNTS.iter())
        .map(|(name, c)| (*name, c.load(std::sync::atomic::Ordering::Relaxed)))
        .collect()
}

/// Resets every op counter to zero (test isolation).
pub fn reset() {
    for c in COUNTS.iter() {
        c.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_every_op_name() {
        let snap = snapshot();
        assert_eq!(snap.len(), N_OPS);
        assert_eq!(snap[0].0, "matmul");
        assert_eq!(snap[N_OPS - 1].0, "parallel_jobs");
        assert_eq!(KernelOp::ZipMap.name(), "zip_map");
    }

    #[cfg(feature = "checked")]
    #[test]
    fn bump_counts_under_checked() {
        // Other tests may bump concurrently; assert a relative increase on
        // an op nothing else in this crate's tests touches.
        let before = snapshot()
            .iter()
            .find(|(n, _)| *n == "scatter_add_rows")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        bump(KernelOp::ScatterAddRows);
        bump(KernelOp::ScatterAddRows);
        let after = snapshot()
            .iter()
            .find(|(n, _)| *n == "scatter_add_rows")
            .map(|(_, c)| *c)
            .unwrap_or(0);
        assert_eq!(after - before, 2);
    }
}
