//! Deterministic scoped worker pool for the HybridGNN workspace.
//!
//! Every primitive in this crate obeys one contract: **the thread count is a
//! throughput knob, never a semantics knob**. Work is partitioned into fixed
//! ranges by [`split_range`], each worker writes into a pre-split disjoint
//! output slice, and reductions combine per-worker partials in fixed worker
//! order — so every `f32` result is bit-identical whether the pool runs with
//! 1 thread or 64.
//!
//! The pool is std-only (`std::thread::scope`, no persistent threads). The
//! worker count resolves lazily from the `MHG_THREADS` environment variable,
//! falling back to [`std::thread::available_parallelism`], and can be
//! overridden per scope with [`scoped_threads`] / [`ParConfig::install`] or
//! per call in tests with [`with_threads`].
//!
//! Because results never depend on the worker count, races on the global
//! thread-count cell are benign: a kernel that observes a stale count only
//! runs with different parallelism, not to a different answer.

pub mod opstats;

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread;

/// Minimum estimated scalar operations a kernel must carry before it fans
/// out to a second worker. Below this, thread spawn/join overhead dominates
/// and the kernel runs inline on the caller's thread. The threshold can
/// never change a result — only where it is computed.
const MIN_WORK_PER_WORKER: usize = 16_384;

/// Resolved worker count; 0 means "not resolved yet".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_threads`] overrides so concurrent tests with different
/// explicit thread counts don't interleave their overrides.
static OVERRIDE: Mutex<()> = Mutex::new(());

fn resolve_from_env() -> usize {
    std::env::var("MHG_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Returns the worker count the pool is currently sized to.
///
/// Resolution order: the last [`scoped_threads`] / [`ParConfig::install`]
/// override still in scope, else the `MHG_THREADS` environment variable,
/// else [`std::thread::available_parallelism`] (minimum 1).
pub fn current_threads() -> usize {
    let n = THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = resolve_from_env();
    THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Restores the previous pool size when dropped; returned by
/// [`scoped_threads`] and [`ParConfig::install`].
#[must_use = "dropping the guard immediately restores the previous thread count"]
pub struct ThreadsGuard {
    prev: Option<usize>,
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            THREADS.store(prev, Ordering::Relaxed);
        }
    }
}

/// Sizes the pool to `threads` workers until the returned guard drops.
///
/// `threads == 0` means "inherit": the call is a no-op and the current
/// setting (environment or default) stays in effect. This is the hook the
/// training pipeline uses to honor a per-run thread-count config.
pub fn scoped_threads(threads: usize) -> ThreadsGuard {
    if threads == 0 {
        return ThreadsGuard { prev: None };
    }
    let prev = current_threads();
    THREADS.store(threads, Ordering::Relaxed);
    ThreadsGuard { prev: Some(prev) }
}

/// Runs `f` with the pool sized to exactly `threads` workers.
///
/// Overrides are serialized through a global mutex so that concurrent tests
/// asserting serial-vs-parallel parity don't stomp each other's setting.
/// Results are thread-count-invariant by contract, so this only matters for
/// tests that *measure* or *compare* specific thread counts.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let _lock = OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner);
    let _guard = scoped_threads(threads.max(1));
    f()
}

/// Worker-pool configuration, mirroring the `MHG_THREADS` environment knob
/// as a plain value so it can live inside model configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    threads: usize,
}

impl ParConfig {
    /// A config with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A config resolved from `MHG_THREADS` / available parallelism.
    pub fn from_env() -> Self {
        Self::new(resolve_from_env())
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Installs this config as the pool size until the guard drops.
    pub fn install(&self) -> ThreadsGuard {
        scoped_threads(self.threads)
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The fixed partition of `total` work units into `parts` ranges: range
/// `idx` of the unique split where every range has `total / parts` units
/// and the first `total % parts` ranges take one extra.
///
/// This partition depends only on `(total, parts)`, never on scheduling,
/// which is the foundation of the determinism contract.
pub fn split_range(total: usize, parts: usize, idx: usize) -> Range<usize> {
    assert!(parts >= 1, "split_range needs at least one part");
    assert!(idx < parts, "partition index {idx} out of {parts} parts");
    let base = total / parts;
    let rem = total % parts;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    start..start + len
}

/// Picks how many workers to fan out to for `units` independent work units
/// of roughly `work_per_unit` scalar operations each.
fn workers(units: usize, work_per_unit: usize) -> usize {
    let threads = current_threads();
    if threads <= 1 || units <= 1 {
        return 1;
    }
    let total = units.saturating_mul(work_per_unit.max(1));
    threads.min(units).min((total / MIN_WORK_PER_WORKER).max(1))
}

/// Joins a scoped worker, propagating any panic to the caller.
fn join<T>(handle: thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(value) => value,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Splits `out` into per-worker chunks of whole units (`unit_len` elements
/// each, e.g. one matrix row) and runs `body(first_unit, chunk)` on each
/// chunk, possibly across worker threads.
///
/// `work_per_unit` is an estimate of the scalar operations needed per unit;
/// small jobs run inline. Partitioning follows [`split_range`] over units,
/// so which elements each invocation of `body` sees — and therefore every
/// result — is independent of the worker count, provided `body` itself only
/// reads shared inputs and writes its own chunk.
pub fn par_chunks_mut<T, F>(out: &mut [T], unit_len: usize, work_per_unit: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(unit_len >= 1, "unit_len must be at least 1");
    assert_eq!(
        out.len() % unit_len,
        0,
        "output length {} is not a multiple of unit length {unit_len}",
        out.len()
    );
    let units = out.len() / unit_len;
    let n_workers = workers(units, work_per_unit);
    if n_workers <= 1 {
        body(0, out);
        return;
    }
    opstats::bump(opstats::KernelOp::ParallelJobs);
    thread::scope(|scope| {
        let body = &body;
        let first_units = split_range(units, n_workers, 0);
        let (head, mut rest) = out.split_at_mut(first_units.len() * unit_len);
        for idx in 1..n_workers {
            let range = split_range(units, n_workers, idx);
            let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(range.len() * unit_len);
            rest = tail;
            let first = range.start;
            scope.spawn(move || body(first, chunk));
        }
        // Chunk 0 runs on the caller's thread; the scope joins the rest.
        body(0, head);
    });
}

/// Runs `a` and `b`, on two threads when the pool has more than one worker,
/// and returns both results. `a` runs on the caller's thread.
pub fn par_join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if current_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, join(hb))
    })
}

/// Evaluates `task(i)` for `i in 0..tasks` — contiguous index blocks per
/// worker — and returns the results in index order, exactly as the serial
/// `(0..tasks).map(task).collect()` would.
pub fn par_map_collect<T, F>(tasks: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let n_workers = current_threads().min(tasks.max(1));
    if n_workers <= 1 || tasks <= 1 {
        return (0..tasks).map(task).collect();
    }
    opstats::bump(opstats::KernelOp::ParallelJobs);
    thread::scope(|scope| {
        let task = &task;
        let handles: Vec<_> = (1..n_workers)
            .map(|idx| {
                let range = split_range(tasks, n_workers, idx);
                scope.spawn(move || range.map(task).collect::<Vec<T>>())
            })
            .collect();
        let mut out = Vec::with_capacity(tasks);
        out.extend(split_range(tasks, n_workers, 0).map(task));
        for handle in handles {
            out.append(&mut join(handle));
        }
        out
    })
}

/// Partitions `0..units` into per-worker ranges, runs `part` on each range,
/// and returns the partial results **in partition order** so callers can
/// reduce them with a fixed, thread-count-driven-but-result-invariant order.
///
/// Used for scatter-add style reductions: each worker builds a partial over
/// its fixed range, and the caller merges partials in range order.
pub fn par_partitions<T, F>(units: usize, total_work: usize, part: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let per_unit = total_work / units.max(1);
    let n_workers = workers(units, per_unit);
    if n_workers <= 1 {
        return vec![part(0..units)];
    }
    opstats::bump(opstats::KernelOp::ParallelJobs);
    thread::scope(|scope| {
        let part = &part;
        let handles: Vec<_> = (1..n_workers)
            .map(|idx| {
                let range = split_range(units, n_workers, idx);
                scope.spawn(move || part(range))
            })
            .collect();
        let mut out = Vec::with_capacity(n_workers);
        out.push(part(split_range(units, n_workers, 0)));
        for handle in handles {
            out.push(join(handle));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_range_covers_everything_once() {
        for total in [0usize, 1, 5, 64, 1000] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut next = 0usize;
                for idx in 0..parts {
                    let r = split_range(total, parts, idx);
                    assert_eq!(r.start, next, "gap at part {idx} of {parts} over {total}");
                    next = r.end;
                }
                assert_eq!(next, total, "partition of {total} into {parts} lost units");
            }
        }
    }

    #[test]
    fn current_threads_is_at_least_one() {
        assert!(current_threads() >= 1);
    }

    #[test]
    fn scoped_threads_overrides_and_restores() {
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            {
                let _inner = scoped_threads(5);
                assert_eq!(current_threads(), 5);
                // 0 = inherit: no change.
                let _nested = scoped_threads(0);
                assert_eq!(current_threads(), 5);
            }
            assert_eq!(current_threads(), 3);
        });
    }

    #[test]
    fn par_chunks_mut_matches_serial_for_every_thread_count() {
        // Big enough to clear the inline-work threshold with unit work 64.
        let units = 1024usize;
        let unit_len = 3usize;
        let expected: Vec<f32> = (0..units)
            .flat_map(|u| (0..unit_len).map(move |j| (u * 10 + j) as f32))
            .collect();
        for threads in [1usize, 2, 3, 7] {
            let mut out = vec![0.0f32; units * unit_len];
            with_threads(threads, || {
                par_chunks_mut(&mut out, unit_len, 64, |first, chunk| {
                    for (local, unit) in chunk.chunks_exact_mut(unit_len).enumerate() {
                        let u = first + local;
                        for (j, v) in unit.iter_mut().enumerate() {
                            *v = (u * 10 + j) as f32;
                        }
                    }
                });
            });
            assert_eq!(out, expected, "divergence at {threads} threads");
        }
    }

    #[test]
    fn par_map_collect_preserves_index_order() {
        for threads in [1usize, 2, 5] {
            let got = with_threads(threads, || par_map_collect(100, |i| i * i));
            let want: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(got, want, "divergence at {threads} threads");
        }
    }

    #[test]
    fn par_partitions_returns_ranges_in_order() {
        for threads in [1usize, 2, 4] {
            let parts = with_threads(threads, || {
                par_partitions(1000, 1000 * 64, |range| range.clone())
            });
            let mut next = 0usize;
            for r in &parts {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, 1000);
        }
    }

    #[test]
    fn par_join_returns_both_results() {
        for threads in [1usize, 2] {
            let (a, b) = with_threads(threads, || par_join(|| 2 + 2, || "ok"));
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn empty_and_degenerate_inputs_are_fine() {
        let mut empty: [f32; 0] = [];
        par_chunks_mut(&mut empty, 4, 100, |_, _| {});
        assert_eq!(par_map_collect(0, |i| i), Vec::<usize>::new());
        let parts = par_partitions(0, 0, |r| r.len());
        assert_eq!(parts, vec![0]);
    }
}
