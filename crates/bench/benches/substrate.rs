//! Criterion micro-benchmarks for the substrates: dense kernels, autograd,
//! CSR queries, alias sampling, and every walker. These back the paper's
//! §III-D time-complexity analysis (hybrid aggregation `∏ Nᵢ·d²` plus the
//! two attention terms) and the DESIGN.md §5 ablation notes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mhg_autograd::{Graph, ParamStore};
use mhg_datasets::DatasetKind;
use mhg_graph::{MetapathScheme, NodeId};
use mhg_sampling::{
    AliasTable, InterRelationshipExplorer, MetapathNeighborSampler, MetapathWalker,
    NegativeSampler, UniformWalker,
};
use mhg_tensor::InitKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_tensor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = InitKind::XavierUniform.init(128, 128, &mut rng);
    let b = InitKind::XavierUniform.init(128, 128, &mut rng);
    c.bench_function("tensor/matmul_128", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });

    let big = InitKind::XavierUniform.init(2048, 128, &mut rng);
    c.bench_function("tensor/softmax_rows_2048x128", |bench| {
        bench.iter(|| black_box(big.softmax_rows()))
    });

    c.bench_function("tensor/mean_rows_2048x128", |bench| {
        bench.iter(|| black_box(big.mean_rows()))
    });
}

fn bench_autograd(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut params = ParamStore::new();
    let emb = params.register("emb", InitKind::XavierUniform.init(1000, 64, &mut rng));
    let wq = params.register("wq", InitKind::XavierUniform.init(64, 64, &mut rng));
    let wk = params.register("wk", InitKind::XavierUniform.init(64, 64, &mut rng));
    let wv = params.register("wv", InitKind::XavierUniform.init(64, 64, &mut rng));
    let indices: Vec<u32> = (0..32).collect();
    let labels: Vec<f32> = (0..16)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();

    // The exact attention block of Eq. 6 with a skip-gram loss: forward +
    // backward, the inner loop of HybridGNN training.
    c.bench_function("autograd/attention_fwd_bwd", |bench| {
        bench.iter(|| {
            let mut g = Graph::new(&params);
            let h = g.gather(emb, &indices);
            let q = {
                let w = g.param(wq);
                g.matmul(h, w)
            };
            let k = {
                let w = g.param(wk);
                g.matmul(h, w)
            };
            let v = {
                let w = g.param(wv);
                g.matmul(h, w)
            };
            let kt = g.transpose(k);
            let logits = g.matmul(q, kt);
            let scaled = g.scale(logits, 0.125);
            let attn = g.softmax_rows(scaled);
            let out = g.matmul(attn, v);
            let left = g.slice_rows(out, 0, 16);
            let right = g.slice_rows(out, 16, 32);
            let scores = g.row_dot(left, right);
            let loss = g.logistic_loss(scores, &labels);
            black_box(g.backward(loss))
        })
    });
}

fn bench_graph(c: &mut Criterion) {
    let dataset = DatasetKind::Taobao.generate(0.05, 3);
    let graph = dataset.graph;
    let r = mhg_graph::RelationId(0);
    let nodes: Vec<NodeId> = graph.nodes().collect();

    c.bench_function("graph/neighbors_scan", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for &v in &nodes {
                total += black_box(graph.neighbors(v, r)).len();
            }
            total
        })
    });

    c.bench_function("graph/has_edge_probe", |bench| {
        let u = nodes[0];
        bench.iter(|| {
            let mut hits = 0usize;
            for &v in nodes.iter().take(1000) {
                if black_box(graph.has_edge(u, v, r)) {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_sampling(c: &mut Criterion) {
    let dataset = DatasetKind::Taobao.generate(0.05, 4);
    let graph = dataset.graph;
    let mut rng = StdRng::seed_from_u64(5);

    let weights: Vec<f32> = (1..=10_000).map(|i| (i as f32).powf(-0.75)).collect();
    let table = AliasTable::new(&weights);
    c.bench_function("sampling/alias_draw", |bench| {
        bench.iter(|| black_box(table.sample(&mut rng)))
    });

    // Linear-scan baseline for the alias table (DESIGN.md §5 ablation).
    let cumsum: Vec<f32> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total = *cumsum.last().unwrap();
    c.bench_function("sampling/linear_scan_draw", |bench| {
        bench.iter(|| {
            use rand::Rng;
            let target = rng.gen::<f32>() * total;
            black_box(cumsum.partition_point(|&x| x < target))
        })
    });

    let walker = UniformWalker::new(&graph);
    let start = graph.nodes().find(|&v| graph.total_degree(v) > 0).unwrap();
    c.bench_function("sampling/uniform_walk_10", |bench| {
        bench.iter(|| black_box(walker.walk(start, 10, &mut rng)))
    });

    let schema = graph.schema();
    let user = schema.node_type_id("user").unwrap();
    let item = schema.node_type_id("item").unwrap();
    let scheme = MetapathScheme::intra(vec![user, item, user], mhg_graph::RelationId(0));
    let mstart = graph
        .nodes_of_type(user)
        .iter()
        .copied()
        .find(|&v| graph.degree(v, mhg_graph::RelationId(0)) > 0)
        .unwrap();
    let mwalker = MetapathWalker::new(&graph, scheme.clone()).unwrap();
    c.bench_function("sampling/metapath_walk_10", |bench| {
        bench.iter(|| black_box(mwalker.walk(mstart, 10, &mut rng)))
    });

    let explorer = InterRelationshipExplorer::new(&graph);
    c.bench_function("sampling/exploration_layers_L2", |bench| {
        bench.iter(|| black_box(explorer.layered_neighbors(mstart, 2, 4, 16, &mut rng)))
    });

    let sampler = MetapathNeighborSampler::new(&graph, 4, 16);
    c.bench_function("sampling/metapath_layers_K2", |bench| {
        bench.iter(|| black_box(sampler.sample(mstart, &scheme, &mut rng)))
    });

    let negatives = NegativeSampler::new(&graph);
    c.bench_function("sampling/negative_x5", |bench| {
        bench.iter(|| black_box(negatives.sample_many(item, mstart, 5, &mut rng)))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    use rand::Rng;
    let scores: Vec<f32> = (0..10_000).map(|_| rng.gen()).collect();
    let labels: Vec<bool> = (0..10_000).map(|_| rng.gen()).collect();
    c.bench_function("eval/roc_auc_10k", |bench| {
        bench.iter(|| black_box(mhg_eval::roc_auc(&scores, &labels)))
    });
    c.bench_function("eval/pr_auc_10k", |bench| {
        bench.iter(|| black_box(mhg_eval::pr_auc(&scores, &labels)))
    });
}

fn bench_persistence(c: &mut Criterion) {
    let dataset = DatasetKind::Amazon.generate(0.05, 7);
    let encoded = mhg_graph::persist::encode(&dataset.graph);
    c.bench_function("graph/persist_encode", |bench| {
        bench.iter(|| black_box(mhg_graph::persist::encode(&dataset.graph)))
    });
    c.bench_function("graph/persist_decode", |bench| {
        bench.iter(|| black_box(mhg_graph::persist::decode(&encoded).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tensor, bench_autograd, bench_graph, bench_sampling, bench_metrics,
              bench_persistence
}
criterion_main!(benches);
