//! Criterion end-to-end training benchmarks: one full fit of each model
//! family on a miniature multiplex graph, plus HybridGNN ablation-cost
//! comparisons (what does each module cost at runtime?).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hybridgnn::{HybridConfig, HybridGnn};
use mhg_datasets::{Dataset, DatasetKind, EdgeSplit};
use mhg_models::{CommonConfig, DeepWalk, FitData, Gatne, Gcn, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_setup() -> (Dataset, EdgeSplit) {
    let dataset = DatasetKind::Taobao.generate(0.004, 11);
    let mut rng = StdRng::seed_from_u64(12);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    (dataset, split)
}

fn tiny_common() -> CommonConfig {
    CommonConfig {
        epochs: 2,
        patience: 10,
        ..CommonConfig::fast()
    }
}

fn fit<M: LinkPredictor>(mut model: M, dataset: &Dataset, split: &EdgeSplit) -> M {
    let mut rng = StdRng::seed_from_u64(13);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    model.fit(&data, &mut rng).expect("fit must succeed");
    model
}

fn bench_model_fits(c: &mut Criterion) {
    let (dataset, split) = tiny_setup();
    let mut group = c.benchmark_group("fit_2_epochs");
    group.sample_size(10);

    group.bench_function("deepwalk", |b| {
        b.iter(|| black_box(fit(DeepWalk::new(tiny_common()), &dataset, &split)))
    });
    group.bench_function("gcn", |b| {
        b.iter(|| black_box(fit(Gcn::new(tiny_common()), &dataset, &split)))
    });
    group.bench_function("gatne", |b| {
        b.iter(|| black_box(fit(Gatne::new(tiny_common()), &dataset, &split)))
    });
    group.bench_function("hybridgnn", |b| {
        b.iter(|| {
            let cfg = HybridConfig {
                common: tiny_common(),
                ..HybridConfig::default()
            };
            black_box(fit(HybridGnn::new(cfg), &dataset, &split))
        })
    });
    group.finish();
}

/// What each HybridGNN module costs: the ablations are also a runtime
/// comparison (complexity analysis §III-D).
fn bench_hybrid_ablation_cost(c: &mut Criterion) {
    let (dataset, split) = tiny_setup();
    let mut group = c.benchmark_group("hybridgnn_module_cost");
    group.sample_size(10);

    let variants: Vec<(&str, HybridConfig)> = vec![
        (
            "full",
            HybridConfig {
                common: tiny_common(),
                ..HybridConfig::default()
            },
        ),
        (
            "no_metapath_attn",
            HybridConfig {
                common: tiny_common(),
                ..HybridConfig::default()
            }
            .without_metapath_attention(),
        ),
        (
            "no_randomized",
            HybridConfig {
                common: tiny_common(),
                ..HybridConfig::default()
            }
            .without_randomized_exploration(),
        ),
        (
            "depth_3",
            HybridConfig {
                common: tiny_common(),
                exploration_depth: 3,
                ..HybridConfig::default()
            },
        ),
    ];

    for (name, cfg) in variants {
        group.bench_function(name, |b| {
            b.iter(|| black_box(fit(HybridGnn::new(cfg.clone()), &dataset, &split)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_fits, bench_hybrid_ablation_cost);
criterion_main!(benches);
