//! Table IV — link prediction on Amazon, YouTube and IMDb: all ten models,
//! five metrics, optional multi-run t-test (`--runs N`).

use mhg_bench::{link_prediction_experiment, ExpConfig};
use mhg_datasets::DatasetKind;

fn main() {
    let cfg = ExpConfig::from_args();
    println!(
        "Table IV — link prediction (scale {}, dim {}, epochs {}, runs {})",
        cfg.scale, cfg.dim, cfg.epochs, cfg.runs
    );
    link_prediction_experiment(
        &cfg,
        &[DatasetKind::Amazon, DatasetKind::YouTube, DatasetKind::Imdb],
    );
    mhg_bench::finish_metrics(&cfg);
}
