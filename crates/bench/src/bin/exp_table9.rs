//! Table IX — PR@K by degree cluster, GATNE vs HybridGNN, on IMDb: the
//! paper's case study showing HybridGNN's advantage grows with node degree.

use hybridgnn::HybridGnn;
use mhg_bench::{prepare, ExpConfig};
use mhg_datasets::DatasetKind;
use mhg_eval::{degree_buckets, topk_metrics};
use mhg_models::{ranking_queries, FitData, Gatne, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_args();
    let kind = cfg
        .dataset_set(&[DatasetKind::Imdb])
        .first()
        .copied()
        .unwrap();
    println!(
        "Table IX — PR@{} by degree cluster on {} (scale {}, epochs {})",
        cfg.k,
        kind.name(),
        cfg.scale,
        cfg.epochs
    );

    let (dataset, split) = prepare(kind, &cfg, 0);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };

    let mut models: Vec<Box<dyn LinkPredictor>> = vec![
        Box::new(Gatne::new(cfg.common())),
        Box::new(HybridGnn::new(cfg.hybrid())),
    ];

    // Shared buckets across models: computed from the first model's query
    // sources so rows are comparable.
    let mut per_model_rows: Vec<Vec<f64>> = Vec::new();
    let mut bucket_labels: Vec<String> = Vec::new();

    for model in &mut models {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x77aa);
        model.fit(&data, &mut rng).expect("fit must succeed");
        let mut qrng = StdRng::seed_from_u64(cfg.seed ^ 0x99bb);
        let queries = ranking_queries(
            model.as_ref(),
            &dataset.graph,
            &split.test,
            cfg.pool,
            cfg.max_queries * 4,
            &mut qrng,
        );
        let sources: Vec<mhg_graph::NodeId> = queries.iter().map(|q| q.source).collect();
        let buckets = degree_buckets(&dataset.graph, &sources, 4);
        if bucket_labels.is_empty() {
            bucket_labels = buckets.iter().map(|b| b.label()).collect();
        }
        let row: Vec<f64> = buckets
            .iter()
            .map(|bucket| {
                let qs: Vec<_> = queries
                    .iter()
                    .filter(|q| bucket.nodes.contains(&q.source))
                    .map(|q| q.query.clone())
                    .collect();
                topk_metrics(&qs, cfg.k).precision
            })
            .collect();
        per_model_rows.push(row);
    }

    print!("{:<12}", "model");
    for label in &bucket_labels {
        print!(" {:>14}", label);
    }
    println!();
    for (model, row) in models.iter().zip(&per_model_rows) {
        print!("{:<12}", model.name());
        for v in row {
            print!(" {v:>14.4}");
        }
        println!();
    }
    print!("{:<12}", "improvement");
    for (g, h) in per_model_rows[0].iter().zip(&per_model_rows[1]) {
        if *g > 0.0 {
            print!(" {:>13.2}%", 100.0 * (h - g) / g);
        } else {
            print!(" {:>14}", "-");
        }
    }
    println!();
    mhg_bench::finish_metrics(&cfg);
}
