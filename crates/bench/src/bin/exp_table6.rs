//! Table VI — effect of the randomized-exploration search depth `L`:
//! HybridGNN with L ∈ {1, 2, 3} on Amazon, YouTube, IMDb, Taobao
//! (ROC-AUC and F1 per cell, as in the paper).

use hybridgnn::HybridGnn;
use mhg_bench::{prepare, run_model, ExpConfig};
use mhg_datasets::DatasetKind;

fn main() {
    let cfg = ExpConfig::from_args();
    let datasets = cfg.dataset_set(&[
        DatasetKind::Amazon,
        DatasetKind::YouTube,
        DatasetKind::Imdb,
        DatasetKind::Taobao,
    ]);
    println!(
        "Table VI — exploration depth sweep (scale {}, epochs {})",
        cfg.scale, cfg.epochs
    );
    print!("{:<18}", "depth");
    for kind in &datasets {
        print!(" {:>16}", kind.name());
    }
    println!("\n{:<18} ROC-AUC / F1 (%) per dataset", "");

    for depth in 1..=3usize {
        print!("HybridGNN (L={depth}) ");
        for &kind in &datasets {
            let (dataset, split) = prepare(kind, &cfg, 0);
            let mut hybrid_cfg = cfg.hybrid();
            hybrid_cfg.exploration_depth = depth;
            let mut model = HybridGnn::new(hybrid_cfg);
            let m = run_model(&mut model, &dataset, &split, &cfg, 0).expect("fit must succeed");
            print!(" {:>7.2}/{:>7.2}", m.roc_auc, m.f1);
        }
        println!();
    }
    mhg_bench::finish_metrics(&cfg);
}
