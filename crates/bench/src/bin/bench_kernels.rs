//! Kernel and epoch benchmarks for the `mhg-par` pool: times every ported
//! kernel plus one HybridGNN training epoch at 1 thread vs N threads and
//! writes machine-readable baselines to `BENCH_kernels.json` at the repo
//! root, so future PRs can measure perf regressions against this PR.
//!
//! Flags: `--scale F` (dataset scale for the epoch benchmark, default 0.25),
//! `--threads N` (the "N threads" column, default `max(MHG_THREADS, 4)`),
//! `--out PATH` (output path, default `<repo root>/BENCH_kernels.json`).
//!
//! Determinism note: the pool guarantees bit-identical results for any
//! thread count, so these numbers are pure throughput — see DESIGN.md §2.10.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use hybridgnn::{HybridConfig, HybridGnn};
use mhg_datasets::{DatasetKind, EdgeSplit};
use mhg_models::{CommonConfig, FitData, LinkPredictor};
use mhg_tensor::{InitKind, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One measurement row of the emitted JSON.
struct Entry {
    op: String,
    size: String,
    threads: usize,
    ns_per_iter: f64,
    speedup_vs_1t: f64,
}

/// Times `f` adaptively (~0.2 s per measurement after one warmup call) and
/// returns ns per iteration.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_secs_f64();
    let iters = (0.2 / once.max(1e-9)).clamp(1.0, 1000.0) as usize;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// Benchmarks `f` at 1 thread and `threads` threads, appending both rows.
fn bench(entries: &mut Vec<Entry>, op: &str, size: &str, threads: usize, f: impl Fn()) {
    let serial = mhg_par::with_threads(1, || time_ns(&f));
    entries.push(Entry {
        op: op.to_string(),
        size: size.to_string(),
        threads: 1,
        ns_per_iter: serial,
        speedup_vs_1t: 1.0,
    });
    let parallel = mhg_par::with_threads(threads, || time_ns(&f));
    entries.push(Entry {
        op: op.to_string(),
        size: size.to_string(),
        threads,
        ns_per_iter: parallel,
        speedup_vs_1t: serial / parallel.max(1e-9),
    });
    eprintln!(
        "{op:26} {size:24} 1t {:>12.0} ns   {threads}t {:>12.0} ns   speedup {:.2}x",
        serial,
        parallel,
        serial / parallel.max(1e-9)
    );
}

/// The seed repo's matmul inner loop (with the `a_ik == 0.0` skip branch),
/// kept here as a reference point for the branch-removal satellite: the
/// `matmul_seed_scalar` rows measure how much the branch-free kernel gains
/// from auto-vectorisation alone, independent of threading.
fn seed_scalar_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(m, n);
    let av = a.as_slice();
    let bv = b.as_slice();
    let c = out.as_mut_slice();
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &bv[kk * n..(kk + 1) * n];
            for (c_v, b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ik * b_v;
            }
        }
    }
    out
}

fn epoch_secs(scale: f64, threads: usize) -> f64 {
    mhg_par::with_threads(threads, || {
        let dataset = DatasetKind::Amazon.generate(scale, 7);
        let mut rng = StdRng::seed_from_u64(7);
        let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
        let mut cfg = HybridConfig {
            common: CommonConfig::default(),
            ..HybridConfig::default()
        };
        cfg.common.epochs = 1;
        cfg.common.patience = 10;
        let mut model = HybridGnn::new(cfg);
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        let start = Instant::now();
        let report = model.fit(&data, &mut rng).expect("fit must succeed");
        assert!(report.epochs_run > 0, "epoch benchmark ran zero epochs");
        start.elapsed().as_secs_f64()
    })
}

fn flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let scale: f64 = flag("--scale").and_then(|s| s.parse().ok()).unwrap_or(0.25);
    let threads: usize = flag("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| mhg_par::current_threads().max(4));
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let out_path: PathBuf = flag("--out").map_or_else(
        || {
            // crates/bench → workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json")
        },
        PathBuf::from,
    );

    let mut rng = StdRng::seed_from_u64(2022);
    let init = InitKind::Uniform { limit: 1.0 };
    // Paper scale: batch = 2048 walk pairs, d_m = 128 (and the 512 ceiling
    // of the sensitivity sweep), 10k-node embedding tables.
    let a = init.init(2048, 128, &mut rng);
    let b = init.init(128, 128, &mut rng);
    let a512 = init.init(2048, 512, &mut rng);
    let b512 = init.init(512, 512, &mut rng);
    let wide = init.init(2048, 512, &mut rng);
    let table = init.init(10_000, 128, &mut rng);
    let indices: Vec<usize> = (0..2048).map(|i| (i * 31) % 10_000).collect();
    let idx32: Vec<u32> = indices.iter().map(|&i| i as u32).collect();
    let grad = init.init(2048, 128, &mut rng);

    let mut entries = Vec::new();
    eprintln!("bench_kernels: cpus={cpus}, comparing 1 thread vs {threads} threads");

    // Vectorisation reference: the seed's branchy scalar kernel, serial.
    let seed_ns = mhg_par::with_threads(1, || time_ns(|| drop(seed_scalar_matmul(&a, &b))));
    let new_ns = mhg_par::with_threads(1, || time_ns(|| drop(a.matmul(&b))));
    entries.push(Entry {
        op: "matmul_seed_scalar".to_string(),
        size: "2048x128 * 128x128".to_string(),
        threads: 1,
        ns_per_iter: seed_ns,
        speedup_vs_1t: new_ns / seed_ns.max(1e-9), // < 1 ⇒ seed kernel slower
    });
    eprintln!(
        "{:26} {:24} 1t {seed_ns:>12.0} ns   (branch-free 1t kernel is {:.2}x faster)",
        "matmul_seed_scalar",
        "2048x128 * 128x128",
        seed_ns / new_ns.max(1e-9)
    );

    bench(
        &mut entries,
        "matmul",
        "2048x128 * 128x128",
        threads,
        || {
            drop(a.matmul(&b));
        },
    );
    bench(
        &mut entries,
        "matmul",
        "2048x512 * 512x512",
        threads,
        || {
            drop(a512.matmul(&b512));
        },
    );
    bench(
        &mut entries,
        "matmul_transposed",
        "2048x128 * (2048x128)T",
        threads,
        || drop(a.matmul_transposed(&grad)),
    );
    bench(&mut entries, "transpose", "2048x512", threads, || {
        drop(wide.transpose());
    });
    bench(&mut entries, "zip_map", "2048x512", threads, || {
        drop(wide.zip_map(&a512, |x, y| x * y + 0.5));
    });
    bench(&mut entries, "map_sigmoid", "2048x512", threads, || {
        drop(wide.sigmoid());
    });
    bench(&mut entries, "softmax_rows", "2048x128", threads, || {
        drop(a.softmax_rows());
    });
    bench(
        &mut entries,
        "gather_rows",
        "2048 rows of 10000x128",
        threads,
        || drop(table.gather_rows(&indices)),
    );
    bench(
        &mut entries,
        "scatter_add_rows",
        "2048 rows into 10000x128",
        threads,
        || {
            let mut acc = table.clone();
            acc.scatter_add_rows(&idx32, &grad);
        },
    );

    // One full HybridGNN epoch (paper hyper-parameters, Amazon dataset).
    let epoch_size = format!("amazon scale {scale}, dim 128, 1 epoch");
    let e1 = epoch_secs(scale, 1);
    let en = epoch_secs(scale, threads);
    entries.push(Entry {
        op: "hybridgnn_epoch".to_string(),
        size: epoch_size.clone(),
        threads: 1,
        ns_per_iter: e1 * 1e9,
        speedup_vs_1t: 1.0,
    });
    entries.push(Entry {
        op: "hybridgnn_epoch".to_string(),
        size: epoch_size.clone(),
        threads,
        ns_per_iter: en * 1e9,
        speedup_vs_1t: e1 / en.max(1e-9),
    });
    eprintln!(
        "{:26} {:24} 1t {:>9.2} s     {threads}t {:>9.2} s    speedup {:.2}x",
        "hybridgnn_epoch",
        epoch_size,
        e1,
        en,
        e1 / en.max(1e-9)
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run -p mhg-bench --bin bench_kernels\","
    );
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"results\": [");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"size\": \"{}\", \"threads\": {}, \"ns_per_iter\": {:.0}, \"speedup_vs_1t\": {:.3}}}{comma}",
            json_escape(&e.op),
            json_escape(&e.size),
            e.threads,
            e.ns_per_iter,
            e.speedup_vs_1t
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    mhg_ckpt::atomic_write(&out_path, json.as_bytes()).expect("write BENCH_kernels.json");
    eprintln!("wrote {}", out_path.display());
}
