//! Graph-store benchmark: build / open / walk throughput for the sharded,
//! chunk-paged [`ShardedCsr`] backend at the 10×-scale synthetic tier,
//! written machine-readably to `BENCH_graph.json` at the repo root so future
//! PRs can measure substrate regressions against this baseline.
//!
//! Flags:
//! * `--scale F` — tier scale; `1.0` is the 10M-candidate-edge target
//!   (default 1.0).
//! * `--seed N` — generator seed (default 2022).
//! * `--store ram|sharded|both` — backends to measure (default `sharded`).
//!   `both` additionally cross-checks walk-stream parity between the
//!   backends and is only sensible at scales whose in-RAM graph fits.
//! * `--walks N` / `--walk-len N` — walk workload (default 20000 × 10).
//! * `--threads N` — pool width for the walk pass (default
//!   `max(MHG_THREADS, 4)`).
//! * `--page-budget-mb N` / `--build-budget-mb N` — paging and wave-build
//!   RAM caps (default 64 / 32 MiB).
//! * `--shard-cap N` — targets per shard file (default 65536).
//! * `--dir PATH` — store directory (default under the system temp dir;
//!   left on disk for inspection).
//! * `--out PATH` — output path (default `<repo root>/BENCH_graph.json`).
//!
//! The sharded backend runs first so its `vm_hwm_kb` reading (peak RSS,
//! from `/proc/self/status`) is not inflated by a prior in-RAM
//! materialisation. `streams_under_disk` records the tentpole property:
//! page budget + resident metadata strictly below the on-disk store size.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use mhg_datasets::SyntheticTier;
use mhg_graph::{GraphStore, NodeId, ShardedCsr, ShardedCsrOptions};
use mhg_sampling::{sharded_over, UniformWalker, Walk};

/// One backend's measurement row; paging fields are `None` for `ram`.
struct StoreRun {
    store: &'static str,
    build_s: f64,
    open_s: Option<f64>,
    verify_s: Option<f64>,
    walk_s: f64,
    walks_per_s: f64,
    steps_per_s: f64,
    walk_hash: u64,
    on_disk_bytes: Option<u64>,
    resident_metadata_bytes: Option<usize>,
    page_loads: Option<u64>,
    page_hits: Option<u64>,
    page_evictions: Option<u64>,
    page_peak_bytes: Option<usize>,
    shard_retries: Option<u64>,
    shard_repairs: Option<u64>,
    shard_repair_failures: Option<u64>,
    shards_quarantined: Option<usize>,
    streams_under_disk: Option<bool>,
    vm_hwm_kb: Option<u64>,
}

fn flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Peak resident set size in KiB, from `/proc/self/status` (Linux only).
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// FNV-1a over the concatenated walk stream; matches the parity-test
/// convention (walks delimited by `u32::MAX`, which no node id reaches).
fn hash_walks(walks: &[Walk]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for w in walks {
        for &v in w {
            eat(v.0);
        }
        eat(u32::MAX);
    }
    h
}

/// Runs the timed walk workload and returns `(seconds, steps, hash)`.
fn walk_pass<G: GraphStore>(
    graph: &G,
    seed: u64,
    num_walks: usize,
    walk_len: usize,
    threads: usize,
) -> (f64, usize, u64) {
    let num_nodes = graph.num_nodes();
    let starts: Vec<NodeId> = (0..num_walks)
        .map(|i| NodeId((i % num_nodes) as u32))
        .collect();
    let walker = UniformWalker::new(graph);
    let start = Instant::now();
    let walks = mhg_par::with_threads(threads, || {
        sharded_over(seed, &starts, |chunk, rng| {
            chunk
                .iter()
                .map(|&s| walker.walk(s, walk_len, rng))
                .collect::<Vec<Walk>>()
        })
    });
    let secs = start.elapsed().as_secs_f64();
    let steps: usize = walks.iter().map(Vec::len).sum();
    (secs, steps, hash_walks(&walks))
}

#[allow(clippy::too_many_lines)]
fn main() {
    let scale: f64 = flag("--scale").and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let seed: u64 = flag("--seed").and_then(|s| s.parse().ok()).unwrap_or(2022);
    let store = flag("--store").unwrap_or_else(|| "sharded".to_string());
    assert!(
        matches!(store.as_str(), "ram" | "sharded" | "both"),
        "--store must be ram|sharded|both, got {store:?}"
    );
    let num_walks: usize = flag("--walks")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let walk_len: usize = flag("--walk-len")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let threads: usize = flag("--threads")
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| mhg_par::current_threads().max(4));
    let page_budget: usize = flag("--page-budget-mb")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
        << 20;
    let build_budget: usize = flag("--build-budget-mb")
        .and_then(|s| s.parse().ok())
        .unwrap_or(32)
        << 20;
    let shard_cap: usize = flag("--shard-cap")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 16);
    let dir: PathBuf = flag("--dir").map_or_else(
        || std::env::temp_dir().join("mhg_bench_graph"),
        PathBuf::from,
    );
    let out_path: PathBuf = flag("--out").map_or_else(
        || {
            // crates/bench → workspace root.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_graph.json")
        },
        PathBuf::from,
    );

    let tier = SyntheticTier::taobao(scale, seed);
    let candidate_edges = tier.total_edges();
    eprintln!(
        "bench_graph: scale {scale} ({candidate_edges} candidate edges), store {store}, \
         {num_walks} walks x {walk_len}, {threads} threads"
    );

    let opts = ShardedCsrOptions {
        shard_target_cap: shard_cap,
        page_budget_bytes: page_budget,
        build_budget_bytes: build_budget,
    };
    let walk_seed = seed ^ 0x9e37_79b9;
    let mut runs: Vec<StoreRun> = Vec::new();
    let mut num_nodes = 0usize;
    let mut stored_edges = 0usize;

    if store != "ram" {
        let _ = std::fs::remove_dir_all(&dir);
        let t = Instant::now();
        let built = ShardedCsr::build(&tier, &dir, opts).expect("sharded build");
        let build_s = t.elapsed().as_secs_f64();
        eprintln!(
            "  sharded: built {} in {build_s:.1}s ({:.0} edges/s)",
            dir.display(),
            candidate_edges as f64 / build_s.max(1e-9)
        );
        drop(built);

        let t = Instant::now();
        let sharded = ShardedCsr::open(&dir, opts).expect("sharded open");
        let open_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        sharded.verify().expect("sharded verify");
        let verify_s = t.elapsed().as_secs_f64();
        num_nodes = GraphStore::num_nodes(&sharded);
        stored_edges = GraphStore::num_edges(&sharded);

        let (walk_s, steps, walk_hash) =
            walk_pass(&sharded, walk_seed, num_walks, walk_len, threads);
        let stats = sharded.page_stats();
        let heal = sharded.heal_stats();
        let quarantined = sharded.quarantined().len();
        let on_disk = sharded.on_disk_bytes().expect("on-disk size");
        let metadata = sharded.resident_metadata_bytes();
        let working = page_budget + metadata;
        eprintln!(
            "  sharded: open {open_s:.2}s, verify {verify_s:.2}s, walks {:.0}/s \
             ({:.0} steps/s), pages {}/{} hit, {} evictions, peak {} B",
            num_walks as f64 / walk_s.max(1e-9),
            steps as f64 / walk_s.max(1e-9),
            stats.hits,
            stats.hits + stats.loads,
            stats.evictions,
            stats.peak_bytes
        );
        eprintln!(
            "  sharded: working set {working} B (budget {page_budget} + metadata {metadata}) \
             vs {on_disk} B on disk"
        );
        runs.push(StoreRun {
            store: "sharded",
            build_s,
            open_s: Some(open_s),
            verify_s: Some(verify_s),
            walk_s,
            walks_per_s: num_walks as f64 / walk_s.max(1e-9),
            steps_per_s: steps as f64 / walk_s.max(1e-9),
            walk_hash,
            on_disk_bytes: Some(on_disk),
            resident_metadata_bytes: Some(metadata),
            page_loads: Some(stats.loads),
            page_hits: Some(stats.hits),
            page_evictions: Some(stats.evictions),
            page_peak_bytes: Some(stats.peak_bytes),
            shard_retries: Some(heal.retries),
            shard_repairs: Some(heal.repairs),
            shard_repair_failures: Some(heal.repair_failures),
            shards_quarantined: Some(quarantined),
            streams_under_disk: Some((working as u64) < on_disk),
            vm_hwm_kb: vm_hwm_kb(),
        });
    }

    if store != "sharded" {
        let t = Instant::now();
        let ram = tier.materialize();
        let build_s = t.elapsed().as_secs_f64();
        num_nodes = ram.num_nodes();
        stored_edges = ram.num_edges();
        let (walk_s, steps, walk_hash) = walk_pass(&ram, walk_seed, num_walks, walk_len, threads);
        eprintln!(
            "  ram: materialized in {build_s:.1}s, walks {:.0}/s ({:.0} steps/s)",
            num_walks as f64 / walk_s.max(1e-9),
            steps as f64 / walk_s.max(1e-9)
        );
        runs.push(StoreRun {
            store: "ram",
            build_s,
            open_s: None,
            verify_s: None,
            walk_s,
            walks_per_s: num_walks as f64 / walk_s.max(1e-9),
            steps_per_s: steps as f64 / walk_s.max(1e-9),
            walk_hash,
            on_disk_bytes: None,
            resident_metadata_bytes: None,
            page_loads: None,
            page_hits: None,
            page_evictions: None,
            page_peak_bytes: None,
            shard_retries: None,
            shard_repairs: None,
            shard_repair_failures: None,
            shards_quarantined: None,
            streams_under_disk: None,
            vm_hwm_kb: vm_hwm_kb(),
        });
    }

    let parity = if runs.len() == 2 {
        let ok = runs[0].walk_hash == runs[1].walk_hash;
        if !ok {
            // Mirror verification failed: the two backends no longer present
            // the same graph. Exit nonzero so CI flags it, rather than
            // silently recording a broken baseline.
            eprintln!(
                "bench_graph: FAIL: walk streams diverged between backends: \
                 {:#018x} vs {:#018x}",
                runs[0].walk_hash, runs[1].walk_hash
            );
            std::process::exit(1);
        }
        eprintln!("  parity: walk streams identical across backends");
        Some(ok)
    } else {
        None
    };

    let opt_u64 = |v: Option<u64>| v.map_or("null".to_string(), |x| x.to_string());
    let opt_usize = |v: Option<usize>| v.map_or("null".to_string(), |x| x.to_string());
    let opt_f64 = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.3}"));
    let opt_bool = |v: Option<bool>| v.map_or("null".to_string(), |x| x.to_string());
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run -p mhg-bench --release --bin bench_graph\","
    );
    let _ = writeln!(json, "  \"scale\": {scale},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"num_nodes\": {num_nodes},");
    let _ = writeln!(json, "  \"candidate_edges\": {candidate_edges},");
    let _ = writeln!(json, "  \"stored_edges\": {stored_edges},");
    let _ = writeln!(json, "  \"walk_starts\": {num_walks},");
    let _ = writeln!(json, "  \"walk_len\": {walk_len},");
    let _ = writeln!(json, "  \"shard_target_cap\": {shard_cap},");
    let _ = writeln!(json, "  \"page_budget_bytes\": {page_budget},");
    let _ = writeln!(json, "  \"build_budget_bytes\": {build_budget},");
    let _ = writeln!(json, "  \"parity\": {},", opt_bool(parity));
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 == runs.len() { "" } else { "," };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"store\": \"{}\",", r.store);
        let _ = writeln!(json, "      \"build_s\": {:.3},", r.build_s);
        let _ = writeln!(json, "      \"open_s\": {},", opt_f64(r.open_s));
        let _ = writeln!(json, "      \"verify_s\": {},", opt_f64(r.verify_s));
        let _ = writeln!(json, "      \"walk_s\": {:.3},", r.walk_s);
        let _ = writeln!(json, "      \"walks_per_s\": {:.0},", r.walks_per_s);
        let _ = writeln!(json, "      \"steps_per_s\": {:.0},", r.steps_per_s);
        let _ = writeln!(json, "      \"walk_hash\": \"{:#018x}\",", r.walk_hash);
        let _ = writeln!(
            json,
            "      \"on_disk_bytes\": {},",
            opt_u64(r.on_disk_bytes)
        );
        let _ = writeln!(
            json,
            "      \"resident_metadata_bytes\": {},",
            opt_usize(r.resident_metadata_bytes)
        );
        let _ = writeln!(json, "      \"page_loads\": {},", opt_u64(r.page_loads));
        let _ = writeln!(json, "      \"page_hits\": {},", opt_u64(r.page_hits));
        let _ = writeln!(
            json,
            "      \"page_evictions\": {},",
            opt_u64(r.page_evictions)
        );
        let _ = writeln!(
            json,
            "      \"page_peak_bytes\": {},",
            opt_usize(r.page_peak_bytes)
        );
        let _ = writeln!(
            json,
            "      \"shard_retries\": {},",
            opt_u64(r.shard_retries)
        );
        let _ = writeln!(
            json,
            "      \"shard_repairs\": {},",
            opt_u64(r.shard_repairs)
        );
        let _ = writeln!(
            json,
            "      \"shard_repair_failures\": {},",
            opt_u64(r.shard_repair_failures)
        );
        let _ = writeln!(
            json,
            "      \"shards_quarantined\": {},",
            opt_usize(r.shards_quarantined)
        );
        let _ = writeln!(
            json,
            "      \"streams_under_disk\": {},",
            opt_bool(r.streams_under_disk)
        );
        let _ = writeln!(json, "      \"vm_hwm_kb\": {}", opt_u64(r.vm_hwm_kb));
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    mhg_ckpt::atomic_write(&out_path, json.as_bytes()).expect("write BENCH_graph.json");
    eprintln!("wrote {}", out_path.display());
}
