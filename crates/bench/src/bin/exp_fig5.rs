//! Fig. 5 — recommendation confidence (PR@10) by node-degree cluster and
//! relation, on Taobao: HybridGNN's ranking quality as a function of how
//! much evidence a node carries.

use hybridgnn::HybridGnn;
use mhg_bench::{prepare, ExpConfig};
use mhg_datasets::DatasetKind;
use mhg_eval::{degree_buckets, topk_metrics};
use mhg_models::{ranking_queries, FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_args();
    let kind = cfg
        .dataset_set(&[DatasetKind::Taobao])
        .first()
        .copied()
        .unwrap();
    println!(
        "Fig. 5 — PR@{} by degree cluster and relation on {} (scale {}, epochs {})",
        cfg.k,
        kind.name(),
        cfg.scale,
        cfg.epochs
    );

    let (dataset, split) = prepare(kind, &cfg, 0);
    let mut model = HybridGnn::new(cfg.hybrid());
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x77aa);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    model.fit(&data, &mut rng).expect("fit must succeed");

    let mut qrng = StdRng::seed_from_u64(cfg.seed ^ 0x99bb);
    let queries = ranking_queries(
        &model,
        &dataset.graph,
        &split.test,
        cfg.pool,
        cfg.max_queries * 4,
        &mut qrng,
    );

    let sources: Vec<mhg_graph::NodeId> = queries.iter().map(|q| q.source).collect();
    let buckets = degree_buckets(&dataset.graph, &sources, 4);

    print!("{:<14}", "relation");
    for b in &buckets {
        print!(" {:>14}", b.label());
    }
    println!();

    for r in dataset.graph.schema().relations() {
        let rel_name = dataset.graph.schema().relation_name(r);
        print!("{rel_name:<14}");
        for bucket in &buckets {
            let in_bucket: Vec<_> = queries
                .iter()
                .filter(|q| q.relation == r && bucket.nodes.contains(&q.source))
                .map(|q| q.query.clone())
                .collect();
            if in_bucket.is_empty() {
                print!(" {:>14}", "-");
            } else {
                let m = topk_metrics(&in_bucket, cfg.k);
                print!(" {:>14.4}", m.precision);
            }
        }
        println!();
    }
    mhg_bench::finish_metrics(&cfg);
}
