//! Table VIII — ablation study (F1, %): the full model against the four
//! ablations, on Amazon, YouTube, IMDb and Taobao.

use hybridgnn::{HybridConfig, HybridGnn};
use mhg_bench::{prepare, run_model, ExpConfig};
use mhg_datasets::DatasetKind;

fn main() {
    let cfg = ExpConfig::from_args();
    let datasets = cfg.dataset_set(&[
        DatasetKind::Amazon,
        DatasetKind::YouTube,
        DatasetKind::Imdb,
        DatasetKind::Taobao,
    ]);
    println!(
        "Table VIII — ablation study, F1 % (scale {}, epochs {})",
        cfg.scale, cfg.epochs
    );

    type Variant = (&'static str, Box<dyn Fn(HybridConfig) -> HybridConfig>);
    let variants: Vec<Variant> = vec![
        ("HybridGNN", Box::new(|c: HybridConfig| c)),
        (
            "w/o metapath-level attention",
            Box::new(HybridConfig::without_metapath_attention),
        ),
        (
            "w/o relationship-level attention",
            Box::new(HybridConfig::without_relationship_attention),
        ),
        (
            "w/o randomized exploration",
            Box::new(HybridConfig::without_randomized_exploration),
        ),
        (
            "w/o hybrid aggregation flow",
            Box::new(HybridConfig::without_hybrid_flows),
        ),
    ];

    print!("{:<34}", "variant");
    for kind in &datasets {
        print!(" {:>9}", kind.name());
    }
    println!();

    for (name, make) in &variants {
        print!("{name:<34}");
        for &kind in &datasets {
            let (dataset, split) = prepare(kind, &cfg, 0);
            let mut model = HybridGnn::new(make(cfg.hybrid()));
            let m = run_model(&mut model, &dataset, &split, &cfg, 0).expect("fit must succeed");
            print!(" {:>9.2}", m.f1);
        }
        println!();
    }
    mhg_bench::finish_metrics(&cfg);
}
