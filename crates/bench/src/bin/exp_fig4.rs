//! Fig. 4 — metapath-level attention scores per relation on Taobao and
//! Kuaishou: how much attention mass each aggregation flow (the Table II
//! metapaths plus the randomized-exploration flow) receives under every
//! relation.

use hybridgnn::HybridGnn;
use mhg_bench::{prepare, ExpConfig};
use mhg_datasets::DatasetKind;
use mhg_models::{FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_args();
    let datasets = cfg.dataset_set(&[DatasetKind::Taobao, DatasetKind::Kuaishou]);
    println!(
        "Fig. 4 — metapath attention scores per relation (scale {}, epochs {})",
        cfg.scale, cfg.epochs
    );

    for kind in datasets {
        let (dataset, split) = prepare(kind, &cfg, 0);
        let mut model = HybridGnn::new(cfg.hybrid());
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x77aa);
        let data = FitData {
            graph: &split.train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &split.val,
        };
        model.fit(&data, &mut rng).expect("fit must succeed");

        println!("\n== {} ==", kind.name());
        for (ri, rows) in model.attention_profile().iter().enumerate() {
            let rel_name = dataset
                .graph
                .schema()
                .relation_name(mhg_graph::RelationId(ri as u16));
            // Normalise masses so each relation's bars sum to 1 (the
            // paper's stacked-bar presentation).
            let total: f64 = rows.iter().map(|(_, m)| m).sum();
            print!("{rel_name:<16}");
            for (label, mass) in rows {
                print!(" {label}={:.3}", mass / total.max(1e-12));
            }
            println!();
        }
    }
    mhg_bench::finish_metrics(&cfg);
}
