//! Table II — dataset statistics.
//!
//! Regenerates the paper's dataset-statistics table from the synthetic
//! generators. Run with `--scale 1.0` to compare against the published
//! sizes directly.

use mhg_bench::ExpConfig;
use mhg_datasets::DatasetKind;
use mhg_graph::GraphStats;

fn main() {
    let cfg = ExpConfig::from_args();
    println!("Table II — dataset statistics (scale {})", cfg.scale);
    println!(
        "{:<10} {:>9} {:>9} {:>5} {:>5}  metapaths",
        "dataset", "|V|", "|E|", "|O|", "|R|"
    );
    for kind in cfg.dataset_set(&DatasetKind::ALL) {
        let dataset = kind.generate(cfg.scale, cfg.seed);
        let stats = GraphStats::compute(&dataset.graph);
        let shapes: Vec<String> = dataset
            .metapath_shapes
            .iter()
            .map(|shape| {
                shape
                    .iter()
                    .map(|&t| {
                        dataset
                            .graph
                            .schema()
                            .node_type_name(t)
                            .chars()
                            .next()
                            .unwrap_or('?')
                            .to_uppercase()
                            .to_string()
                    })
                    .collect::<Vec<_>>()
                    .join("-")
            })
            .collect();
        println!(
            "{:<10} {:>9} {:>9} {:>5} {:>5}  {}",
            kind.name(),
            stats.num_nodes,
            stats.num_edges,
            stats.num_node_types,
            stats.num_relations,
            shapes.join(", ")
        );
        println!(
            "{:<10} mean degree {:.1}, max degree {}, multiplex pairs {:.1}%",
            "",
            stats.mean_degree,
            stats.max_degree,
            100.0 * stats.multiplex_pair_fraction
        );
    }
    mhg_bench::finish_metrics(&cfg);
}
