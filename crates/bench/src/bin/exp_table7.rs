//! Table VII — uplift from inter-relationship information: starting from
//! the YouTube subgraph g_{r0}, relations are added one at a time; GCN,
//! GATNE and HybridGNN are evaluated on the r0 test edges each time.
//!
//! GCN flattens relations so extra relations barely move it; the multiplex
//! models improve monotonically, HybridGNN fastest — the paper's Table VII
//! shape.

use hybridgnn::HybridGnn;
use mhg_bench::ExpConfig;
use mhg_datasets::{DatasetKind, EdgeSplit, LabeledEdge};
use mhg_graph::RelationId;
use mhg_models::{evaluate, FitData, Gatne, Gcn, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = ExpConfig::from_args();
    let kind = cfg
        .dataset_set(&[DatasetKind::YouTube])
        .first()
        .copied()
        .unwrap();
    println!(
        "Table VII — inter-relationship uplift on {} (scale {}, epochs {})",
        kind.name(),
        cfg.scale,
        cfg.epochs
    );

    let dataset = kind.generate(cfg.scale, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5151);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    let num_rel = dataset.graph.schema().num_relations();

    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "subgraph", "GCN", "GATNE", "HybridGNN"
    );

    for keep in 1..=num_rel {
        let relations: Vec<RelationId> = (0..keep as u16).map(RelationId).collect();
        let train_graph = split.train_graph.induce_relations(&relations);
        // Relation ids are preserved for the kept prefix, so eval edges keep
        // their ids. Validate on kept relations; test on r0 only.
        let val: Vec<LabeledEdge> = split
            .val
            .iter()
            .filter(|e| (e.relation.0 as usize) < keep)
            .copied()
            .collect();
        let test_r0: Vec<LabeledEdge> = split
            .test
            .iter()
            .filter(|e| e.relation.0 == 0)
            .copied()
            .collect();

        let data = FitData {
            graph: &train_graph,
            metapath_shapes: &dataset.metapath_shapes,
            val: &val,
        };

        let mut aucs = Vec::new();
        let mut models: Vec<Box<dyn LinkPredictor>> = vec![
            Box::new(Gcn::new(cfg.common())),
            Box::new(Gatne::new(cfg.common())),
            Box::new(HybridGnn::new(cfg.hybrid())),
        ];
        for model in &mut models {
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x77aa ^ keep as u64);
            model.fit(&data, &mut rng).expect("fit must succeed");
            aucs.push(evaluate(model.as_ref(), &test_r0).roc_auc * 100.0);
        }

        let label = format!(
            "g_{{{}}}",
            (0..keep)
                .map(|i| format!("r{i}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>8.2}",
            label, aucs[0], aucs[1], aucs[2]
        );
    }
    mhg_bench::finish_metrics(&cfg);
}
