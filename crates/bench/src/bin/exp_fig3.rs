//! Fig. 3 — hyper-parameter sensitivity of HybridGNN: base dimension `d_m`,
//! edge dimension `d_e`, and negative-sample count `n`, per dataset
//! (ROC-AUC series).

use hybridgnn::HybridGnn;
use mhg_bench::{prepare, run_model, ExpConfig};
use mhg_datasets::DatasetKind;

fn main() {
    let cfg = ExpConfig::from_args();
    let datasets = cfg.dataset_set(&[
        DatasetKind::Amazon,
        DatasetKind::YouTube,
        DatasetKind::Imdb,
        DatasetKind::Taobao,
    ]);
    println!(
        "Fig. 3 — parameter sensitivity, ROC-AUC % (scale {}, epochs {})",
        cfg.scale, cfg.epochs
    );

    // (a) base embedding dimension d_m.
    println!("\n(a) d_m sweep");
    sweep(&cfg, &datasets, &[64, 128, 256], |c, v| {
        c.common.dim = v;
    });

    // (b) edge embedding dimension d_e.
    println!("\n(b) d_e sweep");
    sweep(&cfg, &datasets, &[2, 8, 16, 32, 64], |c, v| {
        c.common.edge_dim = v;
    });

    // (c) negative sample count n.
    println!("\n(c) negatives sweep");
    sweep(&cfg, &datasets, &[1, 3, 5, 7], |c, v| {
        c.common.negatives = v;
    });
    mhg_bench::finish_metrics(&cfg);
}

fn sweep(
    cfg: &ExpConfig,
    datasets: &[DatasetKind],
    values: &[usize],
    apply: impl Fn(&mut hybridgnn::HybridConfig, usize),
) {
    print!("{:<8}", "value");
    for kind in datasets {
        print!(" {:>9}", kind.name());
    }
    println!();
    for &v in values {
        print!("{v:<8}");
        for &kind in datasets {
            let (dataset, split) = prepare(kind, cfg, 0);
            let mut hybrid_cfg = cfg.hybrid();
            apply(&mut hybrid_cfg, v);
            let mut model = HybridGnn::new(hybrid_cfg);
            let m = run_model(&mut model, &dataset, &split, cfg, 0).expect("fit must succeed");
            print!(" {:>9.2}", m.roc_auc);
        }
        println!();
    }
}
