//! Table V — link prediction on Taobao and Kuaishou (the fully multiplex
//! heterogeneous case `|O| ≥ 2, |R| ≥ 2`).

use mhg_bench::{link_prediction_experiment, ExpConfig};
use mhg_datasets::DatasetKind;

fn main() {
    let cfg = ExpConfig::from_args();
    println!(
        "Table V — link prediction (scale {}, dim {}, epochs {}, runs {})",
        cfg.scale, cfg.dim, cfg.epochs, cfg.runs
    );
    link_prediction_experiment(&cfg, &[DatasetKind::Taobao, DatasetKind::Kuaishou]);
    mhg_bench::finish_metrics(&cfg);
}
