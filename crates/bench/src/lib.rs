//! Shared experiment-harness machinery for the table/figure binaries.
//!
//! Every binary in `src/bin/` reproduces one table or figure of the paper;
//! this library holds what they share: CLI parsing, the model zoo, the
//! train-and-evaluate pipeline, and table formatting. See `DESIGN.md` §3
//! for the experiment index.

use std::path::{Path, PathBuf};

use hybridgnn::{HybridConfig, HybridGnn};
use mhg_datasets::{Dataset, DatasetKind, EdgeSplit};
use mhg_eval::{topk_metrics, TopKMetrics};
use mhg_graph::{persist, MultiplexGraph, ShardedCsr, ShardedCsrOptions};
use mhg_models::{
    evaluate, ranking_queries, CommonConfig, DeepWalk, EventValue, FitData, Gatne, Gcn, GraphSage,
    Han, Line, LinkPredictor, Magnn, ModelMetrics, Node2Vec, Obs, ObsConfig, RGcn, TrainError,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The ten model names of Tables IV–V, in the paper's row order. This is
/// the vocabulary of the `--models` filter.
pub const MODEL_NAMES: [&str; 10] = [
    "DeepWalk",
    "node2vec",
    "LINE",
    "GCN",
    "GraphSage",
    "HAN",
    "MAGNN",
    "R-GCN",
    "GATNE",
    "HybridGNN",
];

/// Which graph-store backend the experiment exercises (`--graph-store`).
///
/// Models always train against the in-RAM [`MultiplexGraph`] — the backend
/// choice controls whether [`prepare`] additionally builds a sharded,
/// chunk-paged mirror of each training graph and proves it byte-identical
/// (via the canonical MHG1 encoding) before any model sees the data. That
/// keeps every exp_* binary able to regression-test the `ShardedCsr`
/// substrate without forking the experiment pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphStoreKind {
    /// In-RAM CSR only (the default).
    Ram,
    /// Build + verify a sharded on-disk mirror of every training graph.
    Sharded,
}

impl GraphStoreKind {
    /// Parses the `--graph-store` vocabulary (`ram` / `sharded`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ram" => Some(Self::Ram),
            "sharded" => Some(Self::Sharded),
            _ => None,
        }
    }
}

/// Common experiment options, parsed from `std::env::args`.
///
/// Flags: `--scale <f64>`, `--seed <u64>`, `--epochs <usize>`,
/// `--dim <usize>`, `--runs <usize>`, `--k <usize>`, `--datasets a,b,c`,
/// `--models a,b,c`, `--resume-dir <path>`, `--checkpoint-every <n>`,
/// `--metrics-out <path>`, `--graph-store ram|sharded`.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Dataset scale relative to the paper's published sizes.
    pub scale: f64,
    /// Base RNG seed; run `i` uses `seed + i`.
    pub seed: u64,
    /// Training epochs per model.
    pub epochs: usize,
    /// Embedding dimension `d_m` used by the harness (the paper's 128 is a
    /// flag away; 64 keeps default runs fast).
    pub dim: usize,
    /// Independent repetitions (needed for the t-test columns).
    pub runs: usize,
    /// K for PR@K / HR@K.
    pub k: usize,
    /// Candidate-pool size per ranking query.
    pub pool: usize,
    /// Maximum ranking queries per dataset.
    pub max_queries: usize,
    /// Dataset filter (empty = the experiment's default set).
    pub datasets: Vec<DatasetKind>,
    /// Model filter, canonical [`MODEL_NAMES`] entries (empty = all ten).
    pub models: Vec<String>,
    /// Crash-safe experiment state directory. When set, every completed
    /// (dataset, model, run) cell persists its metrics as an atomic marker
    /// file, training checkpoints land next to them, and a re-run with the
    /// same directory skips finished cells and resumes the interrupted one.
    pub resume_dir: Option<PathBuf>,
    /// Epoch cadence for training checkpoints (0 = only on `--resume-dir`
    /// runs, where it defaults to every epoch).
    pub checkpoint_every: usize,
    /// Checkpoint directory for the cell currently training. Set by
    /// [`ExpConfig::for_cell`], not by a CLI flag.
    pub cell_checkpoint_dir: Option<PathBuf>,
    /// Write the experiment's metrics as JSON lines to this path (see the
    /// README's "Reading metrics.jsonl"). Merged into — and overriding —
    /// whatever `MHG_OBS` configures.
    pub metrics_out: Option<PathBuf>,
    /// Graph-store backend under test (see [`GraphStoreKind`]).
    pub graph_store: GraphStoreKind,
    /// Observability handle shared by every model run of the experiment.
    /// Built by [`ExpConfig::from_args`] from `MHG_OBS` + `--metrics-out`,
    /// with stderr progress notes always on (this is a human harness).
    pub obs: Obs,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale: 0.05,
            seed: 42,
            epochs: 12,
            dim: 64,
            runs: 1,
            k: 10,
            pool: 200,
            max_queries: 150,
            datasets: Vec::new(),
            models: Vec::new(),
            resume_dir: None,
            checkpoint_every: 0,
            cell_checkpoint_dir: None,
            metrics_out: None,
            graph_store: GraphStoreKind::Ram,
            obs: harness_obs(None),
        }
    }
}

/// The harness observability handle: `MHG_OBS` settings plus an optional
/// `--metrics-out` JSONL override, with progress notes forced on.
fn harness_obs(metrics_out: Option<PathBuf>) -> Obs {
    let mut oc = ObsConfig::from_env();
    oc.notes = true;
    if metrics_out.is_some() {
        oc.jsonl = metrics_out;
    }
    oc.build()
}

impl ExpConfig {
    /// Parses CLI flags, falling back to defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = args.get(i + 1).cloned();
            let parse_f64 = |v: &Option<String>| -> f64 {
                v.as_ref()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("{flag} requires a numeric value"))
            };
            let parse_usize = |v: &Option<String>| -> usize {
                v.as_ref()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("{flag} requires an integer value"))
            };
            match flag {
                "--scale" => cfg.scale = parse_f64(&value),
                "--seed" => cfg.seed = parse_usize(&value) as u64,
                "--epochs" => cfg.epochs = parse_usize(&value),
                "--dim" => cfg.dim = parse_usize(&value),
                "--runs" => cfg.runs = parse_usize(&value),
                "--k" => cfg.k = parse_usize(&value),
                "--pool" => cfg.pool = parse_usize(&value),
                "--max-queries" => cfg.max_queries = parse_usize(&value),
                "--checkpoint-every" => cfg.checkpoint_every = parse_usize(&value),
                "--resume-dir" => {
                    cfg.resume_dir = Some(PathBuf::from(
                        value.as_ref().expect("--resume-dir requires a path"),
                    ));
                }
                "--metrics-out" => {
                    cfg.metrics_out = Some(PathBuf::from(
                        value.as_ref().expect("--metrics-out requires a path"),
                    ));
                }
                "--graph-store" => {
                    cfg.graph_store = value
                        .as_ref()
                        .and_then(|s| GraphStoreKind::parse(s))
                        .unwrap_or_else(|| panic!("unknown graph store {value:?} (ram|sharded)"));
                }
                "--datasets" => {
                    cfg.datasets = value
                        .as_ref()
                        .expect("--datasets requires a comma list")
                        .split(',')
                        .map(|s| {
                            DatasetKind::parse(s).unwrap_or_else(|| panic!("unknown dataset {s:?}"))
                        })
                        .collect();
                }
                "--models" => {
                    cfg.models = value
                        .as_ref()
                        .expect("--models requires a comma list")
                        .split(',')
                        .map(|s| {
                            MODEL_NAMES
                                .iter()
                                .find(|n| n.eq_ignore_ascii_case(s.trim()))
                                .unwrap_or_else(|| panic!("unknown model {s:?} (see --help)"))
                                .to_string()
                        })
                        .collect();
                }
                "--help" | "-h" => {
                    println!(
                        "flags: --scale f --seed n --epochs n --dim n --runs n --k n \
                         --pool n --max-queries n --datasets a,b,c --models a,b,c \
                         --resume-dir path --checkpoint-every n --metrics-out path \
                         --graph-store ram|sharded\n\
                         models: {}",
                        MODEL_NAMES.join(",")
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
            i += 2;
        }
        cfg.obs = harness_obs(cfg.metrics_out.clone());
        cfg
    }

    /// The experiment's dataset list: the CLI override, or `default_set`.
    pub fn dataset_set(&self, default_set: &[DatasetKind]) -> Vec<DatasetKind> {
        if self.datasets.is_empty() {
            default_set.to_vec()
        } else {
            self.datasets.clone()
        }
    }

    /// Whether the `--models` filter selects `name` (empty filter = all).
    pub fn selects(&self, name: &str) -> bool {
        self.models.is_empty() || self.models.iter().any(|m| m.eq_ignore_ascii_case(name))
    }

    /// Shared model hyper-parameters derived from the experiment flags.
    pub fn common(&self) -> CommonConfig {
        CommonConfig {
            dim: self.dim,
            epochs: self.epochs,
            checkpoint_every: self.checkpoint_every,
            checkpoint_dir: self.cell_checkpoint_dir.clone(),
            resume: self.cell_checkpoint_dir.is_some(),
            obs: self.obs.clone(),
            ..CommonConfig::default()
        }
    }

    /// A copy of this configuration pointing one experiment cell at its own
    /// checkpoint directory under `--resume-dir` (no-op without the flag).
    pub fn for_cell(&self, kind: DatasetKind, model: &str, run: usize) -> Self {
        let mut cell = self.clone();
        if let Some(dir) = &self.resume_dir {
            cell.checkpoint_every = self.checkpoint_every.max(1);
            // `common()` below threads these into every model's TrainOptions.
            cell.cell_checkpoint_dir =
                Some(dir.join(format!("ckpt-{}-{model}-run{run}", kind.name())));
        }
        cell
    }

    /// HybridGNN configuration derived from the experiment flags.
    pub fn hybrid(&self) -> HybridConfig {
        HybridConfig {
            common: self.common(),
            ..HybridConfig::default()
        }
    }
}

/// The ten models of Tables IV–V, in the paper's row order.
pub fn model_zoo(cfg: &ExpConfig) -> Vec<Box<dyn LinkPredictor>> {
    let c = cfg.common();
    vec![
        Box::new(DeepWalk::new(c.clone())),
        Box::new(Node2Vec::new(c.clone())),
        Box::new(Line::new(c.clone())),
        Box::new(Gcn::new(c.clone())),
        Box::new(GraphSage::new(c.clone())),
        Box::new(Han::new(c.clone())),
        Box::new(Magnn::new(c.clone())),
        Box::new(RGcn::new(c.clone())),
        Box::new(Gatne::new(c)),
        Box::new(HybridGnn::new(cfg.hybrid())),
    ]
}

/// The model zoo after the `--models` filter.
pub fn filtered_zoo(cfg: &ExpConfig) -> Vec<Box<dyn LinkPredictor>> {
    model_zoo(cfg)
        .into_iter()
        .filter(|m| cfg.selects(m.name()))
        .collect()
}

/// All five metric columns of Tables IV–V.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullMetrics {
    /// ROC-AUC (%).
    pub roc_auc: f64,
    /// PR-AUC (%).
    pub pr_auc: f64,
    /// F1 (%).
    pub f1: f64,
    /// PR@K.
    pub pr_at_k: f64,
    /// HR@K.
    pub hr_at_k: f64,
}

/// Generates a dataset and its split, deterministically.
///
/// Under `--graph-store sharded` this additionally round-trips the training
/// graph through the chunk-paged [`ShardedCsr`] backend and aborts the
/// experiment unless the mirror verifies and encodes byte-identically — see
/// [`GraphStoreKind`].
pub fn prepare(kind: DatasetKind, cfg: &ExpConfig, run: usize) -> (Dataset, EdgeSplit) {
    let dataset = kind.generate(cfg.scale, cfg.seed + run as u64);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5151 ^ run as u64);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    if cfg.graph_store == GraphStoreKind::Sharded {
        mirror_sharded(kind, cfg, run, &split.train_graph);
    }
    (dataset, split)
}

/// Builds a sharded on-disk mirror of `graph`, verifies every shard
/// checksum, and proves backend parity by comparing the canonical MHG1
/// encodings. The mirror lives in a per-process temp directory and is
/// removed on success; any failure aborts the experiment — publishing
/// numbers from a store that disagrees with the in-RAM graph would poison
/// every downstream comparison.
fn mirror_sharded(kind: DatasetKind, cfg: &ExpConfig, run: usize, graph: &MultiplexGraph) {
    let dir = std::env::temp_dir().join(format!(
        "mhg-exp-store-{}-{}-run{run}",
        std::process::id(),
        kind.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let sharded = ShardedCsr::build(graph, &dir, ShardedCsrOptions::default())
        .unwrap_or_else(|e| panic!("sharded mirror build for {} failed: {e}", kind.name()));
    sharded
        .verify()
        .unwrap_or_else(|e| panic!("sharded mirror verify for {} failed: {e}", kind.name()));
    assert_eq!(
        persist::encode(graph),
        persist::encode(&sharded),
        "sharded mirror of {} run {run} diverged from the in-RAM graph",
        kind.name()
    );
    let on_disk = sharded.on_disk_bytes().unwrap_or(0);
    cfg.obs.note(&format!(
        "  {} run {run}: sharded mirror verified ({} nodes, {} edges, {on_disk} bytes on disk)",
        kind.name(),
        graph.num_nodes(),
        graph.num_edges(),
    ));
    drop(sharded);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Trains one model and evaluates the full metric set.
///
/// Surfaces the pipeline's per-epoch timing breakdown on stderr, and smoke-
/// checks the [`mhg_models::TrainReport`]: a NaN loss or a zero-epoch report
/// under a non-zero epoch budget aborts the experiment instead of publishing
/// garbage numbers.
pub fn run_model(
    model: &mut dyn LinkPredictor,
    dataset: &Dataset,
    split: &EdgeSplit,
    cfg: &ExpConfig,
    run: usize,
) -> Result<FullMetrics, TrainError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x77aa ^ run as u64);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    let report = model.fit(&data, &mut rng)?;
    assert!(
        !report.final_loss.is_nan(),
        "{}: training diverged (final loss is NaN)",
        model.name()
    );
    assert!(
        report.epochs_run > 0 || cfg.epochs == 0,
        "{}: zero-epoch report for a {}-epoch config",
        model.name(),
        cfg.epochs
    );
    let per = report.timing.per_epoch(report.epochs_run);
    cfg.obs.note(&format!(
        "    {}: {} epoch(s), loss {:.4}, best val AUC {:.4}, per-epoch \
         sample {:.0}ms / compute {:.0}ms / eval {:.0}ms",
        model.name(),
        report.epochs_run,
        report.final_loss,
        report.best_val_auc,
        per.sample_ms,
        per.compute_ms,
        per.eval_ms
    ));
    cfg.obs.event(
        "model_report",
        &[
            ("model", EventValue::Str(model.name().to_string())),
            ("run", EventValue::U64(run as u64)),
            ("epochs_run", EventValue::U64(report.epochs_run as u64)),
            ("final_loss", EventValue::F64(f64::from(report.final_loss))),
            ("best_val_auc", EventValue::F64(report.best_val_auc)),
        ],
    );
    Ok(classification_and_ranking(model, dataset, split, cfg, run))
}

/// Marker-file path recording that one (dataset, model, run) cell finished.
fn cell_marker(dir: &Path, kind: DatasetKind, model: &str, run: usize) -> PathBuf {
    dir.join(format!("done-{}-{model}-run{run}.mhgc", kind.name()))
}

/// Persists a finished cell's metrics atomically so a killed experiment can
/// skip the cell on re-run. Errors are reported, not fatal: losing a marker
/// only costs recomputation.
pub fn save_cell(
    obs: &Obs,
    dir: &Path,
    kind: DatasetKind,
    model: &str,
    run: usize,
    m: &FullMetrics,
) {
    let mut dict = mhg_ckpt::StateDict::new();
    dict.put_f64("roc_auc", m.roc_auc);
    dict.put_f64("pr_auc", m.pr_auc);
    dict.put_f64("f1", m.f1);
    dict.put_f64("pr_at_k", m.pr_at_k);
    dict.put_f64("hr_at_k", m.hr_at_k);
    let path = cell_marker(dir, kind, model, run);
    let write = std::fs::create_dir_all(dir)
        .and_then(|()| mhg_ckpt::atomic_write_retry(&path, &mhg_ckpt::encode(&dict), 3));
    if let Err(e) = write {
        obs.note(&format!(
            "warning: could not persist cell marker {}: {e}",
            path.display()
        ));
    }
}

/// Loads a previously persisted cell, if its marker exists and decodes
/// cleanly. A corrupt or truncated marker is treated as absent.
pub fn load_cell(dir: &Path, kind: DatasetKind, model: &str, run: usize) -> Option<FullMetrics> {
    let bytes = mhg_ckpt::read_file(cell_marker(dir, kind, model, run)).ok()?;
    let dict = mhg_ckpt::decode(&bytes).ok()?;
    Some(FullMetrics {
        roc_auc: dict.f64("roc_auc").ok()?,
        pr_auc: dict.f64("pr_auc").ok()?,
        f1: dict.f64("f1").ok()?,
        pr_at_k: dict.f64("pr_at_k").ok()?,
        hr_at_k: dict.f64("hr_at_k").ok()?,
    })
}

/// Evaluates an already-trained model.
pub fn classification_and_ranking(
    model: &dyn LinkPredictor,
    dataset: &Dataset,
    split: &EdgeSplit,
    cfg: &ExpConfig,
    run: usize,
) -> FullMetrics {
    let cls: ModelMetrics = evaluate(model, &split.test);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x99bb ^ run as u64);
    let queries = ranking_queries(
        model,
        &dataset.graph,
        &split.test,
        cfg.pool,
        cfg.max_queries,
        &mut rng,
    );
    let ranked: Vec<_> = queries.into_iter().map(|q| q.query).collect();
    let topk: TopKMetrics = topk_metrics(&ranked, cfg.k);
    FullMetrics {
        roc_auc: cls.roc_auc * 100.0,
        pr_auc: cls.pr_auc * 100.0,
        f1: cls.f1 * 100.0,
        pr_at_k: topk.precision,
        hr_at_k: topk.hit_ratio,
    }
}

/// Prints a Tables IV/V-style header.
pub fn print_header(dataset: &str, k: usize) {
    println!("\n== {dataset} ==");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "model",
        "ROC-AUC",
        "PR-AUC",
        "F1",
        format!("PR@{k}"),
        format!("HR@{k}")
    );
}

/// Prints one model row.
pub fn print_row(name: &str, m: &FullMetrics) {
    println!(
        "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.4} {:>8.4}",
        name, m.roc_auc, m.pr_auc, m.f1, m.pr_at_k, m.hr_at_k
    );
}

/// Runs the Tables IV/V link-prediction comparison over `default_sets`:
/// the selected models × all metrics, averaged over `cfg.runs` repetitions,
/// with a Welch t-test of HybridGNN against the best baseline when
/// `runs ≥ 2` and HybridGNN is among the selected models.
pub fn link_prediction_experiment(cfg: &ExpConfig, default_sets: &[DatasetKind]) {
    for kind in cfg.dataset_set(default_sets) {
        let model_names: Vec<&'static str> = filtered_zoo(cfg).iter().map(|m| m.name()).collect();
        let mut results: Vec<Vec<FullMetrics>> = vec![Vec::new(); model_names.len()];

        for run in 0..cfg.runs {
            let (dataset, split) = prepare(kind, cfg, run);
            for (mi, name) in model_names.iter().enumerate() {
                if let Some(dir) = &cfg.resume_dir {
                    if let Some(metrics) = load_cell(dir, kind, name, run) {
                        // The exact message text is part of the resume-smoke
                        // CI contract (grepped from the harness stderr).
                        cfg.obs
                            .note(&format!("[{kind} run {run}] {name} restored from marker"));
                        results[mi].push(metrics);
                        continue;
                    }
                }
                let cell_cfg = cfg.for_cell(kind, name, run);
                let mut zoo = filtered_zoo(&cell_cfg);
                let model = zoo[mi].as_mut();
                let started = std::time::Instant::now();
                let metrics = run_model(model, &dataset, &split, &cell_cfg, run)
                    .unwrap_or_else(|e| panic!("{name} on {kind}: {e}"));
                cfg.obs.note(&format!(
                    "[{kind} run {run}] {name} done in {:.1?}",
                    started.elapsed()
                ));
                if let Some(dir) = &cfg.resume_dir {
                    save_cell(&cfg.obs, dir, kind, name, run, &metrics);
                }
                results[mi].push(metrics);
            }
        }

        print_header(kind.name(), cfg.k);
        for (mi, name) in model_names.iter().enumerate() {
            print_row(name, &mean_metrics(&results[mi]));
        }

        if cfg.runs >= 2 {
            let Some(hybrid_idx) = model_names.iter().position(|n| *n == "HybridGNN") else {
                continue; // HybridGNN filtered out: nothing to compare
            };
            let hybrid: Vec<f64> = results[hybrid_idx].iter().map(|m| m.roc_auc).collect();
            // Runner-up = best baseline by mean ROC-AUC. NaN-free because
            // ROC-AUC is bounded; total_cmp keeps the fold total anyway.
            let best = results[..hybrid_idx]
                .iter()
                .enumerate()
                .map(|(i, ms)| {
                    (
                        i,
                        mhg_eval::mean(&ms.iter().map(|m| m.roc_auc).collect::<Vec<_>>()),
                    )
                })
                .max_by(|a, b| a.1.total_cmp(&b.1));
            let Some((best_idx, _)) = best else {
                continue; // no baselines configured for this dataset
            };
            let baseline: Vec<f64> = results[best_idx].iter().map(|m| m.roc_auc).collect();
            if let Some(t) = mhg_eval::welch_t_test(&hybrid, &baseline) {
                println!(
                    "t-test HybridGNN vs {} (ROC-AUC over {} runs): t={:.3}, p={:.4}{}",
                    model_names[best_idx],
                    cfg.runs,
                    t.t,
                    t.p_two_tailed,
                    if t.p_two_tailed < 0.01 {
                        "  (p<0.01 *)"
                    } else {
                        ""
                    }
                );
            }
        }
    }
}

/// Flushes the experiment's observability output: writes `metrics.jsonl`
/// when `--metrics-out` (or `MHG_OBS=jsonl=...`) was given and prints the
/// stderr summary when requested. Every `exp_*` binary calls this last.
pub fn finish_metrics(cfg: &ExpConfig) {
    match cfg.obs.finish() {
        Ok(Some(path)) => println!("metrics written to {}", path.display()),
        Ok(None) => {}
        Err(e) => cfg
            .obs
            .note(&format!("warning: could not write metrics: {e}")),
    }
}

/// Component-wise mean of repeated metric measurements.
pub fn mean_metrics(ms: &[FullMetrics]) -> FullMetrics {
    let n = ms.len().max(1) as f64;
    FullMetrics {
        roc_auc: ms.iter().map(|m| m.roc_auc).sum::<f64>() / n,
        pr_auc: ms.iter().map(|m| m.pr_auc).sum::<f64>() / n,
        f1: ms.iter().map(|m| m.f1).sum::<f64>() / n,
        pr_at_k: ms.iter().map(|m| m.pr_at_k).sum::<f64>() / n,
        hr_at_k: ms.iter().map(|m| m.hr_at_k).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let cfg = ExpConfig::default();
        assert!(cfg.scale > 0.0 && cfg.runs >= 1 && cfg.k == 10);
    }

    #[test]
    fn zoo_has_ten_models_in_paper_order() {
        let cfg = ExpConfig {
            epochs: 1,
            ..ExpConfig::default()
        };
        let zoo = model_zoo(&cfg);
        let names: Vec<&str> = zoo.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "DeepWalk",
                "node2vec",
                "LINE",
                "GCN",
                "GraphSage",
                "HAN",
                "MAGNN",
                "R-GCN",
                "GATNE",
                "HybridGNN"
            ]
        );
    }

    #[test]
    fn models_filter_selects_case_insensitively() {
        let mut cfg = ExpConfig {
            epochs: 1,
            ..ExpConfig::default()
        };
        assert!(cfg.selects("HybridGNN"), "empty filter selects everything");
        cfg.models = vec!["deepwalk".to_string(), "GATNE".to_string()];
        let names: Vec<&str> = filtered_zoo(&cfg).iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["DeepWalk", "GATNE"]);
        assert!(!cfg.selects("HybridGNN"));
    }

    #[test]
    fn dataset_set_override() {
        let mut cfg = ExpConfig::default();
        assert_eq!(
            cfg.dataset_set(&[DatasetKind::Amazon]),
            vec![DatasetKind::Amazon]
        );
        cfg.datasets = vec![DatasetKind::Imdb];
        assert_eq!(
            cfg.dataset_set(&[DatasetKind::Amazon]),
            vec![DatasetKind::Imdb]
        );
    }

    #[test]
    fn end_to_end_tiny_run() {
        let cfg = ExpConfig {
            scale: 0.005,
            epochs: 2,
            dim: 16,
            pool: 20,
            max_queries: 10,
            ..ExpConfig::default()
        };
        let (dataset, split) = prepare(DatasetKind::Amazon, &cfg, 0);
        let mut model = DeepWalk::new(cfg.common());
        let m = run_model(&mut model, &dataset, &split, &cfg, 0).expect("fit must succeed");
        assert!(m.roc_auc > 0.0 && m.roc_auc <= 100.0);
        assert!((0.0..=1.0).contains(&m.pr_at_k));
    }
}
