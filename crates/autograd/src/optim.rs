//! Optimizers: SGD and (sparse-aware) Adam.
//!
//! The sparse-aware Adam mirrors "lazy Adam": for embedding tables whose
//! gradients arrive as sparse rows, only the touched rows' moment estimates
//! and values are updated. This matches how the paper's PyTorch
//! implementation would treat `sparse=True` embedding gradients and keeps an
//! epoch over a 100k-node table tractable on CPU.

use std::collections::BTreeMap;

use mhg_tensor::Tensor;

use crate::store::{Grad, GradStore, ParamId, ParamStore};

/// Common optimizer interface.
pub trait Optimizer {
    /// Applies one update step from accumulated gradients.
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }

    /// Serialises the optimizer state (just the learning rate — SGD keeps
    /// no moments) into `dict` under `prefix`.
    pub fn export_state(&self, prefix: &str, dict: &mut mhg_ckpt::StateDict) {
        dict.put_u64(format!("{prefix}/lr"), u64::from(self.lr.to_bits()));
    }

    /// Restores state exported by [`Sgd::export_state`].
    pub fn import_state(
        &mut self,
        prefix: &str,
        dict: &mhg_ckpt::StateDict,
    ) -> Result<(), mhg_ckpt::CkptError> {
        self.lr = f32::from_bits(dict.u64(&format!("{prefix}/lr"))? as u32);
        Ok(())
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        for (id, grad) in grads.iter() {
            let value = params.value_mut(id);
            match grad {
                Grad::Dense(g) => value.axpy(-self.lr, g),
                Grad::Rows { rows, .. } => {
                    for (&r, g) in rows {
                        for (v, gv) in value.row_mut(r).iter_mut().zip(g) {
                            *v -= self.lr * gv;
                        }
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Per-parameter Adam state.
struct AdamState {
    m: Tensor,
    v: Tensor,
    /// Per-row step counts for sparse (lazy) bias correction.
    row_steps: Vec<u32>,
    /// Global step count for dense updates.
    step: u32,
}

/// Adam optimizer with lazy (sparse-aware) updates for row gradients.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    states: BTreeMap<ParamId, AdamState>,
}

impl Adam {
    /// Creates Adam with the paper's defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates Adam with explicit hyper-parameters.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps,
            states: BTreeMap::new(),
        }
    }

    fn state_for(&mut self, id: ParamId, shape: (usize, usize)) -> &mut AdamState {
        self.states.entry(id).or_insert_with(|| AdamState {
            m: Tensor::zeros(shape.0, shape.1),
            v: Tensor::zeros(shape.0, shape.1),
            row_steps: vec![0; shape.0],
            step: 0,
        })
    }

    /// Serialises every per-parameter moment estimate into `dict` under
    /// `prefix` (the state map is ordered by id, so the encoding is
    /// deterministic).
    pub fn export_state(&self, prefix: &str, dict: &mut mhg_ckpt::StateDict) {
        let ids: Vec<u32> = self.states.keys().map(|id| id.0).collect();
        dict.put_u64s(
            format!("{prefix}/ids"),
            ids.iter().map(|&i| u64::from(i)).collect(),
        );
        for raw in ids {
            let state = &self.states[&ParamId(raw)];
            dict.put_tensor(format!("{prefix}/{raw}/m"), state.m.clone());
            dict.put_tensor(format!("{prefix}/{raw}/v"), state.v.clone());
            dict.put_u64s(
                format!("{prefix}/{raw}/rows"),
                state.row_steps.iter().map(|&s| u64::from(s)).collect(),
            );
            dict.put_u64(format!("{prefix}/{raw}/step"), u64::from(state.step));
        }
    }

    /// Restores the moment estimates exported by [`Adam::export_state`],
    /// replacing any current state.
    pub fn import_state(
        &mut self,
        prefix: &str,
        dict: &mhg_ckpt::StateDict,
    ) -> Result<(), mhg_ckpt::CkptError> {
        let ids = dict.u64s(&format!("{prefix}/ids"))?.to_vec();
        let mut states = BTreeMap::new();
        for raw64 in ids {
            let raw = u32::try_from(raw64).map_err(|_| {
                mhg_ckpt::CkptError::WrongType(format!("{prefix}/ids entry {raw64}"))
            })?;
            let m = dict.tensor(&format!("{prefix}/{raw}/m"))?.clone();
            let v = dict.tensor(&format!("{prefix}/{raw}/v"))?.clone();
            let rows = dict.u64s(&format!("{prefix}/{raw}/rows"))?;
            if v.rows() != m.rows() || v.cols() != m.cols() || rows.len() != m.rows() {
                return Err(mhg_ckpt::CkptError::ShapeMismatch(format!(
                    "adam state for parameter {raw}"
                )));
            }
            let row_steps = rows.iter().map(|&s| s as u32).collect();
            let step = dict.u64(&format!("{prefix}/{raw}/step"))? as u32;
            states.insert(
                ParamId(raw),
                AdamState {
                    m,
                    v,
                    row_steps,
                    step,
                },
            );
        }
        self.states = states;
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, grads: &GradStore) {
        for (id, grad) in grads.iter() {
            let shape = {
                let v = params.value(id);
                (v.rows(), v.cols())
            };
            let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
            let state = self.state_for(id, shape);
            let value = params.value_mut(id);
            match grad {
                Grad::Dense(g) => {
                    state.step += 1;
                    let t = state.step as f32;
                    let bc1 = 1.0 - b1.powf(t);
                    let bc2 = 1.0 - b2.powf(t);
                    let (m, v) = (state.m.as_mut_slice(), state.v.as_mut_slice());
                    for (((p, gv), mv), vv) in value
                        .as_mut_slice()
                        .iter_mut()
                        .zip(g.as_slice())
                        .zip(m.iter_mut())
                        .zip(v.iter_mut())
                    {
                        *mv = b1 * *mv + (1.0 - b1) * gv;
                        *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                        let m_hat = *mv / bc1;
                        let v_hat = *vv / bc2;
                        *p -= lr * m_hat / (v_hat.sqrt() + eps);
                    }
                }
                Grad::Rows { rows, .. } => {
                    for (&r, g) in rows {
                        state.row_steps[r] += 1;
                        let t = state.row_steps[r] as f32;
                        let bc1 = 1.0 - b1.powf(t);
                        let bc2 = 1.0 - b2.powf(t);
                        let m_row = state.m.row_mut(r);
                        for (mv, gv) in m_row.iter_mut().zip(g) {
                            *mv = b1 * *mv + (1.0 - b1) * gv;
                        }
                        let v_row = state.v.row_mut(r);
                        for (vv, gv) in v_row.iter_mut().zip(g) {
                            *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                        }
                        for ((p, mv), vv) in value
                            .row_mut(r)
                            .iter_mut()
                            .zip(state.m.row(r))
                            .zip(state.v.row(r))
                        {
                            let m_hat = mv / bc1;
                            let v_hat = vv / bc2;
                            *p -= lr * m_hat / (v_hat.sqrt() + eps);
                        }
                    }
                }
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// Minimises f(w) = (w − 3)² over a 1×1 parameter.
    fn converges_to_three(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut params = ParamStore::new();
        let w = params.register("w", Tensor::from_vec(1, 1, vec![0.0]));
        for _ in 0..steps {
            let mut g = Graph::new(&params);
            let wv = g.param(w);
            let target = g.constant(Tensor::from_vec(1, 1, vec![3.0]));
            let diff = g.sub(wv, target);
            let sq = g.mul(diff, diff);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            opt.step(&mut params, &grads);
        }
        params.value(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = converges_to_three(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = converges_to_three(&mut opt, 500);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn sparse_adam_only_touches_gathered_rows() {
        let mut params = ParamStore::new();
        let table = params.register("emb", Tensor::zeros(4, 2));
        let mut opt = Adam::new(0.05);
        // Pull row 2 toward (1, 1); rows 0, 1, 3 must stay exactly zero.
        for _ in 0..100 {
            let mut g = Graph::new(&params);
            let rows = g.gather(table, &[2]);
            let target = g.constant(Tensor::from_rows(&[&[1.0, 1.0]]));
            let diff = g.sub(rows, target);
            let sq = g.mul(diff, diff);
            let loss = g.sum_all(sq);
            let grads = g.backward(loss);
            opt.step(&mut params, &grads);
        }
        let t = params.value(table);
        assert!(t.row(0).iter().all(|&v| v == 0.0));
        assert!(t.row(1).iter().all(|&v| v == 0.0));
        assert!(t.row(3).iter().all(|&v| v == 0.0));
        assert!(t.row(2).iter().all(|&v| (v - 1.0).abs() < 0.05), "{t:?}");
    }

    #[test]
    fn learning_rate_override() {
        let mut opt = Sgd::new(0.5);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.25);
        assert_eq!(opt.learning_rate(), 0.25);
    }
}
