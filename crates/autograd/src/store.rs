//! Parameter storage and gradient accumulation.
//!
//! Parameters (embedding tables, weight matrices) live outside the per-step
//! tape in a [`ParamStore`], so that large embedding tables are never copied
//! onto the tape: the tape only ever *gathers* the rows a batch touches.
//! Gradients accumulate into a [`GradStore`], which keeps embedding-table
//! gradients sparse (per-row) — the optimizer then only updates touched rows.

use std::collections::BTreeMap;
use std::fmt;

use mhg_tensor::Tensor;

/// Identifier of a parameter tensor inside a [`ParamStore`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ParamId(pub(crate) u32);

impl ParamId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Owns all trainable tensors of a model.
#[derive(Default)]
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<Tensor>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its id.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len() as u32);
        self.names.push(name.into());
        self.values.push(value);
        id
    }

    /// Immutable access to a parameter's value.
    #[inline]
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.index()]
    }

    /// Mutable access to a parameter's value (used by optimizers).
    #[inline]
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.index()]
    }

    /// The parameter's registered name.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(id, name, value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i as u32), self.names[i].as_str(), v))
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Serialises every parameter tensor into `dict` under
    /// `"<prefix>/<index>"` (plus a `"<prefix>/n"` count), for
    /// checkpointing. Registration order is the identity of a parameter, so
    /// indices — not names — key the entries.
    pub fn export_state(&self, prefix: &str, dict: &mut mhg_ckpt::StateDict) {
        dict.put_u64(format!("{prefix}/n"), self.len() as u64);
        for (id, _name, value) in self.iter() {
            dict.put_tensor(format!("{prefix}/{}", id.index()), value.clone());
        }
    }

    /// Restores parameter values exported by [`ParamStore::export_state`]
    /// into an already-registered store. The checkpoint must describe the
    /// same architecture: same parameter count, same shapes.
    pub fn import_state(
        &mut self,
        prefix: &str,
        dict: &mhg_ckpt::StateDict,
    ) -> Result<(), mhg_ckpt::CkptError> {
        let n = dict.u64(&format!("{prefix}/n"))? as usize;
        if n != self.len() {
            return Err(mhg_ckpt::CkptError::ShapeMismatch(format!(
                "store has {} parameters, checkpoint has {n}",
                self.len()
            )));
        }
        for i in 0..n {
            let src = dict.tensor(&format!("{prefix}/{i}"))?;
            let dst = &mut self.values[i];
            if src.rows() != dst.rows() || src.cols() != dst.cols() {
                return Err(mhg_ckpt::CkptError::ShapeMismatch(format!(
                    "parameter `{}` is {}x{}, checkpoint entry is {}x{}",
                    self.names[i],
                    dst.rows(),
                    dst.cols(),
                    src.rows(),
                    src.cols()
                )));
            }
            *dst = src.clone();
        }
        Ok(())
    }
}

impl fmt::Debug for ParamStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("ParamStore");
        for (id, name, v) in self.iter() {
            d.field(name, &format_args!("#{} {}", id.index(), v.shape()));
        }
        d.finish()
    }
}

/// Gradient of one parameter: dense, or sparse rows for embedding tables.
#[derive(Debug, Clone)]
pub enum Grad {
    /// Dense gradient with the parameter's full shape.
    Dense(Tensor),
    /// Sparse per-row gradients (row index → gradient row).
    Rows {
        /// Width of every gradient row.
        cols: usize,
        /// Accumulated row gradients (ordered, so iteration order —
        /// and anything serialized or reduced from it — is deterministic).
        rows: BTreeMap<usize, Vec<f32>>,
    },
}

impl Grad {
    /// Sum of squared entries (for global-norm clipping).
    pub fn norm_sq(&self) -> f32 {
        match self {
            Grad::Dense(t) => t.norm_sq(),
            Grad::Rows { rows, .. } => rows
                .values()
                .map(|r| r.iter().map(|v| v * v).sum::<f32>())
                .sum(),
        }
    }

    /// Scales the gradient in place.
    pub fn scale_in_place(&mut self, s: f32) {
        match self {
            Grad::Dense(t) => {
                for v in t.as_mut_slice() {
                    *v *= s;
                }
            }
            Grad::Rows { rows, .. } => {
                for r in rows.values_mut() {
                    for v in r {
                        *v *= s;
                    }
                }
            }
        }
    }
}

/// Accumulated gradients for a training step, keyed by [`ParamId`].
#[derive(Default, Debug)]
pub struct GradStore {
    grads: BTreeMap<ParamId, Grad>,
}

impl GradStore {
    /// Creates an empty gradient store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates a dense gradient for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` already has a sparse gradient of mismatched width, or a
    /// dense gradient of a different shape.
    pub fn accumulate_dense(&mut self, id: ParamId, grad: Tensor) {
        match self.grads.get_mut(&id) {
            None => {
                self.grads.insert(id, Grad::Dense(grad));
            }
            Some(Grad::Dense(existing)) => existing.axpy(1.0, &grad),
            Some(Grad::Rows { cols, rows }) => {
                // Promote by folding the dense grad into rows.
                assert_eq!(*cols, grad.cols(), "gradient width mismatch");
                for r in 0..grad.rows() {
                    let entry = rows.entry(r).or_insert_with(|| vec![0.0; *cols]);
                    for (e, g) in entry.iter_mut().zip(grad.row(r)) {
                        *e += g;
                    }
                }
            }
        }
    }

    /// Accumulates a gradient for a single row of parameter `id`.
    pub fn accumulate_row(&mut self, id: ParamId, row: usize, grad_row: &[f32]) {
        match self.grads.get_mut(&id) {
            Some(Grad::Dense(existing)) => {
                assert_eq!(existing.cols(), grad_row.len(), "gradient width mismatch");
                for (e, g) in existing.row_mut(row).iter_mut().zip(grad_row) {
                    *e += g;
                }
            }
            Some(Grad::Rows { cols, rows }) => {
                assert_eq!(*cols, grad_row.len(), "gradient width mismatch");
                let entry = rows.entry(row).or_insert_with(|| vec![0.0; *cols]);
                for (e, g) in entry.iter_mut().zip(grad_row) {
                    *e += g;
                }
            }
            None => {
                let mut rows = BTreeMap::new();
                rows.insert(row, grad_row.to_vec());
                self.grads.insert(
                    id,
                    Grad::Rows {
                        cols: grad_row.len(),
                        rows,
                    },
                );
            }
        }
    }

    /// Accumulates the gradient of a whole gathered batch at once:
    /// `grad.row(r)` is added into row `indices[r]` of parameter `id`.
    ///
    /// Runs on the `mhg-par` pool while keeping the sparse representation:
    /// workers build partial row maps over fixed destination-index ranges
    /// (each destination row's contributions are visited in input order, so
    /// its sum is the same for any partition of the index space), and the
    /// disjoint partials merge in partition order — bit-identical for any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `indices.len() != grad.rows()` or the width mismatches an
    /// existing gradient for `id`.
    pub fn accumulate_gather(&mut self, id: ParamId, indices: &[u32], grad: &Tensor) {
        use std::collections::btree_map::Entry;
        assert_eq!(
            indices.len(),
            grad.rows(),
            "accumulate_gather: {} indices for {} gradient rows",
            indices.len(),
            grad.rows()
        );
        if indices.is_empty() {
            return;
        }
        if let Some(Grad::Dense(existing)) = self.grads.get_mut(&id) {
            existing.scatter_add_rows(indices, grad);
            return;
        }
        let cols = grad.cols();
        let span = indices
            .iter()
            .map(|&i| i as usize)
            .max()
            .map_or(0, |m| m + 1);
        let partials = mhg_par::par_partitions(span, indices.len() * (cols + 1), |range| {
            let mut map: BTreeMap<usize, Vec<f32>> = BTreeMap::new();
            for (r, &idx) in indices.iter().enumerate() {
                let idx = idx as usize;
                if range.contains(&idx) {
                    let entry = map.entry(idx).or_insert_with(|| vec![0.0; cols]);
                    for (e, g) in entry.iter_mut().zip(grad.row(r)) {
                        *e += g;
                    }
                }
            }
            map
        });
        match self.grads.entry(id).or_insert_with(|| Grad::Rows {
            cols,
            rows: BTreeMap::new(),
        }) {
            // Unreachable in practice (handled above), but kept correct.
            Grad::Dense(existing) => existing.scatter_add_rows(indices, grad),
            Grad::Rows { cols: width, rows } => {
                assert_eq!(*width, cols, "gradient width mismatch");
                for map in partials {
                    for (row, partial) in map {
                        match rows.entry(row) {
                            Entry::Occupied(mut e) => {
                                for (a, b) in e.get_mut().iter_mut().zip(&partial) {
                                    *a += b;
                                }
                            }
                            Entry::Vacant(v) => {
                                v.insert(partial);
                            }
                        }
                    }
                }
            }
        }
    }

    /// The gradient for `id`, if any part of the model touched it.
    pub fn get(&self, id: ParamId) -> Option<&Grad> {
        self.grads.get(&id)
    }

    /// Iterates over `(id, grad)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Grad)> {
        self.grads.iter().map(|(&id, g)| (id, g))
    }

    /// Mutable iteration (used by clipping).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ParamId, &mut Grad)> {
        self.grads.iter_mut().map(|(&id, g)| (id, g))
    }

    /// Number of parameters with gradients.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether no gradients were recorded.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Global L2 norm across all stored gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads.values().map(Grad::norm_sq).sum::<f32>().sqrt()
    }

    /// Clips gradients so the global norm is at most `max_norm`.
    ///
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in self.grads.values_mut() {
                g.scale_in_place(s);
            }
        }
        norm
    }

    /// Converts the gradient of `id` to a dense tensor of shape `shape`
    /// (zeros where untouched). Test helper.
    pub fn to_dense(&self, id: ParamId, rows: usize, cols: usize) -> Tensor {
        let mut out = Tensor::zeros(rows, cols);
        match self.grads.get(&id) {
            None => {}
            Some(Grad::Dense(t)) => out = t.clone(),
            Some(Grad::Rows { rows: map, .. }) => {
                for (&r, g) in map {
                    for (o, v) in out.row_mut(r).iter_mut().zip(g) {
                        *o += v;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::zeros(2, 3));
        assert_eq!(store.name(id), "w");
        assert_eq!(store.value(id).shape().rows, 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 6);
    }

    #[test]
    fn dense_accumulation_adds() {
        let mut gs = GradStore::new();
        let id = ParamId(0);
        gs.accumulate_dense(id, Tensor::full(2, 2, 1.0));
        gs.accumulate_dense(id, Tensor::full(2, 2, 2.0));
        let d = gs.to_dense(id, 2, 2);
        assert_eq!(d, Tensor::full(2, 2, 3.0));
    }

    #[test]
    fn row_accumulation_is_sparse() {
        let mut gs = GradStore::new();
        let id = ParamId(1);
        gs.accumulate_row(id, 5, &[1.0, 2.0]);
        gs.accumulate_row(id, 5, &[1.0, 2.0]);
        gs.accumulate_row(id, 0, &[3.0, 0.0]);
        match gs.get(id).unwrap() {
            Grad::Rows { rows, cols } => {
                assert_eq!(*cols, 2);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[&5], vec![2.0, 4.0]);
            }
            _ => panic!("expected sparse grad"),
        }
    }

    #[test]
    fn mixed_dense_and_rows() {
        let mut gs = GradStore::new();
        let id = ParamId(0);
        gs.accumulate_row(id, 1, &[1.0, 1.0]);
        gs.accumulate_dense(id, Tensor::full(3, 2, 0.5));
        let d = gs.to_dense(id, 3, 2);
        assert_eq!(d.row(0), &[0.5, 0.5]);
        assert_eq!(d.row(1), &[1.5, 1.5]);
    }

    #[test]
    fn clip_reduces_norm() {
        let mut gs = GradStore::new();
        gs.accumulate_dense(ParamId(0), Tensor::full(1, 4, 3.0)); // norm 6
        let pre = gs.clip_global_norm(1.0);
        assert!((pre - 6.0).abs() < 1e-5);
        assert!((gs.global_norm() - 1.0).abs() < 1e-5);
        // A second clip with a larger bound is a no-op.
        let pre2 = gs.clip_global_norm(5.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
    }
}
