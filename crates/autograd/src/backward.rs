//! Reverse-mode gradient computation over the tape.

use mhg_tensor::{sigmoid_scalar, Tensor};

use crate::graph::{Graph, Op, Var};
use crate::store::GradStore;

impl Graph<'_> {
    /// Runs the backward pass from a `1 × 1` loss variable and returns the
    /// accumulated parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not `1 × 1`. Under `--features checked` the tape
    /// is additionally validated via [`Graph::validate_tape`] before the
    /// pass and the produced gradients via [`Graph::validate_grads`] after,
    /// so malformed tapes and corrupt gradients fail with a diagnostic.
    pub fn backward(&self, loss: Var) -> GradStore {
        #[cfg(feature = "checked")]
        self.validate_tape();
        let loss_t = self.value(loss);
        assert_eq!(
            (loss_t.rows(), loss_t.cols()),
            (1, 1),
            "backward() requires a scalar loss, got {}",
            loss_t.shape()
        );

        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = vec![None; n];
        grads[loss.index()] = Some(Tensor::from_vec(1, 1, vec![1.0]));

        let mut store = GradStore::new();

        for i in (0..n).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::Param(pid) => store.accumulate_dense(*pid, g),
                Op::Gather { pid, indices } => store.accumulate_gather(*pid, indices, &g),
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = g.mul(self.value(*b));
                    let gb = g.mul(self.value(*a));
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Scale(a, s) => accumulate(&mut grads, *a, g.scale(*s)),
                Op::MatMul(a, b) => {
                    // C = A·B ⇒ dA = dC·Bᵀ, dB = Aᵀ·dC
                    let ga = g.matmul_transposed(self.value(*b));
                    let gb = self.value(*a).transpose().matmul(&g);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Transpose(a) => accumulate(&mut grads, *a, g.transpose()),
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.zip_map(y, |gv, yv| gv * yv * (1.0 - yv));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let ga = g.zip_map(y, |gv, yv| gv * (1.0 - yv * yv));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Relu(a) => {
                    let x = self.value(*a);
                    let ga = g.zip_map(x, |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                    accumulate(&mut grads, *a, ga);
                }
                Op::SoftmaxRows(a) => {
                    // Per row: dx = y ⊙ (dy − (dy·y) 1); rows are independent,
                    // so they parallelise under the mhg-par contract.
                    let y = &self.nodes[i].value;
                    let cols = y.cols();
                    let mut ga = Tensor::zeros(y.rows(), cols);
                    if !ga.is_empty() {
                        let (gs, ys) = (g.as_slice(), y.as_slice());
                        mhg_par::par_chunks_mut(ga.as_mut_slice(), cols, 4 * cols, |r0, chunk| {
                            for (rr, out_row) in chunk.chunks_exact_mut(cols).enumerate() {
                                let r = r0 + rr;
                                let dy = &gs[r * cols..(r + 1) * cols];
                                let yr = &ys[r * cols..(r + 1) * cols];
                                let dot: f32 = dy.iter().zip(yr).map(|(d, v)| d * v).sum();
                                for ((o, &d), &v) in out_row.iter_mut().zip(dy).zip(yr) {
                                    *o = v * (d - dot);
                                }
                            }
                        });
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::MeanRows(a) => {
                    let src_rows = self.value(*a).rows();
                    let inv = 1.0 / src_rows.max(1) as f32;
                    let mut ga = Tensor::zeros(src_rows, g.cols());
                    for r in 0..src_rows {
                        for (o, v) in ga.row_mut(r).iter_mut().zip(g.row(0)) {
                            *o = v * inv;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::SumRows(a) => {
                    let src_rows = self.value(*a).rows();
                    let mut ga = Tensor::zeros(src_rows, g.cols());
                    for r in 0..src_rows {
                        ga.set_row(r, g.row(0));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::MaxRows(a) => {
                    let src = self.value(*a);
                    let y = &self.nodes[i].value;
                    let mut ga = Tensor::zeros(src.rows(), src.cols());
                    for c in 0..src.cols() {
                        // First arg-max row receives the gradient.
                        for r in 0..src.rows() {
                            if src[(r, c)] == y[(0, c)] {
                                ga[(r, c)] = g[(0, c)];
                                break;
                            }
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ConcatRows(parts) => {
                    let mut offset = 0;
                    for &p in parts {
                        let rows = self.value(p).rows();
                        let indices: Vec<usize> = (offset..offset + rows).collect();
                        accumulate(&mut grads, p, g.gather_rows(&indices));
                        offset += rows;
                    }
                }
                Op::SliceRows(a, start, end) => {
                    let src = self.value(*a);
                    let mut ga = Tensor::zeros(src.rows(), src.cols());
                    for (out_r, src_r) in (*start..*end).enumerate() {
                        ga.set_row(src_r, g.row(out_r));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::RowDot(a, b) => {
                    let (ta, tb) = (self.value(*a), self.value(*b));
                    let mut ga = Tensor::zeros(ta.rows(), ta.cols());
                    let mut gb = Tensor::zeros(tb.rows(), tb.cols());
                    for r in 0..ta.rows() {
                        let gr = g[(r, 0)];
                        for (o, &bv) in ga.row_mut(r).iter_mut().zip(tb.row(r)) {
                            *o = gr * bv;
                        }
                        for (o, &av) in gb.row_mut(r).iter_mut().zip(ta.row(r)) {
                            *o = gr * av;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::AddBroadcastRow(a, bias) => {
                    // d bias = column sums of g.
                    let mut gb = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, v) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    accumulate(&mut grads, *a, g);
                    accumulate(&mut grads, *bias, gb);
                }
                Op::LogisticLoss { scores, labels } => {
                    // L = mean_i −log σ(y_i s_i) ⇒ dL/ds_i = −y_i σ(−y_i s_i)/n
                    let s = self.value(*scores);
                    let n = labels.len().max(1) as f32;
                    let upstream = g[(0, 0)];
                    let mut gs = Tensor::zeros(s.rows(), 1);
                    for (r, &y) in labels.iter().enumerate() {
                        gs[(r, 0)] = upstream * (-y * sigmoid_scalar(-y * s[(r, 0)])) / n;
                    }
                    accumulate(&mut grads, *scores, gs);
                }
                Op::SumAll(a) => {
                    let src = self.value(*a);
                    let ga = Tensor::full(src.rows(), src.cols(), g[(0, 0)]);
                    accumulate(&mut grads, *a, ga);
                }
            }
        }

        #[cfg(feature = "checked")]
        self.validate_grads(&store);
        store
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.index()] {
        Some(existing) => existing.axpy(1.0, &g),
        slot @ None => *slot = Some(g),
    }
}
