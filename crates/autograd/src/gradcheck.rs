//! Finite-difference gradient checking.
//!
//! Used by the crate's own property tests and exported so downstream model
//! crates can verify their composed computations end-to-end.

use mhg_tensor::Tensor;

use crate::graph::{Graph, Var};
use crate::store::{ParamId, ParamStore};

/// Result of a gradient check for a single parameter.
#[derive(Debug)]
pub struct GradCheck {
    /// Parameter checked.
    pub id: ParamId,
    /// Maximum absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Maximum relative difference (guarded against tiny denominators).
    pub max_rel_err: f32,
}

/// Checks analytic gradients of `build` against central finite differences.
///
/// `build` must construct the forward computation on the given graph and
/// return the scalar loss variable. It is invoked repeatedly with perturbed
/// parameter stores, so it must be deterministic given the store contents.
///
/// Returns one [`GradCheck`] per parameter in the store.
pub fn check_gradients(
    params: &mut ParamStore,
    build: impl Fn(&mut Graph<'_>) -> Var,
    h: f32,
) -> Vec<GradCheck> {
    // Analytic pass.
    let analytic = {
        let mut g = Graph::new(params);
        let loss = build(&mut g);
        g.backward(loss)
    };

    let ids: Vec<ParamId> = params.iter().map(|(id, _, _)| id).collect();
    let mut results = Vec::with_capacity(ids.len());

    for id in ids {
        let (rows, cols) = {
            let v = params.value(id);
            (v.rows(), v.cols())
        };
        let analytic_dense = analytic.to_dense(id, rows, cols);
        let mut numeric = Tensor::zeros(rows, cols);

        for r in 0..rows {
            for c in 0..cols {
                let original = params.value(id)[(r, c)];

                params.value_mut(id)[(r, c)] = original + h;
                let plus = eval_loss(params, &build);

                params.value_mut(id)[(r, c)] = original - h;
                let minus = eval_loss(params, &build);

                params.value_mut(id)[(r, c)] = original;
                numeric[(r, c)] = (plus - minus) / (2.0 * h);
            }
        }

        let mut max_abs = 0.0f32;
        let mut max_rel = 0.0f32;
        for (a, n) in analytic_dense.as_slice().iter().zip(numeric.as_slice()) {
            let abs = (a - n).abs();
            let denom = a.abs().max(n.abs()).max(1e-2);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(abs / denom);
        }
        results.push(GradCheck {
            id,
            max_abs_err: max_abs,
            max_rel_err: max_rel,
        });
    }

    results
}

fn eval_loss(params: &ParamStore, build: &impl Fn(&mut Graph<'_>) -> Var) -> f32 {
    let mut g = Graph::new(params);
    let loss = build(&mut g);
    g.scalar(loss)
}

/// Asserts that all parameters pass the gradient check within `tol`
/// (relative error, with an absolute fallback for near-zero gradients).
///
/// # Panics
///
/// Panics with a descriptive message when a parameter fails.
pub fn assert_gradients_close(
    params: &mut ParamStore,
    build: impl Fn(&mut Graph<'_>) -> Var,
    tol: f32,
) {
    for check in check_gradients(params, build, 1e-2) {
        assert!(
            check.max_rel_err < tol || check.max_abs_err < tol * 0.1,
            "gradient check failed for param #{}: rel {:.2e}, abs {:.2e} (tol {tol:.2e})",
            check.id.index(),
            check.max_rel_err,
            check.max_abs_err,
        );
    }
}
