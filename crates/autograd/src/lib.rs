//! Reverse-mode automatic differentiation for the HybridGNN reproduction.
//!
//! The paper's model (and every baseline) is trained by gradient descent on
//! losses built from a small set of dense operations. This crate provides:
//!
//! * [`ParamStore`] — owns all trainable tensors; embedding tables are only
//!   ever *gathered* onto the tape, never copied whole.
//! * [`Graph`] — a per-step tape recording the forward computation, with
//!   [`Graph::backward`] producing a [`GradStore`].
//! * [`Sgd`] / [`Adam`] — optimizers; Adam performs lazy (per-row) updates
//!   for sparse embedding gradients.
//! * [`gradcheck`] — finite-difference verification used by the test suite.
//!
//! # Example
//!
//! ```
//! use mhg_autograd::{Adam, Graph, Optimizer, ParamStore};
//! use mhg_tensor::Tensor;
//!
//! let mut params = ParamStore::new();
//! let w = params.register("w", Tensor::zeros(1, 1));
//! let mut opt = Adam::new(0.1);
//! for _ in 0..200 {
//!     let mut g = Graph::new(&params);
//!     let wv = g.param(w);
//!     let t = g.constant(Tensor::from_vec(1, 1, vec![2.0]));
//!     let d = g.sub(wv, t);
//!     let sq = g.mul(d, d);
//!     let loss = g.sum_all(sq);
//!     let grads = g.backward(loss);
//!     opt.step(&mut params, &grads);
//! }
//! assert!((params.value(w)[(0, 0)] - 2.0).abs() < 0.05);
//! ```

mod backward;
pub mod gradcheck;
mod graph;
mod optim;
mod store;
mod validate;

pub use graph::{Graph, Var};
pub use optim::{Adam, Optimizer, Sgd};
pub use store::{Grad, GradStore, ParamId, ParamStore};
