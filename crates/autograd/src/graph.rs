//! The differentiation tape: forward op recording.
//!
//! A [`Graph`] is created per training step, records the forward computation
//! as a flat tape of [`Node`]s, and is consumed by
//! [`Graph::backward`](crate::Graph::backward) to produce a
//! [`GradStore`](crate::GradStore). Variables ([`Var`]) are indices into the
//! tape and are `Copy`.

use mhg_tensor::Tensor;

use crate::store::{ParamId, ParamStore};

/// Handle to a tape node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Var(pub(crate) u32);

impl Var {
    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// An operation recorded on the tape.
#[derive(Debug)]
pub(crate) enum Op {
    /// Constant input; receives no gradient.
    Leaf,
    /// Whole-parameter leaf (small weight matrices).
    Param(ParamId),
    /// Embedding-row gather from a parameter table.
    Gather { pid: ParamId, indices: Vec<u32> },
    /// Elementwise sum.
    Add(Var, Var),
    /// Elementwise difference.
    Sub(Var, Var),
    /// Elementwise product.
    Mul(Var, Var),
    /// Scalar multiple.
    Scale(Var, f32),
    /// Matrix product.
    MatMul(Var, Var),
    /// Transpose.
    Transpose(Var),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Rectified linear unit.
    Relu(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// Column-wise mean producing a `1 × d` row.
    MeanRows(Var),
    /// Column-wise sum producing a `1 × d` row.
    SumRows(Var),
    /// Column-wise maximum producing a `1 × d` row.
    MaxRows(Var),
    /// Vertical stack of rows.
    ConcatRows(Vec<Var>),
    /// Row-wise dot product of two `n × d` tensors, producing `n × 1`.
    RowDot(Var, Var),
    /// Adds a `1 × d` row vector to every row of a matrix.
    AddBroadcastRow(Var, Var),
    /// Contiguous row slice `[start, end)`.
    SliceRows(Var, usize, usize),
    /// Mean negative log-sigmoid loss over labelled scores (`n × 1` → `1 × 1`).
    LogisticLoss { scores: Var, labels: Vec<f32> },
    /// Sum of all entries (`1 × 1`), used for L2 regularisation terms.
    SumAll(Var),
}

pub(crate) struct Node {
    pub value: Tensor,
    pub op: Op,
}

/// A per-step reverse-mode differentiation tape.
pub struct Graph<'s> {
    pub(crate) store: &'s ParamStore,
    pub(crate) nodes: Vec<Node>,
}

impl<'s> Graph<'s> {
    /// Creates an empty tape over a parameter store.
    pub fn new(store: &'s ParamStore) -> Self {
        Self {
            store,
            nodes: Vec::with_capacity(256),
        }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        #[cfg(feature = "checked")]
        value.assert_finite(&format!("recording tape node {op:?}"));
        #[cfg(not(feature = "checked"))]
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        let v = Var(self.nodes.len() as u32);
        self.nodes.push(Node { value, op });
        v
    }

    /// The forward value of a variable.
    ///
    /// # Panics
    ///
    /// Under `--features checked`, panics with a diagnostic if `v` does not
    /// belong to this tape (a dangling `Var` forged on another graph).
    #[inline]
    pub fn value(&self, v: Var) -> &Tensor {
        #[cfg(feature = "checked")]
        assert!(
            v.index() < self.nodes.len(),
            "dangling Var #{}: this tape has only {} node(s) — was the Var \
             created on another Graph?",
            v.index(),
            self.nodes.len(),
        );
        &self.nodes[v.index()].value
    }

    /// Shape of a parameter in the underlying store (no tape node created).
    pub fn param_shape(&self, id: ParamId) -> mhg_tensor::Shape {
        self.store.value(id).shape()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ------------------------------------------------------------------
    // Inputs
    // ------------------------------------------------------------------

    /// Records a constant (non-differentiable) input.
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// Records a whole parameter as a differentiable leaf.
    ///
    /// Copies the value onto the tape — intended for small weight matrices.
    /// For embedding tables use [`Graph::gather`].
    pub fn param(&mut self, id: ParamId) -> Var {
        let value = self.store.value(id).clone();
        self.push(value, Op::Param(id))
    }

    /// Gathers rows `indices` of parameter `id` into an `n × d` variable.
    ///
    /// The backward pass scatter-adds into a sparse per-row gradient, so the
    /// full table is never materialised on the tape.
    pub fn gather(&mut self, id: ParamId, indices: &[u32]) -> Var {
        let table = self.store.value(id);
        let mut out = Tensor::zeros(indices.len(), table.cols());
        for (r, &idx) in indices.iter().enumerate() {
            assert!(
                (idx as usize) < table.rows(),
                "gather: row index {idx} out of bounds for parameter table \
                 `{}` with {} rows",
                self.store.name(id),
                table.rows()
            );
            out.set_row(r, table.row(idx as usize));
        }
        self.push(
            out,
            Op::Gather {
                pid: id,
                indices: indices.to_vec(),
            },
        )
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        self.push(value, Op::Add(a, b))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        self.push(value, Op::Sub(a, b))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul(self.value(b));
        self.push(value, Op::Mul(a, b))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scale(s);
        self.push(value, Op::Scale(a, s))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        self.push(value, Op::MatMul(a, b))
    }

    /// Transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        self.push(value, Op::Transpose(a))
    }

    /// Adds a `1 × d` row vector to every row of `a`.
    pub fn add_broadcast_row(&mut self, a: Var, bias: Var) -> Var {
        let value = self.value(a).add_row_broadcast(self.value(bias));
        self.push(value, Op::AddBroadcastRow(a, bias))
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).sigmoid();
        self.push(value, Op::Sigmoid(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).map(f32::tanh);
        self.push(value, Op::Tanh(a))
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|x| x.max(0.0));
        self.push(value, Op::Relu(a))
    }

    /// Numerically-stable row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).softmax_rows();
        self.push(value, Op::SoftmaxRows(a))
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Column-wise mean producing a `1 × d` row vector.
    pub fn mean_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).mean_rows();
        self.push(value, Op::MeanRows(a))
    }

    /// Column-wise sum producing a `1 × d` row vector.
    pub fn sum_rows(&mut self, a: Var) -> Var {
        let src = self.value(a);
        let value = src.mean_rows().scale(src.rows() as f32);
        self.push(value, Op::SumRows(a))
    }

    /// Column-wise maximum producing a `1 × d` row vector (max-pooling
    /// aggregator). Gradient flows to the (first) arg-max entry per column.
    ///
    /// # Panics
    ///
    /// Panics on an empty input.
    pub fn max_rows(&mut self, a: Var) -> Var {
        let src = self.value(a);
        assert!(src.rows() > 0, "max_rows of empty tensor");
        let mut value = mhg_tensor::Tensor::zeros(1, src.cols());
        for c in 0..src.cols() {
            let mut best = f32::NEG_INFINITY;
            for r in 0..src.rows() {
                best = best.max(src[(r, c)]);
            }
            value[(0, c)] = best;
        }
        self.push(value, Op::MaxRows(a))
    }

    /// Vertically stacks variables (all must share a width).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of zero vars");
        let tensors: Vec<&Tensor> = parts.iter().map(|&p| self.value(p)).collect();
        let value = Tensor::vstack(&tensors);
        self.push(value, Op::ConcatRows(parts.to_vec()))
    }

    /// Contiguous row slice `[start, end)` of `a`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or empty.
    pub fn slice_rows(&mut self, a: Var, start: usize, end: usize) -> Var {
        let src = self.value(a);
        assert!(
            start < end && end <= src.rows(),
            "bad row slice {start}..{end}"
        );
        let indices: Vec<usize> = (start..end).collect();
        let value = src.gather_rows(&indices);
        self.push(value, Op::SliceRows(a, start, end))
    }

    /// Row-wise dot product of two `n × d` variables, producing `n × 1`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn row_dot(&mut self, a: Var, b: Var) -> Var {
        let (ta, tb) = (self.value(a), self.value(b));
        assert_eq!(ta.shape(), tb.shape(), "row_dot shape mismatch");
        let mut value = Tensor::zeros(ta.rows(), 1);
        for i in 0..ta.rows() {
            value[(i, 0)] = ta.row_dot(i, tb, i);
        }
        self.push(value, Op::RowDot(a, b))
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mean negative log-sigmoid loss: `mean_i -log σ(labels[i] · scores[i])`.
    ///
    /// `labels` must be ±1: +1 for positive pairs, −1 for negative samples.
    /// This is the skip-gram-with-negative-sampling objective of the paper's
    /// Eq. 13 applied to a batch of scored pairs.
    ///
    /// # Panics
    ///
    /// Panics unless `scores` is `n × 1` with `n == labels.len()`.
    pub fn logistic_loss(&mut self, scores: Var, labels: &[f32]) -> Var {
        let s = self.value(scores);
        assert_eq!(s.cols(), 1, "scores must be a column");
        assert_eq!(s.rows(), labels.len(), "labels length mismatch");
        debug_assert!(labels.iter().all(|&l| l == 1.0 || l == -1.0));
        let n = labels.len().max(1) as f32;
        let loss = -labels
            .iter()
            .zip(s.as_slice())
            .map(|(&y, &sc)| mhg_tensor::log_sigmoid(y * sc))
            .sum::<f32>()
            / n;
        self.push(
            Tensor::from_vec(1, 1, vec![loss]),
            Op::LogisticLoss {
                scores,
                labels: labels.to_vec(),
            },
        )
    }

    /// Sum of all entries, producing `1 × 1` (for L2 penalties).
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(value, Op::SumAll(a))
    }

    /// Convenience: `0.5 · λ · ‖a‖²` as a `1 × 1` loss term.
    pub fn l2_penalty(&mut self, a: Var, lambda: f32) -> Var {
        let sq = self.mul(a, a);
        let s = self.sum_all(sq);
        self.scale(s, 0.5 * lambda)
    }

    /// The scalar value of a `1 × 1` variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not `1 × 1`.
    pub fn scalar(&self, v: Var) -> f32 {
        let t = self.value(v);
        assert_eq!((t.rows(), t.cols()), (1, 1), "scalar() on non-scalar");
        t.as_slice()[0]
    }
}
