//! Tape well-formedness and gradient sanitization.
//!
//! [`Graph::validate_tape`] and [`Graph::validate_grads`] can always be
//! called explicitly; under `--features checked` the [`Graph::backward`]
//! pass invokes both automatically, so a malformed tape (dangling [`Var`],
//! out-of-range parameter, non-finite node value, inconsistent shapes) or a
//! corrupt gradient store is rejected with a diagnostic naming the node and
//! invariant instead of surfacing as a slice panic or silent NaN later.

use mhg_tensor::Shape;

use crate::graph::{Graph, Op, Var};
use crate::store::{Grad, GradStore, ParamId};

impl Graph<'_> {
    /// Checks every structural invariant of the tape, panicking with a
    /// node-level diagnostic on the first violation.
    ///
    /// Invariants:
    ///
    /// 1. **Topological order** — every operand [`Var`] of node `i` refers to
    ///    a node `< i` (the tape is append-only, so a forward-referencing or
    ///    out-of-range operand can only come from a `Var` forged on another
    ///    graph).
    /// 2. **Parameter range** — every `Param`/`Gather` id is registered in
    ///    the backing [`ParamStore`](crate::ParamStore), and gather indices
    ///    lie inside the table.
    /// 3. **Finite values** — no node holds NaN/Inf.
    /// 4. **Shape consistency** — each node's value has the shape implied by
    ///    its operation and operands.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn validate_tape(&self) {
        for (i, node) in self.nodes.iter().enumerate() {
            let operand = |v: Var, role: &str| -> Shape {
                assert!(
                    v.index() < i,
                    "tape node #{i} ({op:?}): {role} operand Var #{idx} is not an \
                     earlier tape node — dangling Var from another Graph?",
                    op = node.op,
                    idx = v.index(),
                );
                self.nodes[v.index()].value.shape()
            };
            let param = |pid: ParamId| -> Shape {
                assert!(
                    pid.index() < self.store.len(),
                    "tape node #{i} ({op:?}): parameter #{pid} is not registered \
                     in the store ({n} parameters)",
                    op = node.op,
                    pid = pid.index(),
                    n = self.store.len(),
                );
                self.store.value(pid).shape()
            };
            let got = node.value.shape();
            let expect = |want: Shape| {
                assert_eq!(
                    got,
                    want,
                    "tape node #{i} ({op:?}): value shape {got} does not match \
                     the shape {want} implied by its operands",
                    op = node.op,
                );
            };

            match &node.op {
                Op::Leaf => {}
                Op::Param(pid) => expect(param(*pid)),
                Op::Gather { pid, indices } => {
                    let table = param(*pid);
                    for &idx in indices {
                        assert!(
                            (idx as usize) < table.rows,
                            "tape node #{i} (Gather): row index {idx} out of \
                             bounds for parameter table with {} rows",
                            table.rows,
                        );
                    }
                    expect(Shape::new(indices.len(), table.cols));
                }
                Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) => {
                    let (sa, sb) = (operand(*a, "left"), operand(*b, "right"));
                    assert_eq!(
                        sa,
                        sb,
                        "tape node #{i} ({op:?}): operand shapes differ ({sa} vs {sb})",
                        op = node.op,
                    );
                    expect(sa);
                }
                Op::Scale(a, _) => expect(operand(*a, "input")),
                Op::MatMul(a, b) => {
                    let (sa, sb) = (operand(*a, "left"), operand(*b, "right"));
                    assert_eq!(
                        sa.cols, sb.rows,
                        "tape node #{i} (MatMul): inner dimensions differ ({sa} · {sb})",
                    );
                    expect(Shape::new(sa.rows, sb.cols));
                }
                Op::Transpose(a) => {
                    let sa = operand(*a, "input");
                    expect(Shape::new(sa.cols, sa.rows));
                }
                Op::Sigmoid(a) | Op::Tanh(a) | Op::Relu(a) | Op::SoftmaxRows(a) => {
                    expect(operand(*a, "input"));
                }
                Op::MeanRows(a) | Op::SumRows(a) | Op::MaxRows(a) => {
                    let sa = operand(*a, "input");
                    expect(Shape::new(1, sa.cols));
                }
                Op::ConcatRows(parts) => {
                    let mut rows = 0;
                    let mut cols = got.cols;
                    for &p in parts {
                        let sp = operand(p, "part");
                        rows += sp.rows;
                        cols = sp.cols;
                    }
                    expect(Shape::new(rows, cols));
                }
                Op::RowDot(a, b) => {
                    let (sa, sb) = (operand(*a, "left"), operand(*b, "right"));
                    assert_eq!(
                        sa, sb,
                        "tape node #{i} (RowDot): operand shapes differ ({sa} vs {sb})",
                    );
                    expect(Shape::new(sa.rows, 1));
                }
                Op::AddBroadcastRow(a, bias) => {
                    let (sa, sbias) = (operand(*a, "matrix"), operand(*bias, "bias"));
                    assert_eq!(
                        sbias,
                        Shape::new(1, sa.cols),
                        "tape node #{i} (AddBroadcastRow): bias shape {sbias} is \
                         not a 1 × {} row",
                        sa.cols,
                    );
                    expect(sa);
                }
                Op::SliceRows(a, start, end) => {
                    let sa = operand(*a, "input");
                    assert!(
                        start < end && *end <= sa.rows,
                        "tape node #{i} (SliceRows): range {start}..{end} out of \
                         bounds for {} rows",
                        sa.rows,
                    );
                    expect(Shape::new(end - start, sa.cols));
                }
                Op::LogisticLoss { scores, labels } => {
                    let ss = operand(*scores, "scores");
                    assert_eq!(
                        ss,
                        Shape::new(labels.len(), 1),
                        "tape node #{i} (LogisticLoss): scores shape {ss} does not \
                         match {} labels",
                        labels.len(),
                    );
                    expect(Shape::new(1, 1));
                }
                Op::SumAll(a) => {
                    operand(*a, "input");
                    expect(Shape::new(1, 1));
                }
            }

            node.value
                .assert_finite(&format!("tape node #{i} ({:?})", node.op));
        }
    }

    /// Checks that a [`GradStore`] produced against this graph's parameter
    /// store is well formed: every gradient key refers to a registered
    /// parameter, gradient shapes match the parameter shapes, sparse row
    /// indices are in bounds, and all entries are finite.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn validate_grads(&self, grads: &GradStore) {
        for (id, grad) in grads.iter() {
            assert!(
                id.index() < self.store.len(),
                "gradient for unregistered parameter #{} (store holds {})",
                id.index(),
                self.store.len(),
            );
            let pshape = self.store.value(id).shape();
            let name = self.store.name(id);
            match grad {
                Grad::Dense(t) => {
                    assert_eq!(
                        t.shape(),
                        pshape,
                        "dense gradient shape {} does not match parameter \
                         `{name}` {pshape}",
                        t.shape(),
                    );
                    t.assert_finite(&format!("gradient of `{name}`"));
                }
                Grad::Rows { cols, rows } => {
                    assert_eq!(
                        *cols, pshape.cols,
                        "sparse gradient width for `{name}` does not match \
                         parameter width {}",
                        pshape.cols,
                    );
                    for (&r, row) in rows {
                        assert!(
                            r < pshape.rows,
                            "sparse gradient row {r} out of bounds for `{name}` \
                             with {} rows",
                            pshape.rows,
                        );
                        assert!(
                            row.iter().all(|v| v.is_finite()),
                            "non-finite entry in sparse gradient row {r} of `{name}`",
                        );
                    }
                }
            }
        }
    }

    /// Forges a raw [`Var`] without recording a tape node.
    ///
    /// Only available under `--features checked`, and only meant for negative
    /// tests that exercise the dangling-`Var` diagnostics; a forged `Var` is
    /// by construction *not* a valid handle into any graph.
    #[cfg(feature = "checked")]
    #[doc(hidden)]
    pub fn forge_var(index: u32) -> Var {
        Var(index)
    }
}
