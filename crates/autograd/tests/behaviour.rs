//! Behavioural tests for the tape beyond raw gradient correctness:
//! parameter sharing, branch accumulation, clipping, optimizer contracts.

use mhg_autograd::{Adam, Grad, Graph, Optimizer, ParamStore, Sgd};
use mhg_tensor::{InitKind, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn shared_parameter_accumulates_gradient() {
    // w used twice: L = sum(w ⊙ w) ⇒ dL/dw = 2w.
    let mut params = ParamStore::new();
    let w = params.register("w", Tensor::from_rows(&[&[1.0, -2.0], &[3.0, 0.5]]));
    let mut g = Graph::new(&params);
    let w1 = g.param(w);
    let w2 = g.param(w);
    let prod = g.mul(w1, w2);
    let loss = g.sum_all(prod);
    let grads = g.backward(loss);
    let d = grads.to_dense(w, 2, 2);
    let expected = params.value(w).scale(2.0);
    assert!(d.max_abs_diff(&expected) < 1e-6);
}

#[test]
fn gather_same_row_twice_accumulates() {
    let mut params = ParamStore::new();
    let table = params.register("t", Tensor::from_rows(&[&[1.0], &[2.0]]));
    let mut g = Graph::new(&params);
    let rows = g.gather(table, &[1, 1, 0]);
    let loss = g.sum_all(rows);
    let grads = g.backward(loss);
    let d = grads.to_dense(table, 2, 1);
    assert_eq!(d[(0, 0)], 1.0);
    assert_eq!(d[(1, 0)], 2.0); // row 1 gathered twice
}

#[test]
fn diamond_graph_accumulates_through_branches() {
    // x → (a = 2x, b = 3x) → loss = sum(a + b) ⇒ dx = 5.
    let mut params = ParamStore::new();
    let x = params.register("x", Tensor::from_rows(&[&[1.0, 1.0]]));
    let mut g = Graph::new(&params);
    let xv = g.param(x);
    let a = g.scale(xv, 2.0);
    let b = g.scale(xv, 3.0);
    let sum = g.add(a, b);
    let loss = g.sum_all(sum);
    let grads = g.backward(loss);
    let d = grads.to_dense(x, 1, 2);
    assert!(d.as_slice().iter().all(|&v| (v - 5.0).abs() < 1e-6));
}

#[test]
fn untouched_parameter_has_no_gradient() {
    let mut params = ParamStore::new();
    let used = params.register("used", Tensor::full(1, 2, 1.0));
    let unused = params.register("unused", Tensor::full(1, 2, 1.0));
    let mut g = Graph::new(&params);
    let u = g.param(used);
    let loss = g.sum_all(u);
    let grads = g.backward(loss);
    assert!(grads.get(used).is_some());
    assert!(grads.get(unused).is_none());
}

#[test]
fn constants_receive_no_gradient_but_propagate() {
    let mut params = ParamStore::new();
    let w = params.register("w", Tensor::full(1, 2, 2.0));
    let mut g = Graph::new(&params);
    let wv = g.param(w);
    let c = g.constant(Tensor::full(1, 2, 10.0));
    let prod = g.mul(wv, c);
    let loss = g.sum_all(prod);
    let grads = g.backward(loss);
    // dL/dw = c = 10.
    let d = grads.to_dense(w, 1, 2);
    assert!(d.as_slice().iter().all(|&v| (v - 10.0).abs() < 1e-6));
    assert_eq!(grads.len(), 1);
}

#[test]
fn clipping_preserves_direction() {
    let mut params = ParamStore::new();
    let w = params.register("w", Tensor::from_rows(&[&[3.0, 4.0]]));
    let mut g = Graph::new(&params);
    let wv = g.param(w);
    let sq = g.mul(wv, wv);
    let loss = g.sum_all(sq);
    let mut grads = g.backward(loss);
    // grad = 2w = (6, 8), norm 10.
    let pre = grads.clip_global_norm(1.0);
    assert!((pre - 10.0).abs() < 1e-5);
    match grads.get(w).unwrap() {
        Grad::Dense(t) => {
            assert!((t[(0, 0)] - 0.6).abs() < 1e-5);
            assert!((t[(0, 1)] - 0.8).abs() < 1e-5);
        }
        _ => panic!("expected dense grad"),
    }
}

#[test]
fn sgd_and_adam_reduce_the_same_loss() {
    let run = |opt: &mut dyn Optimizer| -> f32 {
        let mut rng = StdRng::seed_from_u64(5);
        let mut params = ParamStore::new();
        let w = params.register("w", InitKind::Uniform { limit: 1.0 }.init(3, 3, &mut rng));
        let target = InitKind::Uniform { limit: 1.0 }.init(3, 3, &mut rng);
        let mut last = 0.0;
        for _ in 0..150 {
            let mut g = Graph::new(&params);
            let wv = g.param(w);
            let t = g.constant(target.clone());
            let diff = g.sub(wv, t);
            let sq = g.mul(diff, diff);
            let loss = g.sum_all(sq);
            last = g.scalar(loss);
            let grads = g.backward(loss);
            opt.step(&mut params, &grads);
        }
        last
    };
    let sgd_loss = run(&mut Sgd::new(0.05));
    let adam_loss = run(&mut Adam::new(0.05));
    assert!(sgd_loss < 1e-3, "SGD loss {sgd_loss}");
    assert!(adam_loss < 1e-3, "Adam loss {adam_loss}");
}

#[test]
fn tape_reuse_across_steps_is_safe() {
    // Parameters persist across tapes; each tape sees the updated values.
    let mut params = ParamStore::new();
    let w = params.register("w", Tensor::from_vec(1, 1, vec![4.0]));
    let mut opt = Sgd::new(0.25);
    let mut values = Vec::new();
    for _ in 0..3 {
        let mut g = Graph::new(&params);
        let wv = g.param(w);
        values.push(g.value(wv)[(0, 0)]);
        let loss = g.sum_all(wv); // dL/dw = 1
        let grads = g.backward(loss);
        opt.step(&mut params, &grads);
    }
    assert_eq!(values, vec![4.0, 3.75, 3.5]);
}

#[test]
fn empty_gather_is_valid() {
    // Zero-row gathers appear when a node has no neighbors; the tape must
    // handle them without panicking.
    let mut params = ParamStore::new();
    let table = params.register("t", Tensor::full(3, 2, 1.0));
    let mut g = Graph::new(&params);
    let empty = g.gather(table, &[]);
    assert_eq!(g.value(empty).rows(), 0);
    let mean = g.mean_rows(empty); // zeros 1×2 by convention
    assert_eq!(g.value(mean).as_slice(), &[0.0, 0.0]);
}

#[test]
#[should_panic(expected = "scalar loss")]
fn backward_rejects_non_scalar() {
    let mut params = ParamStore::new();
    let w = params.register("w", Tensor::full(2, 2, 1.0));
    let mut g = Graph::new(&params);
    let wv = g.param(w);
    let _ = g.backward(wv);
}
