//! Finite-difference gradient checks for every tape operation.
//!
//! Each test builds a small computation ending in a scalar loss, then
//! verifies the analytic backward pass against central differences. The
//! property tests randomise shapes and seeds.

use mhg_autograd::gradcheck::assert_gradients_close;
use mhg_autograd::{Graph, ParamStore, Var};
use mhg_tensor::{InitKind, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 2e-2;

fn store_with(shapes: &[(usize, usize)], seed: u64) -> ParamStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = ParamStore::new();
    for (i, &(r, c)) in shapes.iter().enumerate() {
        let t = InitKind::Uniform { limit: 0.8 }.init(r, c, &mut rng);
        params.register(format!("p{i}"), t);
    }
    params
}

fn pid(params: &ParamStore, i: usize) -> mhg_autograd::ParamId {
    params.iter().nth(i).map(|(id, _, _)| id).unwrap()
}

/// Reduces any matrix to a well-conditioned scalar via sum of sigmoids.
fn to_scalar(g: &mut Graph<'_>, v: Var) -> Var {
    let s = g.sigmoid(v);
    g.sum_all(s)
}

#[test]
fn grad_add_sub_mul() {
    let mut params = store_with(&[(3, 4), (3, 4)], 11);
    let (a, b) = (pid(&params, 0), pid(&params, 1));
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let bv = g.param(b);
            let sum = g.add(av, bv);
            let diff = g.sub(sum, bv);
            let prod = g.mul(diff, av);
            to_scalar(g, prod)
        },
        TOL,
    );
}

#[test]
fn grad_matmul() {
    let mut params = store_with(&[(3, 4), (4, 2)], 12);
    let (a, b) = (pid(&params, 0), pid(&params, 1));
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let bv = g.param(b);
            let prod = g.matmul(av, bv);
            to_scalar(g, prod)
        },
        TOL,
    );
}

#[test]
fn grad_transpose_chain() {
    let mut params = store_with(&[(2, 5)], 13);
    let a = pid(&params, 0);
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let t = g.transpose(av);
            let sq = g.matmul(t, av); // 5×5
            to_scalar(g, sq)
        },
        TOL,
    );
}

#[test]
fn grad_nonlinearities() {
    let mut params = store_with(&[(3, 3)], 14);
    let a = pid(&params, 0);
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let s = g.sigmoid(av);
            let t = g.tanh(s);
            // relu around values bounded away from zero to avoid kink noise.
            let shifted = g.add(t, av);
            let r = g.relu(shifted);
            g.sum_all(r)
        },
        5e-2, // relu kink tolerance
    );
}

#[test]
fn grad_softmax_rows() {
    let mut params = store_with(&[(4, 5)], 15);
    let a = pid(&params, 0);
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let sm = g.softmax_rows(av);
            // Weight the softmax so the gradient is non-trivial.
            let w = g.constant(Tensor::from_vec(
                4,
                5,
                (0..20).map(|i| (i as f32 * 0.37).sin()).collect(),
            ));
            let weighted = g.mul(sm, w);
            g.sum_all(weighted)
        },
        TOL,
    );
}

#[test]
fn grad_mean_rows_and_concat() {
    let mut params = store_with(&[(3, 4), (2, 4)], 16);
    let (a, b) = (pid(&params, 0), pid(&params, 1));
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let bv = g.param(b);
            let cat = g.concat_rows(&[av, bv]); // 5×4
            let mean = g.mean_rows(cat); // 1×4
            to_scalar(g, mean)
        },
        TOL,
    );
}

#[test]
fn grad_slice_rows() {
    let mut params = store_with(&[(5, 3)], 17);
    let a = pid(&params, 0);
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let mid = g.slice_rows(av, 1, 4);
            to_scalar(g, mid)
        },
        TOL,
    );
}

#[test]
fn grad_row_dot() {
    let mut params = store_with(&[(4, 3), (4, 3)], 18);
    let (a, b) = (pid(&params, 0), pid(&params, 1));
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let bv = g.param(b);
            let scores = g.row_dot(av, bv);
            to_scalar(g, scores)
        },
        TOL,
    );
}

#[test]
fn grad_broadcast_row() {
    let mut params = store_with(&[(4, 3), (1, 3)], 19);
    let (a, bias) = (pid(&params, 0), pid(&params, 1));
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let bv = g.param(bias);
            let shifted = g.add_broadcast_row(av, bv);
            to_scalar(g, shifted)
        },
        TOL,
    );
}

#[test]
fn grad_logistic_loss() {
    let mut params = store_with(&[(6, 4), (6, 4)], 20);
    let (a, b) = (pid(&params, 0), pid(&params, 1));
    let labels = [1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let bv = g.param(b);
            let scores = g.row_dot(av, bv);
            g.logistic_loss(scores, &labels)
        },
        TOL,
    );
}

#[test]
fn grad_gather_scatter() {
    let mut params = store_with(&[(6, 3)], 21);
    let table = pid(&params, 0);
    assert_gradients_close(
        &mut params,
        |g| {
            // Gather with repeats: row 2 twice checks gradient accumulation.
            let rows = g.gather(table, &[2, 0, 2, 5]);
            to_scalar(g, rows)
        },
        TOL,
    );
}

#[test]
fn grad_l2_penalty() {
    let mut params = store_with(&[(3, 3)], 22);
    let a = pid(&params, 0);
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            g.l2_penalty(av, 0.3)
        },
        TOL,
    );
}

#[test]
fn grad_attention_block() {
    // The paper's Eq. 6: softmax(H·W_Q · (H·W_K)ᵀ / sqrt(d_k)) · H·W_V —
    // the exact composition HybridGNN uses for both attention levels.
    let mut params = store_with(&[(4, 5), (5, 3), (5, 3), (5, 3)], 23);
    let (h, wq, wk, wv) = (
        pid(&params, 0),
        pid(&params, 1),
        pid(&params, 2),
        pid(&params, 3),
    );
    assert_gradients_close(
        &mut params,
        |g| {
            let hv = g.param(h);
            let q = {
                let w = g.param(wq);
                g.matmul(hv, w)
            };
            let k = {
                let w = g.param(wk);
                g.matmul(hv, w)
            };
            let v = {
                let w = g.param(wv);
                g.matmul(hv, w)
            };
            let kt = g.transpose(k);
            let logits = g.matmul(q, kt);
            let scaled = g.scale(logits, 1.0 / (3.0f32).sqrt());
            let attn = g.softmax_rows(scaled);
            let out = g.matmul(attn, v);
            to_scalar(g, out)
        },
        5e-2,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn grad_random_matmul_chain(seed in 0u64..500, m in 1usize..4, k in 1usize..4, n in 1usize..4) {
        let mut params = store_with(&[(m, k), (k, n)], seed);
        let (a, b) = (pid(&params, 0), pid(&params, 1));
        assert_gradients_close(
            &mut params,
            |g| {
                let av = g.param(a);
                let bv = g.param(b);
                let prod = g.matmul(av, bv);
                let sm = g.sigmoid(prod);
                g.sum_all(sm)
            },
            TOL,
        );
    }

    #[test]
    fn grad_random_gather_loss(seed in 0u64..500, rows in 2usize..6, picks in 1usize..5) {
        let mut params = store_with(&[(rows, 3), (rows, 3)], seed);
        let (ta, tb) = (pid(&params, 0), pid(&params, 1));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        use rand::Rng;
        let idx: Vec<u32> = (0..picks).map(|_| rng.gen_range(0..rows as u32)).collect();
        let labels: Vec<f32> = (0..picks).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        assert_gradients_close(
            &mut params,
            move |g| {
                let av = g.gather(ta, &idx);
                let bv = g.gather(tb, &idx);
                let scores = g.row_dot(av, bv);
                g.logistic_loss(scores, &labels)
            },
            TOL,
        );
    }
}

#[test]
fn grad_sum_rows() {
    let mut params = store_with(&[(4, 3)], 30);
    let a = pid(&params, 0);
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let s = g.sum_rows(av);
            to_scalar(g, s)
        },
        TOL,
    );
}

#[test]
fn grad_max_rows() {
    let mut params = store_with(&[(4, 3)], 31);
    let a = pid(&params, 0);
    // max is piecewise-linear: check away from ties (random init ⇒ a.s. no
    // ties) with a slightly looser tolerance for the kink.
    assert_gradients_close(
        &mut params,
        |g| {
            let av = g.param(a);
            let m = g.max_rows(av);
            to_scalar(g, m)
        },
        6e-2,
    );
}
