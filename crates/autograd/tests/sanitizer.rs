//! Negative tests for the `checked`-mode sanitizer: malformed tapes and
//! poisoned values must be rejected with a diagnostic, not a slice panic or
//! a silent NaN. Compiled only under `--features checked`.

#![cfg(feature = "checked")]

use mhg_autograd::{Graph, ParamStore};
use mhg_tensor::Tensor;

#[test]
#[should_panic(expected = "dangling Var")]
fn dangling_var_in_op_is_rejected() {
    let params = ParamStore::new();
    let mut g = Graph::new(&params);
    let a = g.constant(Tensor::zeros(1, 2));
    // A Var forged out of thin air — e.g. one kept from a previous step's
    // graph — must be diagnosed, not read out of bounds.
    let ghost = Graph::forge_var(41);
    let _ = g.add(a, ghost);
}

#[test]
#[should_panic(expected = "dangling Var")]
fn dangling_loss_var_is_rejected_by_backward() {
    let params = ParamStore::new();
    let mut g = Graph::new(&params);
    let _ = g.constant(Tensor::zeros(1, 1));
    let ghost = Graph::forge_var(9);
    let _ = g.backward(ghost);
}

#[test]
#[should_panic(expected = "non-finite element")]
fn nan_poisoned_parameter_is_rejected_when_recorded() {
    let mut params = ParamStore::new();
    let w = params.register("w", Tensor::from_vec(1, 2, vec![1.0, f32::NAN]));
    let mut g = Graph::new(&params);
    let _ = g.param(w);
}

#[test]
#[should_panic(expected = "non-finite element")]
fn nan_poisoned_embedding_row_is_rejected_by_gather() {
    let mut params = ParamStore::new();
    let mut table = Tensor::zeros(4, 3);
    table[(2, 1)] = f32::INFINITY;
    let emb = params.register("emb", table);
    let mut g = Graph::new(&params);
    let _ = g.gather(emb, &[0, 2]);
}

#[test]
#[should_panic(expected = "out of bounds for parameter table")]
fn gather_index_out_of_bounds_is_rejected() {
    let mut params = ParamStore::new();
    let emb = params.register("emb", Tensor::zeros(4, 3));
    let mut g = Graph::new(&params);
    let _ = g.gather(emb, &[0, 4]);
}

#[test]
#[should_panic(expected = "non-finite")]
fn overflowing_forward_op_is_rejected() {
    let params = ParamStore::new();
    let mut g = Graph::new(&params);
    let big = g.constant(Tensor::full(1, 1, f32::MAX));
    // f32::MAX * f32::MAX overflows to +inf; the sanitizer must catch the
    // poisoned product at the op that produced it.
    let _ = g.mul(big, big);
}

#[test]
fn well_formed_tape_passes_validation() {
    let mut params = ParamStore::new();
    let w = params.register("w", Tensor::from_vec(2, 2, vec![0.5, -0.25, 1.0, 0.75]));
    let emb = params.register("emb", Tensor::from_vec(3, 2, vec![0.1; 6]));
    let mut g = Graph::new(&params);
    let x = g.gather(emb, &[0, 2]);
    let wv = g.param(w);
    let h = g.matmul(x, wv);
    let a = g.tanh(h);
    let s = g.row_dot(a, a);
    let loss = g.logistic_loss(s, &[1.0, -1.0]);
    g.validate_tape();
    let grads = g.backward(loss);
    g.validate_grads(&grads);
    assert!(grads.get(w).is_some());
    assert!(grads.get(emb).is_some());
}
