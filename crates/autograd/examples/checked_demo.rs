//! Demonstrates the `checked` feature's sanitizer from the public API.
//!
//! Run it twice:
//!
//! ```sh
//! cargo run -p mhg-autograd --example checked_demo                  # clean graph
//! cargo run -p mhg-autograd --example checked_demo -- --poison     # silently wrong
//! cargo run -p mhg-autograd --example checked_demo --features checked -- --poison
//! # ^ the sanitizer catches the NaN at the recording site with context
//! ```

use mhg_autograd::{Graph, ParamStore};
use mhg_tensor::Tensor;

fn main() {
    let poison = std::env::args().any(|a| a == "--poison");

    let mut store = ParamStore::new();
    let w = store.register("w", Tensor::from_rows(&[&[0.5, -0.25], &[1.0, 0.75]]));
    if poison {
        // Corrupt one weight the way a diverging optimizer would.
        store.value_mut(w).as_mut_slice()[3] = f32::NAN;
        println!("poisoned parameter `w` with a NaN");
    }

    let x = Tensor::from_rows(&[&[1.0, 2.0]]);
    let mut g = Graph::new(&store);
    let xv = g.constant(x);
    let wv = g.param(w);
    let y = g.matmul(xv, wv);
    let sq = g.mul(y, y);
    let loss = g.sum_all(sq);
    let grads = g.backward(loss);

    println!(
        "loss = {:.4}, grad(w) present = {}",
        g.value(loss).as_slice()[0],
        grads.get(w).is_some()
    );
}
