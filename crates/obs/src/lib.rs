//! Deterministic observability for the HybridGNN reproduction (`mhg-obs`).
//!
//! One [`Obs`] handle per run is threaded through `CommonConfig` →
//! `TrainOptions` and carries:
//!
//! * a [`Registry`] of typed counters, gauges and fixed-bucket
//!   [`Histogram`]s whose recorded state is integer atomics, so totals are
//!   merge-order independent under concurrent recording;
//! * a monotonic [`Clock`] — [`RealClock`] for humans, a per-thread
//!   [`FakeClock`] for tests, which makes every duration a pure function of
//!   the instrumented code path (byte-identical output across reruns,
//!   `MHG_THREADS` settings and background-sampling modes);
//! * RAII [`Span`] timers recording into duration histograms;
//! * insertion-ordered structured events ([`Obs::event`]);
//! * sinks: a JSONL event/metric file written atomically through
//!   `mhg_ckpt::atomic_write` on [`Obs::finish`], plus a human stderr
//!   summary / notes channel. This crate is the only sanctioned
//!   `eprintln!` site in the workspace — see the `no-eprintln` lint rule
//!   in `mhg-lint`.
//!
//! Metric names are namespaced `<stage>/<metric>` (`train/sample`,
//! `sampling/shard_occupancy`, …); the full scheme is documented in
//! DESIGN.md §2.12 and in the README's "Reading metrics.jsonl" section.

mod clock;
mod config;
mod registry;
mod sink;
mod span;

pub use clock::{Clock, FakeClock, RealClock};
pub use config::ObsConfig;
pub use registry::{Histogram, HistogramSnapshot, MetricValue, Registry, HISTOGRAM_BUCKETS};
pub use span::Span;

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A JSON-serialisable event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// Unsigned integer.
    U64(u64),
    /// Float; non-finite values serialise as `null`.
    F64(f64),
    /// String (JSON-escaped).
    Str(String),
    /// Boolean.
    Bool(bool),
}

struct Shared {
    clock: Box<dyn Clock>,
    record: bool,
    notes: bool,
    summary: bool,
    jsonl: Option<PathBuf>,
    registry: Registry,
    events: Mutex<Vec<String>>,
}

/// Cloneable observability handle (see the crate docs). Clones are cheap
/// and share the same registry, clock, event log and sinks.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<Shared>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("record", &self.inner.record)
            .field("notes", &self.inner.notes)
            .field("summary", &self.inner.summary)
            .field("jsonl", &self.inner.jsonl)
            .finish_non_exhaustive()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Obs {
    pub(crate) fn assemble(
        clock: Box<dyn Clock>,
        record: bool,
        notes: bool,
        summary: bool,
        jsonl: Option<PathBuf>,
    ) -> Self {
        Self {
            inner: Arc::new(Shared {
                clock,
                record,
                notes,
                summary,
                jsonl,
                registry: Registry::new(),
                events: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A no-sink handle: spans still measure real time (so timing reports
    /// keep working) but nothing is recorded or printed.
    pub fn disabled() -> Self {
        ObsConfig::default().build()
    }

    /// The handle the `MHG_OBS` environment variable describes.
    pub fn from_env() -> Self {
        ObsConfig::from_env().build()
    }

    /// A recording handle on a [`FakeClock`] advancing `step_ns` per
    /// reading per thread, with no output sinks — metric state is a pure
    /// function of the instrumented code path; read it back with
    /// [`Obs::metrics`] or [`Obs::render_jsonl`].
    pub fn deterministic(step_ns: u64) -> Self {
        ObsConfig {
            fake_step_ns: Some(step_ns),
            ..ObsConfig::default()
        }
        .build()
    }

    /// Whether metrics and events are being recorded.
    pub fn is_recording(&self) -> bool {
        self.inner.record
    }

    /// Current clock reading, in nanoseconds from the handle's origin.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    /// Starts a [`Span`] that records into histogram `name` when stopped
    /// or dropped.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span::begin(self, name)
    }

    /// Adds `n` to counter `name`.
    pub fn counter_add(&self, name: &str, n: u64) {
        if self.inner.record {
            self.inner.registry.counter_add(name, n);
        }
    }

    /// Sets gauge `name` to `value` (last write wins; call from a single
    /// coordinating thread when determinism matters).
    pub fn gauge_set(&self, name: &str, value: f64) {
        if self.inner.record {
            self.inner.registry.gauge_set(name, value);
        }
    }

    /// Records `value` into histogram `name`.
    pub fn record_value(&self, name: &str, value: u64) {
        if self.inner.record {
            self.inner.registry.record(name, value);
        }
    }

    /// Records a duration in nanoseconds into histogram `name`.
    pub fn record_duration_ns(&self, name: &str, ns: u64) {
        self.record_value(name, ns);
    }

    /// Appends a structured event; events keep insertion order in the JSONL
    /// output, so only emit them from a deterministic (coordinating) thread.
    pub fn event(&self, name: &str, fields: &[(&str, EventValue)]) {
        if !self.inner.record {
            return;
        }
        let line = sink::render_event(name, fields);
        self.inner
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(line);
    }

    /// A human progress note: printed verbatim to stderr when notes are
    /// enabled, otherwise dropped. Notes never enter the JSONL output.
    pub fn note(&self, msg: &str) {
        if self.inner.notes {
            eprintln!("{msg}");
        }
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        self.inner
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// All recorded metrics, sorted by name.
    pub fn metrics(&self) -> Vec<(String, MetricValue)> {
        self.inner.registry.snapshot()
    }

    /// Renders the JSONL document: every event line in insertion order,
    /// then one line per metric sorted by name. Under a [`FakeClock`] the
    /// result is byte-identical across reruns, thread counts and
    /// background-sampling modes (pinned in `tests/determinism.rs`).
    pub fn render_jsonl(&self) -> String {
        let events = self
            .inner
            .events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        sink::render_jsonl(&events, &self.metrics())
    }

    /// Flushes the sinks: writes the JSONL file (if configured)
    /// atomically and prints the stderr summary (if enabled). Returns the
    /// JSONL path written, if any. Idempotent — calling again rewrites the
    /// file with the current state.
    pub fn finish(&self) -> io::Result<Option<PathBuf>> {
        if let Some(path) = &self.inner.jsonl {
            mhg_ckpt::atomic_write(path, self.render_jsonl().as_bytes())?;
        }
        if self.inner.summary {
            sink::print_summary(self);
        }
        Ok(self.inner.jsonl.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_but_still_ticks() {
        let obs = Obs::disabled();
        obs.counter_add("a/c", 1);
        obs.record_value("a/h", 5);
        obs.event("e", &[]);
        assert!(obs.metrics().is_empty());
        assert_eq!(obs.event_count(), 0);
        let t0 = obs.now_ns();
        let t1 = obs.now_ns();
        assert!(t1 >= t0);
    }

    #[test]
    fn render_jsonl_orders_events_then_sorted_metrics() {
        let obs = Obs::deterministic(1_000);
        obs.event("first", &[("k", EventValue::U64(1))]);
        obs.event("second", &[]);
        obs.counter_add("z/c", 2);
        obs.counter_add("a/c", 1);
        let text = obs.render_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"event\":\"first\""));
        assert!(lines[1].starts_with("{\"event\":\"second\""));
        assert!(lines[2].starts_with("{\"metric\":\"a/c\""));
        assert!(lines[3].starts_with("{\"metric\":\"z/c\""));
    }

    #[test]
    fn render_jsonl_is_identical_across_reruns() {
        let render = || {
            let obs = Obs::deterministic(1_000);
            obs.span("t/a").stop_ms();
            obs.event("done", &[("ok", EventValue::Bool(true))]);
            obs.render_jsonl()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn finish_writes_jsonl_atomically() {
        let dir = std::env::temp_dir().join("mhg_obs_finish");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.jsonl");
        let obs = ObsConfig {
            jsonl: Some(path.clone()),
            fake_step_ns: Some(1_000),
            ..ObsConfig::default()
        }
        .build();
        obs.counter_add("a/c", 3);
        let written = obs.finish().unwrap();
        assert_eq!(written, Some(path.clone()));
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, obs.render_jsonl());
        std::fs::remove_file(&path).ok();
    }
}
