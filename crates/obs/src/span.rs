//! RAII span timers.

use crate::Obs;

/// Times a region of code. On [`Span::stop_ms`] (or drop) the elapsed
/// nanoseconds are recorded into the histogram the span is named after.
///
/// Spans read the owning [`Obs`] handle's clock even when recording is
/// disabled, so callers can rely on [`Span::stop_ms`] for timing reports
/// regardless of sink configuration.
#[derive(Debug)]
pub struct Span<'a> {
    obs: &'a Obs,
    name: &'static str,
    start_ns: u64,
    armed: bool,
}

impl<'a> Span<'a> {
    pub(crate) fn begin(obs: &'a Obs, name: &'static str) -> Self {
        Self {
            obs,
            name,
            start_ns: obs.now_ns(),
            armed: true,
        }
    }

    /// Stops the span, records its duration, and returns it in
    /// milliseconds.
    pub fn stop_ms(mut self) -> f64 {
        self.armed = false;
        let ns = self.obs.now_ns().saturating_sub(self.start_ns);
        self.obs.record_duration_ns(self.name, ns);
        ns as f64 / 1e6
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            let ns = self.obs.now_ns().saturating_sub(self.start_ns);
            self.obs.record_duration_ns(self.name, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{MetricValue, Obs};

    #[test]
    fn leaf_span_measures_one_fake_step() {
        let obs = Obs::deterministic(1_000);
        let span = obs.span("t/leaf");
        let ms = span.stop_ms();
        assert!((ms - 0.001).abs() < 1e-12, "ms = {ms}");
        match &obs.metrics()[0].1 {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 1);
                assert_eq!(h.sum, 1_000);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn dropped_span_still_records() {
        let obs = Obs::deterministic(1_000);
        {
            let _span = obs.span("t/drop");
        }
        match &obs.metrics()[0].1 {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn nested_spans_accumulate_inner_readings() {
        let obs = Obs::deterministic(1_000);
        let outer = obs.span("t/outer");
        obs.span("t/inner").stop_ms();
        let outer_ms = outer.stop_ms();
        // Outer saw 3 readings between its start and stop (inner start,
        // inner stop, outer stop) — 3 steps.
        assert!((outer_ms - 0.003).abs() < 1e-12, "outer = {outer_ms}");
    }
}
