//! Monotonic clocks behind the span timers.
//!
//! [`RealClock`] reads `std::time::Instant` for humans. [`FakeClock`]
//! advances a fixed step per reading **per thread**: a leaf span (one whose
//! body takes no nested clock readings on its own thread) always measures
//! exactly one step no matter which thread runs it — the property that
//! makes metric output byte-identical across `MHG_THREADS` settings and
//! background-sampling modes.

use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// A monotonic nanosecond clock. `Send + Sync` so one clock instance can
/// serve every thread of a run.
pub trait Clock: Send + Sync {
    /// Nanoseconds since an arbitrary per-clock origin.
    fn now_ns(&self) -> u64;
}

/// Wall clock anchored at construction time.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A wall clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Deterministic test clock: every reading advances the *calling thread's*
/// private counter by a fixed step.
///
/// All threads start from the same origin (0), so durations depend only on
/// the structure of the instrumented code — how many readings happen on the
/// measuring thread between start and stop — never on scheduling, thread
/// count, or wall time. A span with no nested readings measures exactly one
/// step wherever it runs.
#[derive(Debug)]
pub struct FakeClock {
    step_ns: u64,
    ticks: Mutex<HashMap<ThreadId, u64>>,
}

impl FakeClock {
    /// A fake clock advancing `step_ns` (clamped to at least 1) per reading
    /// per thread.
    pub fn new(step_ns: u64) -> Self {
        Self {
            step_ns: step_ns.max(1),
            ticks: Mutex::new(HashMap::new()),
        }
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        let mut ticks = self.ticks.lock().unwrap_or_else(|e| e.into_inner());
        let slot = ticks.entry(std::thread::current().id()).or_insert(0);
        let now = *slot;
        *slot += self.step_ns;
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_steps_per_reading() {
        let c = FakeClock::new(5);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 5);
        assert_eq!(c.now_ns(), 10);
    }

    #[test]
    fn fake_clock_zero_step_is_clamped() {
        let c = FakeClock::new(0);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 1);
    }

    #[test]
    fn fake_clock_counters_are_per_thread() {
        let c = FakeClock::new(7);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 7);
        // A fresh thread starts from the shared origin, not from where the
        // main thread left off.
        std::thread::scope(|s| {
            s.spawn(|| {
                assert_eq!(c.now_ns(), 0);
                assert_eq!(c.now_ns(), 7);
            });
        });
        assert_eq!(c.now_ns(), 14);
    }
}
