//! Observability configuration: the `MHG_OBS` environment contract and the
//! builder every CLI / harness flag path goes through.

use std::path::PathBuf;

use crate::clock::{Clock, FakeClock, RealClock};
use crate::Obs;

/// Where and how a run's metrics are recorded. Build one with
/// [`ObsConfig::from_env`] (the `MHG_OBS` contract) or field-by-field, then
/// call [`ObsConfig::build`].
///
/// `MHG_OBS` is a comma-separated token list:
///
/// * `jsonl=<path>` — on [`Obs::finish`], write events + a registry
///   snapshot as JSON lines to `<path>` (atomically, through
///   `mhg_ckpt::atomic_write`);
/// * `summary` — print a human metric summary to stderr on finish;
/// * `notes` — mirror progress notes to stderr as they happen;
/// * `stderr` — shorthand for `summary,notes`;
/// * `fake=<step_ns>` — replace the wall clock with a deterministic
///   [`FakeClock`] (durations become structural, not temporal);
///
/// unknown tokens are ignored so the contract can grow.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ObsConfig {
    /// JSONL sink path (`None` = no file output).
    pub jsonl: Option<PathBuf>,
    /// Mirror progress notes to stderr as they happen.
    pub notes: bool,
    /// Print a metric summary to stderr on finish.
    pub summary: bool,
    /// Replace the wall clock with a [`FakeClock`] of this step.
    pub fake_step_ns: Option<u64>,
}

impl ObsConfig {
    /// Parses the `MHG_OBS` environment variable (absent = everything off).
    pub fn from_env() -> Self {
        Self::parse(std::env::var("MHG_OBS").ok().as_deref().unwrap_or(""))
    }

    /// Parses an `MHG_OBS`-style token list (see the type docs).
    pub fn parse(spec: &str) -> Self {
        let mut cfg = Self::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(path) = token.strip_prefix("jsonl=") {
                cfg.jsonl = Some(PathBuf::from(path));
            } else if let Some(step) = token.strip_prefix("fake=") {
                cfg.fake_step_ns = step.parse().ok();
            } else {
                match token {
                    "summary" => cfg.summary = true,
                    "notes" => cfg.notes = true,
                    "stderr" => {
                        cfg.summary = true;
                        cfg.notes = true;
                    }
                    _ => {}
                }
            }
        }
        cfg
    }

    /// Builds the [`Obs`] handle this configuration describes. Recording is
    /// enabled whenever a sink or the fake clock is configured; the clock
    /// works either way, so timing reports survive a fully-disabled handle.
    pub fn build(self) -> Obs {
        let record = self.jsonl.is_some() || self.summary || self.fake_step_ns.is_some();
        let clock: Box<dyn Clock> = match self.fake_step_ns {
            Some(step) => Box::new(FakeClock::new(step)),
            None => Box::new(RealClock::new()),
        };
        Obs::assemble(clock, record, self.notes, self.summary, self.jsonl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_empty_is_all_off() {
        assert_eq!(ObsConfig::parse(""), ObsConfig::default());
        let obs = ObsConfig::parse("").build();
        assert!(!obs.is_recording());
    }

    #[test]
    fn parse_full_spec() {
        let cfg = ObsConfig::parse("jsonl=/tmp/m.jsonl, stderr ,fake=500");
        assert_eq!(cfg.jsonl, Some(PathBuf::from("/tmp/m.jsonl")));
        assert!(cfg.summary);
        assert!(cfg.notes);
        assert_eq!(cfg.fake_step_ns, Some(500));
    }

    #[test]
    fn unknown_tokens_are_ignored() {
        assert_eq!(
            ObsConfig::parse("wat,notes"),
            ObsConfig {
                notes: true,
                ..ObsConfig::default()
            }
        );
    }

    #[test]
    fn fake_clock_enables_recording() {
        assert!(ObsConfig::parse("fake=1000").build().is_recording());
        assert!(!ObsConfig::parse("notes").build().is_recording());
    }
}
