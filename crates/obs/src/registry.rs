//! Thread-safe metric registry: counters, gauges and fixed-bucket
//! histograms.
//!
//! All recorded state is **integer atomics** updated with relaxed
//! `fetch_add`/`fetch_max` — associative and commutative operations, so
//! totals are independent of the order in which threads record
//! (merge-order independence; pinned by `crates/obs/tests/concurrency.rs`).
//! Gauges hold `f64` bit patterns but are last-write-wins and only ever set
//! from a coordinating thread in this workspace.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of histogram buckets. Bucket `i` holds values whose bit length is
/// `i` (i.e. `v` lands in bucket `64 - v.leading_zeros()`), clamped to the
/// last bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Fixed log2-bucket histogram over `u64` values (typically nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index for `value`: its bit length, clamped to the last
    /// bucket (`0 → 0`, `1 → 1`, `2..=3 → 2`, …).
    pub fn bucket_index(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i, n))
                })
                .collect(),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observed values (wraps on overflow).
    pub sum: u64,
    /// Maximum observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(bucket index, count)`, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

/// A metric's current value in a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last-set gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

fn kind_rank(v: &MetricValue) -> u8 {
    match v {
        MetricValue::Counter(_) => 0,
        MetricValue::Gauge(_) => 1,
        MetricValue::Histogram(_) => 2,
    }
}

/// Thread-safe registry of named metrics.
///
/// The name→cell maps are mutex-guarded (creation path only); hot-path
/// updates go through `Arc`-shared atomics, so recording one metric never
/// blocks recording another, and totals are merge-order independent.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter cell named `name`, created at zero on first use. Hold
    /// the returned `Arc` to record without re-locking the name map.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        lock(&self.counters)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Adds `n` to counter `name`.
    pub fn counter_add(&self, name: &str, n: u64) {
        self.counter(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        lock(&self.gauges)
            .entry(name.to_string())
            .or_default()
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        lock(&self.histograms)
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Records `value` into histogram `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// All metrics, sorted by name (then counter < gauge < histogram on the
    /// off-chance of a cross-kind name collision), so the snapshot order is
    /// deterministic.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let mut out: Vec<(String, MetricValue)> = Vec::new();
        for (name, c) in lock(&self.counters).iter() {
            out.push((
                name.clone(),
                MetricValue::Counter(c.load(Ordering::Relaxed)),
            ));
        }
        for (name, g) in lock(&self.gauges).iter() {
            let bits = g.load(Ordering::Relaxed);
            out.push((name.clone(), MetricValue::Gauge(f64::from_bits(bits))));
        }
        for (name, h) in lock(&self.histograms).iter() {
            out.push((name.clone(), MetricValue::Histogram(h.snapshot())));
        }
        out.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| kind_rank(&a.1).cmp(&kind_rank(&b.1)))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1 << 40), 41);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_count_sum_max() {
        let h = Histogram::new();
        for v in [3u64, 5, 9] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 17);
        assert_eq!(s.max, 9);
        // 3 → bucket 2; 5 → bucket 3; 9 → bucket 4.
        assert_eq!(s.buckets, vec![(2, 1), (3, 1), (4, 1)]);
    }

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        r.counter_add("a/x", 2);
        r.counter_add("a/x", 3);
        r.gauge_set("a/g", 1.5);
        r.gauge_set("a/g", -2.5);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], ("a/g".to_string(), MetricValue::Gauge(-2.5)));
        assert_eq!(snap[1], ("a/x".to_string(), MetricValue::Counter(5)));
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = Registry::new();
        r.record("z/h", 1);
        r.counter_add("a/c", 1);
        r.gauge_set("m/g", 0.0);
        let names: Vec<String> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a/c", "m/g", "z/h"]);
    }
}
