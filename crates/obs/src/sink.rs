//! Output sinks: deterministic JSONL rendering and the human stderr
//! summary.
//!
//! The JSONL serializer is hand-rolled (no deps) and deterministic: field
//! order is the caller's, metric order is name-sorted, floats go through
//! Rust's shortest-roundtrip `Display`, and non-finite floats become
//! `null` (so a NaN loss is machine-greppable as `"loss":null`).

use std::fmt::Write as _;

use crate::registry::MetricValue;
use crate::{EventValue, Obs};

/// Escapes `s` as the inside of a JSON string literal.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` as a JSON value; non-finite values become `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_event_value(out: &mut String, v: &EventValue) {
    match v {
        EventValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        EventValue::F64(x) => push_f64(out, *x),
        EventValue::Str(s) => push_json_str(out, s),
        EventValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Renders one event as a single JSON object line (no trailing newline).
pub(crate) fn render_event(name: &str, fields: &[(&str, EventValue)]) -> String {
    let mut out = String::from("{\"event\":");
    push_json_str(&mut out, name);
    for (key, value) in fields {
        out.push(',');
        push_json_str(&mut out, key);
        out.push(':');
        push_event_value(&mut out, value);
    }
    out.push('}');
    out
}

/// Renders one metric as a single JSON object line (no trailing newline).
pub(crate) fn render_metric(name: &str, value: &MetricValue) -> String {
    let mut out = String::from("{\"metric\":");
    push_json_str(&mut out, name);
    match value {
        MetricValue::Counter(n) => {
            let _ = write!(out, ",\"type\":\"counter\",\"value\":{n}");
        }
        MetricValue::Gauge(v) => {
            out.push_str(",\"type\":\"gauge\",\"value\":");
            push_f64(&mut out, *v);
        }
        MetricValue::Histogram(h) => {
            let _ = write!(
                out,
                ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.max
            );
            for (i, (bucket, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bucket},{n}]");
            }
            out.push(']');
        }
    }
    out.push('}');
    out
}

/// Renders the full JSONL document: event lines in insertion order, then
/// one line per metric in name-sorted order. Ends with a newline when
/// non-empty.
pub(crate) fn render_jsonl(events: &[String], metrics: &[(String, MetricValue)]) -> String {
    let mut out = String::new();
    for line in events {
        out.push_str(line);
        out.push('\n');
    }
    for (name, value) in metrics {
        out.push_str(&render_metric(name, value));
        out.push('\n');
    }
    out
}

/// Prints the human run summary to stderr: recorded metrics plus the
/// process-global diagnostics (checkpoint write retries, checked-mode
/// kernel op counts, fired fault injections).
pub(crate) fn print_summary(obs: &Obs) {
    eprintln!("[mhg-obs] run summary ({} events)", obs.event_count());
    for (name, value) in obs.metrics() {
        match value {
            MetricValue::Counter(n) => eprintln!("[mhg-obs]   counter {name} = {n}"),
            MetricValue::Gauge(v) => eprintln!("[mhg-obs]   gauge {name} = {v}"),
            MetricValue::Histogram(h) => {
                let mean = if h.count > 0 {
                    h.sum as f64 / h.count as f64
                } else {
                    0.0
                };
                eprintln!(
                    "[mhg-obs]   hist {name}: count={} sum_ns={} max_ns={} mean_ns={mean:.0}",
                    h.count, h.sum, h.max
                );
            }
        }
    }
    let retries = mhg_ckpt::write_retries();
    if retries > 0 {
        eprintln!("[mhg-obs]   ckpt write retries: {retries}");
    }
    let ops: Vec<String> = mhg_par::opstats::snapshot()
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .map(|(op, n)| format!("{op}={n}"))
        .collect();
    if !ops.is_empty() {
        eprintln!("[mhg-obs]   kernel ops (checked): {}", ops.join(" "));
    }
    let fired = mhg_faults::fired();
    if !fired.is_empty() {
        eprintln!("[mhg-obs]   fault injections fired: {}", fired.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{HistogramSnapshot, MetricValue};

    #[test]
    fn event_renders_fields_in_order() {
        let line = render_event(
            "epoch",
            &[
                ("epoch", EventValue::U64(3)),
                ("loss", EventValue::F64(0.5)),
                ("tag", EventValue::Str("a\"b".to_string())),
                ("ok", EventValue::Bool(true)),
            ],
        );
        assert_eq!(
            line,
            "{\"event\":\"epoch\",\"epoch\":3,\"loss\":0.5,\"tag\":\"a\\\"b\",\"ok\":true}"
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let line = render_event("epoch", &[("loss", EventValue::F64(f64::NAN))]);
        assert_eq!(line, "{\"event\":\"epoch\",\"loss\":null}");
        let line = render_event("epoch", &[("loss", EventValue::F64(f64::INFINITY))]);
        assert_eq!(line, "{\"event\":\"epoch\",\"loss\":null}");
    }

    #[test]
    fn metric_lines_render_each_kind() {
        assert_eq!(
            render_metric("a/c", &MetricValue::Counter(7)),
            "{\"metric\":\"a/c\",\"type\":\"counter\",\"value\":7}"
        );
        assert_eq!(
            render_metric("a/g", &MetricValue::Gauge(1.25)),
            "{\"metric\":\"a/g\",\"type\":\"gauge\",\"value\":1.25}"
        );
        let h = HistogramSnapshot {
            count: 2,
            sum: 12,
            max: 9,
            buckets: vec![(2, 1), (4, 1)],
        };
        assert_eq!(
            render_metric("a/h", &MetricValue::Histogram(h)),
            "{\"metric\":\"a/h\",\"type\":\"histogram\",\"count\":2,\"sum\":12,\"max\":9,\
             \"buckets\":[[2,1],[4,1]]}"
        );
    }

    #[test]
    fn control_chars_are_escaped() {
        let line = render_event("note", &[("msg", EventValue::Str("a\nb\u{1}".to_string()))]);
        assert_eq!(line, "{\"event\":\"note\",\"msg\":\"a\\nb\\u0001\"}");
    }
}
