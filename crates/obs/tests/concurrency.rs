//! Property test: registry totals are invariant under concurrent recording.
//!
//! Counters and histogram cells are relaxed atomics whose only operations
//! are commutative (`fetch_add`, `fetch_max`), so any interleaving of N
//! recording threads must produce exactly the totals of a serial replay.
//! This is the property that lets the kernel layer and the background
//! sampler record from worker threads without locks or coordination.

use mhg_obs::{MetricValue, Obs, Registry, HISTOGRAM_BUCKETS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-thread workload: `(counter_increment, histogram_value)`
/// pairs derived from a seeded RNG, so the expected totals are a pure
/// function of `(seed, threads, per_thread)`.
fn workload(seed: u64, thread: usize, per_thread: usize) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9));
    (0..per_thread)
        .map(|_| {
            // Histogram values span many orders of magnitude so several
            // log2 buckets are exercised, including bucket 0 (value 0).
            let exp = rng.gen_range(0..40u32);
            (rng.gen_range(0..100u64), rng.gen::<u64>() >> exp >> 24)
        })
        .collect()
}

fn run_concurrent(seed: u64, threads: usize, per_thread: usize) -> Registry {
    let registry = Registry::default();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let registry = &registry;
            scope.spawn(move || {
                for (add, value) in workload(seed, t, per_thread) {
                    registry.counter_add("events", add);
                    registry.counter_add("records", 1);
                    registry.record("latency", value);
                }
            });
        }
    });
    registry
}

#[test]
fn totals_and_buckets_match_serial_replay_for_any_thread_count() {
    for (seed, threads, per_thread) in [(1u64, 2usize, 500usize), (2, 4, 400), (3, 8, 250)] {
        // Serial oracle: replay every thread's workload on one thread.
        let mut events = 0u64;
        let mut records = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        let oracle = Registry::default();
        for t in 0..threads {
            for (add, value) in workload(seed, t, per_thread) {
                events += add;
                records += 1;
                sum += value;
                max = max.max(value);
                oracle.record("latency", value);
            }
        }
        let MetricValue::Histogram(serial_hist) = oracle.snapshot().remove(0).1 else {
            panic!("oracle registry lost its histogram");
        };
        for &(i, c) in &serial_hist.buckets {
            buckets[i] = c;
        }

        let registry = run_concurrent(seed, threads, per_thread);
        let snap = registry.snapshot();
        let get = |name: &str| {
            snap.iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert_eq!(
            get("events"),
            MetricValue::Counter(events),
            "seed {seed}, {threads} threads"
        );
        assert_eq!(get("records"), MetricValue::Counter(records));
        let MetricValue::Histogram(h) = get("latency") else {
            panic!("latency must be a histogram");
        };
        assert_eq!(h.count, records, "seed {seed}, {threads} threads");
        assert_eq!(h.sum, sum);
        assert_eq!(h.max, max);
        for &(i, c) in &h.buckets {
            assert_eq!(c, buckets[i], "bucket {i}, seed {seed}, {threads} threads");
        }
        assert_eq!(
            h.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            records,
            "sparse buckets must cover every record"
        );
    }
}

/// The same invariance holds through the full `Obs` front-end: concurrent
/// spans and counters produce a snapshot identical to the serial replay
/// (the fake clock's per-thread tick counter keeps span durations exact).
#[test]
fn obs_front_end_is_merge_order_independent() {
    let concurrent = Obs::deterministic(1_000);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let obs = &concurrent;
            scope.spawn(move || {
                for _ in 0..100 {
                    let span = obs.span("work");
                    obs.counter_add("iterations", 1);
                    span.stop_ms();
                }
            });
        }
    });

    let serial = Obs::deterministic(1_000);
    for _ in 0..400 {
        let span = serial.span("work");
        serial.counter_add("iterations", 1);
        span.stop_ms();
    }

    // Leaf spans measure exactly one fake step on every thread, so even the
    // duration histogram is byte-identical, not just the counters.
    assert_eq!(concurrent.render_jsonl(), serial.render_jsonl());
}
