//! Golden-hash parity: walk streams must be byte-identical between the
//! in-RAM `MultiplexGraph` and the chunk-paged `ShardedCsr`, at any thread
//! count.
//!
//! This is the determinism contract of the `GraphStore` refactor: a
//! conforming backend presents the same degrees and sorted neighbor lists,
//! so every RNG draw — and therefore every walk — is bit-identical. The
//! hashes are pinned as constants so a regression in either backend (or in
//! the shard builder's sort/dedup semantics) fails loudly instead of
//! silently shifting all downstream training results.

use mhg_graph::{
    GraphBuilder, GraphStore, MetapathScheme, MultiplexGraph, NodeId, RelationId, Schema,
    ShardedCsr, ShardedCsrOptions,
};
use mhg_par::with_threads;
use mhg_sampling::{sharded_over, MetapathWalker, UniformWalker, Walk};

/// FNV-1a over the concatenated walk stream (walks delimited by a marker
/// that cannot collide with a node id in this graph).
fn hash_walks(walks: &[Walk]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u32| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for w in walks {
        for &v in w {
            eat(v.0);
        }
        eat(u32::MAX);
    }
    h
}

/// A fixed bipartite multiplex graph: 40 users, 20 items, two relations
/// populated by arithmetic rules — no RNG, so the golden hashes below are
/// functions of the sampler code alone.
fn fixture() -> MultiplexGraph {
    let mut schema = Schema::new();
    let user = schema.add_node_type("user");
    let item = schema.add_node_type("item");
    schema.add_relation("r0");
    schema.add_relation("r1");
    let mut b = GraphBuilder::new(schema);
    b.add_nodes(user, 40);
    b.add_nodes(item, 20);
    for u in 0..40u32 {
        for i in 0..20u32 {
            if (u * 7 + i * 3) % 5 == 0 {
                b.add_edge(NodeId(u), NodeId(40 + i), RelationId(0));
            }
            if (u * 11 + i) % 7 == 1 {
                b.add_edge(NodeId(u), NodeId(40 + i), RelationId(1));
            }
        }
    }
    b.build()
}

fn sharded_fixture(g: &MultiplexGraph, name: &str) -> ShardedCsr {
    let dir = std::env::temp_dir().join("mhg_store_parity").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    // Tiny caps force many shards and constant paging, the regime where a
    // backend divergence would actually show.
    let opts = ShardedCsrOptions {
        shard_target_cap: 16,
        page_budget_bytes: 256,
        build_budget_bytes: 1024,
    };
    ShardedCsr::build(g, &dir, opts).expect("shard build")
}

/// 300 starts cycling over the users: > 4 shards of 64, so the sharded walk
/// decomposition is exercised, not just a single serial stream.
fn starts() -> Vec<NodeId> {
    (0..300).map(|i| NodeId(i % 40)).collect()
}

fn uniform_stream<G: GraphStore>(g: &G) -> Vec<Walk> {
    let w = UniformWalker::new(g);
    sharded_over(42, &starts(), |chunk, rng| {
        chunk.iter().map(|&s| w.walk(s, 12, rng)).collect()
    })
}

fn metapath_stream<G: GraphStore>(g: &G, scheme: &MetapathScheme) -> Vec<Walk> {
    let w = MetapathWalker::new(g, scheme.clone()).expect("valid scheme");
    sharded_over(43, &starts(), |chunk, rng| {
        chunk.iter().map(|&s| w.walk(s, 9, rng)).collect()
    })
}

const GOLDEN_UNIFORM: u64 = 0x6fd2_e148_2616_e23d;
const GOLDEN_METAPATH: u64 = 0xc273_c9be_87bb_9800;

#[test]
fn uniform_walks_identical_across_backends_and_threads() {
    let ram = fixture();
    let sharded = sharded_fixture(&ram, "uniform");
    for threads in [1usize, 4] {
        let h_ram = with_threads(threads, || hash_walks(&uniform_stream(&ram)));
        let h_sharded = with_threads(threads, || hash_walks(&uniform_stream(&sharded)));
        assert_eq!(
            h_ram, h_sharded,
            "uniform walk streams diverged at {threads} threads"
        );
        assert_eq!(
            h_ram, GOLDEN_UNIFORM,
            "uniform walk stream drifted from golden at {threads} threads: {h_ram:#018x}"
        );
    }
}

#[test]
fn metapath_walks_identical_across_backends_and_threads() {
    let ram = fixture();
    let sharded = sharded_fixture(&ram, "metapath");
    let schema = ram.schema();
    let scheme = MetapathScheme::intra(
        vec![
            schema.node_type_id("user").expect("user type"),
            schema.node_type_id("item").expect("item type"),
            schema.node_type_id("user").expect("user type"),
        ],
        schema.relation_id("r0").expect("r0"),
    );
    for threads in [1usize, 4] {
        let h_ram = with_threads(threads, || hash_walks(&metapath_stream(&ram, &scheme)));
        let h_sharded = with_threads(threads, || hash_walks(&metapath_stream(&sharded, &scheme)));
        assert_eq!(
            h_ram, h_sharded,
            "metapath walk streams diverged at {threads} threads"
        );
        assert_eq!(
            h_ram, GOLDEN_METAPATH,
            "metapath walk stream drifted from golden at {threads} threads: {h_ram:#018x}"
        );
    }
}
