//! Property-based tests for samplers: structural validity of every walk and
//! layer under randomly generated multiplex graphs.

use mhg_graph::{GraphBuilder, MetapathScheme, MultiplexGraph, NodeId, RelationId, Schema};
use mhg_sampling::{
    pairs_from_walk, AliasTable, InterRelationshipExplorer, MetapathNeighborSampler,
    MetapathWalker, NegativeSampler, Node2VecWalker, UniformNeighborSampler, UniformWalker,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
struct Spec {
    users: usize,
    items: usize,
    edges: Vec<(usize, usize, usize)>,
    num_relations: usize,
}

fn spec() -> impl Strategy<Value = Spec> {
    (2usize..6, 2usize..6, 1usize..4).prop_flat_map(|(users, items, num_relations)| {
        proptest::collection::vec((0..users, 0..items, 0..num_relations), 1..25).prop_map(
            move |edges| Spec {
                users,
                items,
                edges,
                num_relations,
            },
        )
    })
}

fn build(s: &Spec) -> MultiplexGraph {
    let mut schema = Schema::new();
    let user = schema.add_node_type("user");
    let item = schema.add_node_type("item");
    for r in 0..s.num_relations {
        schema.add_relation(&format!("r{r}"));
    }
    let mut b = GraphBuilder::new(schema);
    b.add_nodes(user, s.users);
    b.add_nodes(item, s.items);
    for &(u, i, r) in &s.edges {
        b.add_edge(
            NodeId(u as u32),
            NodeId((s.users + i) as u32),
            RelationId(r as u16),
        );
    }
    b.build()
}

proptest! {
    #[test]
    fn uniform_walks_follow_edges(s in spec(), seed in 0u64..1000) {
        let g = build(&s);
        let w = UniformWalker::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        for start in g.nodes() {
            let walk = w.walk(start, 10, &mut rng);
            prop_assert_eq!(walk[0], start);
            for pair in walk.windows(2) {
                prop_assert!(g.has_any_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn node2vec_walks_follow_edges(s in spec(), seed in 0u64..1000,
                                   p in 0.25f32..4.0, q in 0.25f32..4.0) {
        let g = build(&s);
        let w = Node2VecWalker::new(&g, p, q);
        let mut rng = StdRng::seed_from_u64(seed);
        let walk = w.walk(NodeId(0), 12, &mut rng);
        for pair in walk.windows(2) {
            prop_assert!(g.has_any_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn metapath_walks_respect_scheme(s in spec(), seed in 0u64..1000) {
        let g = build(&s);
        let schema = g.schema();
        let user = schema.node_type_id("user").unwrap();
        let item = schema.node_type_id("item").unwrap();
        let r = RelationId(0);
        let scheme = MetapathScheme::intra(vec![user, item, user], r);
        let walker = MetapathWalker::new(&g, scheme).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let walk = walker.walk(NodeId(0), 9, &mut rng);
        for (i, &v) in walk.iter().enumerate() {
            let expect = if i % 2 == 0 { user } else { item };
            prop_assert_eq!(g.node_type(v), expect);
        }
        for pair in walk.windows(2) {
            prop_assert!(g.has_edge(pair[0], pair[1], r));
        }
    }

    #[test]
    fn exploration_steps_are_edges(s in spec(), seed in 0u64..1000) {
        let g = build(&s);
        let ex = InterRelationshipExplorer::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        for v in g.nodes() {
            if let Some((r, u)) = ex.step(v, &mut rng) {
                prop_assert!(g.has_edge(v, u, r));
            } else {
                prop_assert_eq!(g.total_degree(v), 0);
            }
        }
    }

    #[test]
    fn exploration_layers_are_reachable(s in spec(), seed in 0u64..1000) {
        let g = build(&s);
        let ex = InterRelationshipExplorer::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = ex.layered_neighbors(NodeId(0), 3, 3, 12, &mut rng);
        prop_assert_eq!(layers[0].clone(), vec![NodeId(0)]);
        for window in layers.windows(2) {
            // Every node in layer k+1 is adjacent (any relation) to some
            // node in layer k.
            for &n in &window[1] {
                prop_assert!(
                    window[0].iter().any(|&p| g.has_any_edge(p, n)),
                    "unreachable node in layer"
                );
            }
        }
    }

    #[test]
    fn metapath_layers_type_correct(s in spec(), seed in 0u64..1000) {
        let g = build(&s);
        let schema = g.schema();
        let user = schema.node_type_id("user").unwrap();
        let item = schema.node_type_id("item").unwrap();
        let scheme = MetapathScheme::intra(vec![user, item, user], RelationId(0));
        let sampler = MetapathNeighborSampler::new(&g, 3, 12);
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sampler.sample(NodeId(0), &scheme, &mut rng);
        for (k, layer) in layers.iter().enumerate() {
            let expect = if k % 2 == 0 { user } else { item };
            for &n in layer {
                prop_assert_eq!(g.node_type(n), expect);
            }
        }
    }

    #[test]
    fn uniform_layers_bounded(s in spec(), seed in 0u64..1000,
                              fan in 1usize..4, cap in 1usize..8) {
        let g = build(&s);
        let sampler = UniformNeighborSampler::new(&g, fan, cap);
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sampler.sample(NodeId(0), 3, &mut rng);
        for layer in &layers[1..] {
            prop_assert!(layer.len() <= cap);
        }
    }

    #[test]
    fn negatives_typed_correctly(s in spec(), seed in 0u64..1000) {
        let g = build(&s);
        let sampler = NegativeSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        for ty in g.schema().node_types() {
            if g.nodes_of_type(ty).is_empty() {
                continue;
            }
            let exclude = g.nodes_of_type(ty)[0];
            for n in sampler.sample_many(ty, exclude, 5, &mut rng) {
                prop_assert_eq!(g.node_type(n), ty);
            }
        }
    }

    #[test]
    fn pair_window_invariant(walk_len in 0usize..12, window in 1usize..5) {
        let walk: Vec<NodeId> = (0..walk_len as u32).map(NodeId).collect();
        let pairs = pairs_from_walk(&walk, window);
        for p in &pairs {
            let i = p.center.0 as i64;
            let k = p.context.0 as i64;
            prop_assert!(i != k && (i - k).unsigned_abs() as usize <= window);
        }
        // Pair count formula for distinct-node walks.
        let expected: usize = (0..walk_len)
            .map(|i| {
                let lo = i.saturating_sub(window);
                let hi = (i + window).min(walk_len.saturating_sub(1));
                hi - lo + usize::from(walk_len > 0) - 1
            })
            .sum();
        prop_assert_eq!(pairs.len(), expected);
    }

    #[test]
    fn alias_table_total_mass(weights in proptest::collection::vec(0.0f32..10.0, 1..20)) {
        prop_assume!(weights.iter().sum::<f32>() > 0.1);
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let i = t.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight category {i}");
        }
    }
}
