//! Heterogeneous negative sampling (paper §III-E, following metapath2vec).
//!
//! Negatives for a context node are drawn from nodes *of the same type*,
//! weighted by the standard unigram^0.75 distribution over total degree.
//! Alias tables make each draw O(1).

use rand::Rng;

use mhg_graph::{GraphStore, NodeId, NodeTypeId};

use crate::alias::AliasTable;

/// Degree exponent used by word2vec-style negative sampling.
pub const UNIGRAM_POWER: f32 = 0.75;

/// Nodes per parallel weight shard when building the unigram tables. Fixed
/// (never derived from the thread count) so the shard decomposition — and
/// therefore the resulting weight vector — is identical at any
/// `MHG_THREADS`.
const WEIGHT_SHARD: usize = 4096;

/// Type-aware negative sampler.
pub struct NegativeSampler {
    /// One alias table + node list per node type (None for empty types).
    per_type: Vec<Option<(AliasTable, Vec<NodeId>)>>,
}

impl NegativeSampler {
    /// Builds the per-type unigram^0.75 tables from any graph store.
    ///
    /// The degree-weight pass is shard-parallel via [`mhg_par`]: nodes are
    /// cut into fixed-size shards, each worker computes its shard's weights
    /// from CSR offsets (`total_degree` is pure offset arithmetic — no
    /// neighbor pages are touched), and the shards are concatenated in index
    /// order, bit-identical to the serial build.
    pub fn new<G: GraphStore>(graph: &G) -> Self {
        let per_type = graph
            .schema()
            .node_types()
            .map(|ty| {
                let nodes: Vec<NodeId> = graph.nodes_of_type(ty).to_vec();
                if nodes.is_empty() {
                    return None;
                }
                let shards = nodes.len().div_ceil(WEIGHT_SHARD);
                let weights: Vec<f32> = mhg_par::par_map_collect(shards, |s| {
                    let lo = s * WEIGHT_SHARD;
                    let hi = (lo + WEIGHT_SHARD).min(nodes.len());
                    nodes[lo..hi]
                        .iter()
                        // +1 smooths isolated nodes so every node is
                        // sampleable.
                        .map(|&v| ((graph.total_degree(v) + 1) as f32).powf(UNIGRAM_POWER))
                        .collect::<Vec<f32>>()
                })
                .into_iter()
                .flatten()
                .collect();
                Some((AliasTable::new(&weights), nodes))
            })
            .collect();
        Self { per_type }
    }

    /// Draws one negative of type `ty`, avoiding `exclude` (best-effort: up
    /// to 8 rejection attempts, then returns whatever was drawn last).
    ///
    /// Returns `None` if the type has no nodes.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        ty: NodeTypeId,
        exclude: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        let (table, nodes) = self.per_type[ty.index()].as_ref()?;
        let mut pick = nodes[table.sample(rng)];
        for _ in 0..8 {
            if pick != exclude {
                break;
            }
            pick = nodes[table.sample(rng)];
        }
        Some(pick)
    }

    /// Draws `count` negatives of type `ty` avoiding `exclude`.
    pub fn sample_many<R: Rng + ?Sized>(
        &self,
        ty: NodeTypeId,
        exclude: NodeId,
        count: usize,
        rng: &mut R,
    ) -> Vec<NodeId> {
        (0..count)
            .filter_map(|_| self.sample(ty, exclude, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_graph::{GraphBuilder, MultiplexGraph, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn two_type_graph() -> MultiplexGraph {
        let mut schema = Schema::new();
        let user = schema.add_node_type("user");
        let item = schema.add_node_type("item");
        let r = schema.add_relation("buy");
        let mut b = GraphBuilder::new(schema);
        let u0 = b.add_node(user);
        let u1 = b.add_node(user);
        let i0 = b.add_node(item);
        let i1 = b.add_node(item);
        let i2 = b.add_node(item);
        b.add_edge(u0, i0, r);
        b.add_edge(u0, i1, r);
        b.add_edge(u0, i2, r);
        b.add_edge(u1, i0, r);
        b.build()
    }

    #[test]
    fn negatives_have_requested_type() {
        let g = two_type_graph();
        let item = g.schema().node_type_id("item").unwrap();
        let sampler = NegativeSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let n = sampler.sample(item, NodeId(2), &mut rng).unwrap();
            assert_eq!(g.node_type(n), item);
        }
    }

    #[test]
    fn exclusion_respected() {
        let g = two_type_graph();
        let user = g.schema().node_type_id("user").unwrap();
        let sampler = NegativeSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        // Only 2 users; excluding u0 should essentially always give u1.
        let mut u1_count = 0;
        for _ in 0..100 {
            if sampler.sample(user, NodeId(0), &mut rng).unwrap() == NodeId(1) {
                u1_count += 1;
            }
        }
        assert!(u1_count >= 99, "exclusion failed: {u1_count}");
    }

    #[test]
    fn degree_bias_present() {
        // i0 has degree 2, i1/i2 degree 1 → i0 should be sampled most.
        let g = two_type_graph();
        let item = g.schema().node_type_id("item").unwrap();
        let sampler = NegativeSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for _ in 0..30_000 {
            // Exclude a user id that can never be drawn for items.
            let n = sampler.sample(item, NodeId(0), &mut rng).unwrap();
            *counts.entry(n.0).or_insert(0) += 1;
        }
        let c_i0 = counts[&2];
        let c_i1 = counts[&3];
        // Expected ratio (3^0.75 / 2^0.75) ≈ 1.36.
        let ratio = c_i0 as f64 / c_i1 as f64;
        assert!(
            (1.2..1.55).contains(&ratio),
            "degree bias off: ratio {ratio}"
        );
    }

    #[test]
    fn sample_many_count() {
        let g = two_type_graph();
        let item = g.schema().node_type_id("item").unwrap();
        let sampler = NegativeSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let many = sampler.sample_many(item, NodeId(0), 7, &mut rng);
        assert_eq!(many.len(), 7);
    }

    #[test]
    fn empty_type_returns_none() {
        let mut schema = Schema::new();
        let a = schema.add_node_type("a");
        let bt = schema.add_node_type("b"); // no nodes of this type
        schema.add_relation("r");
        let mut builder = GraphBuilder::new(schema);
        builder.add_node(a);
        let g = builder.build();
        let sampler = NegativeSampler::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(sampler.sample(bt, NodeId(0), &mut rng).is_none());
    }
}
