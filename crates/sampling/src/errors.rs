//! The typed error surface of the sampling stage.

/// A recoverable sampling failure, surfaced to the training pipeline
/// instead of aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleError {
    /// The background sampling worker panicked mid-production; the panic
    /// message is preserved. The pipeline recovers by re-producing the
    /// epoch inline (buffers are pure functions of the epoch index, so the
    /// fallback is bit-identical).
    WorkerPanicked(String),
    /// A metapath scheme does not fit the graph it was applied to.
    InvalidScheme(String),
    /// The sharded graph store failed underneath the sampler — a shard
    /// exhausted its retries and could not be repaired. Unlike
    /// [`SampleError::WorkerPanicked`], this is deterministic (the store's
    /// quarantine is sticky), so the pipeline does *not* fall back to
    /// inline re-sampling; it surfaces the failure as
    /// `TrainError::StorageExhausted`.
    Storage(String),
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::WorkerPanicked(msg) => {
                write!(f, "background sampling worker panicked: {msg}")
            }
            SampleError::InvalidScheme(msg) => write!(f, "invalid metapath scheme: {msg}"),
            SampleError::Storage(msg) => write!(f, "graph storage failed: {msg}"),
        }
    }
}

impl std::error::Error for SampleError {}
