//! Randomized inter-relationship exploration (paper §III-B, Eq. 1–2).
//!
//! The module's two-phase transition from a node `v_t`:
//!
//! 1. Draw a relation `r_{t+1}` uniformly from the relations under which
//!    `v_t` has at least one neighbor (Eq. 1).
//! 2. Draw `v_{t+1}` uniformly from `N_{r_{t+1}}(v_t)` (Eq. 2).
//!
//! This is the paper's first mechanism for injecting *inter-relationship*
//! information into relationship-specific representations: the walk crosses
//! relation-specific subgraphs freely, compensating for the locality of
//! intra-relationship metapaths.

use rand::Rng;

use mhg_graph::{GraphStore, MultiplexGraph, NodeId, RelationId};

use crate::walks::Walk;

/// The paper's two-phase inter-relationship explorer.
///
/// Generic over the [`GraphStore`] backend: the two RNG draws per step
/// depend only on active-relation lists and degrees, which every conforming
/// backend reports identically.
pub struct InterRelationshipExplorer<'g, G: GraphStore = MultiplexGraph> {
    graph: &'g G,
}

impl<'g, G: GraphStore> InterRelationshipExplorer<'g, G> {
    /// Creates an explorer over `graph`.
    pub fn new(graph: &'g G) -> Self {
        Self { graph }
    }

    /// One two-phase transition from `v`: returns the sampled relation and
    /// neighbor, or `None` if `v` is isolated.
    pub fn step<R: Rng + ?Sized>(&self, v: NodeId, rng: &mut R) -> Option<(RelationId, NodeId)> {
        // Phase 1 (Eq. 1): uniform over relations with non-empty N_r(v).
        let active = self.graph.active_relations(v);
        if active.is_empty() {
            return None;
        }
        let r = active[rng.gen_range(0..active.len())];
        // Phase 2 (Eq. 2): uniform over N_r(v).
        let d = self.graph.degree(v, r);
        let u = self.graph.neighbor_at(v, r, rng.gen_range(0..d));
        Some((r, u))
    }

    /// Generates an exploration walk of at most `length` nodes.
    pub fn walk<R: Rng + ?Sized>(&self, start: NodeId, length: usize, rng: &mut R) -> Walk {
        let mut walk = Vec::with_capacity(length);
        walk.push(start);
        let mut current = start;
        while walk.len() < length {
            let Some((_, next)) = self.step(current, rng) else {
                break;
            };
            walk.push(next);
            current = next;
        }
        walk
    }

    /// Samples the layered neighbor sets `N^1_rand(v) … N^L_rand(v)` used by
    /// the randomized aggregation flow (Eq. 4): at each depth, each frontier
    /// node contributes up to `fan_out` two-phase samples; each layer is
    /// truncated to `max_layer` nodes to bound aggregation cost.
    ///
    /// Layer 0 (`{v}`) is included as the first entry.
    pub fn layered_neighbors<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        depth: usize,
        fan_out: usize,
        max_layer: usize,
        rng: &mut R,
    ) -> Vec<Vec<NodeId>> {
        let mut layers = Vec::with_capacity(depth + 1);
        layers.push(vec![v]);
        for _ in 0..depth {
            let Some(frontier) = layers.last() else { break };
            let mut next = Vec::with_capacity(frontier.len().saturating_mul(fan_out));
            for &u in frontier {
                for _ in 0..fan_out {
                    if let Some((_, w)) = self.step(u, rng) {
                        next.push(w);
                    }
                    if next.len() >= max_layer {
                        break;
                    }
                }
                if next.len() >= max_layer {
                    break;
                }
            }
            if next.is_empty() {
                break;
            }
            layers.push(next);
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_graph::{GraphBuilder, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Node 0 has: 1 neighbor under r0 (node 1), and 3 neighbors under r1
    /// (nodes 2, 3, 4). Eq. 1 gives each *relation* probability 1/2, so node
    /// 1 should be reached with p=0.5 and nodes 2-4 with p=1/6 each — NOT
    /// degree-proportional.
    fn star() -> MultiplexGraph {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r0 = schema.add_relation("r0");
        let r1 = schema.add_relation("r1");
        let mut b = GraphBuilder::new(schema);
        let nodes: Vec<_> = (0..5).map(|_| b.add_node(t)).collect();
        b.add_edge(nodes[0], nodes[1], r0);
        b.add_edge(nodes[0], nodes[2], r1);
        b.add_edge(nodes[0], nodes[3], r1);
        b.add_edge(nodes[0], nodes[4], r1);
        b.build()
    }

    #[test]
    fn two_phase_distribution_matches_eq1_eq2() {
        let g = star();
        let ex = InterRelationshipExplorer::new(&g);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        let draws = 60_000;
        for _ in 0..draws {
            let (_, u) = ex.step(NodeId(0), &mut rng).unwrap();
            *counts.entry(u.0).or_insert(0) += 1;
        }
        let freq = |i: u32| counts.get(&i).copied().unwrap_or(0) as f64 / draws as f64;
        assert!((freq(1) - 0.5).abs() < 0.02, "node 1 freq {}", freq(1));
        for i in 2..=4 {
            assert!(
                (freq(i) - 1.0 / 6.0).abs() < 0.02,
                "node {i} freq {}",
                freq(i)
            );
        }
    }

    #[test]
    fn isolated_node_yields_none() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let n = b.add_node(t);
        let g = b.build();
        let ex = InterRelationshipExplorer::new(&g);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ex.step(n, &mut rng).is_none());
        assert_eq!(ex.walk(n, 5, &mut rng), vec![n]);
    }

    #[test]
    fn walk_crosses_relations() {
        // A path where consecutive hops REQUIRE different relations:
        // 0 -r0- 1 -r1- 2. A pure intra-relationship walker could never
        // reach node 2 from node 0.
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        let r0 = schema.add_relation("r0");
        let r1 = schema.add_relation("r1");
        let mut b = GraphBuilder::new(schema);
        let n0 = b.add_node(t);
        let n1 = b.add_node(t);
        let n2 = b.add_node(t);
        b.add_edge(n0, n1, r0);
        b.add_edge(n1, n2, r1);
        let g = b.build();

        let ex = InterRelationshipExplorer::new(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let mut reached = false;
        for _ in 0..100 {
            let walk = ex.walk(n0, 4, &mut rng);
            if walk.contains(&n2) {
                reached = true;
                break;
            }
        }
        assert!(reached, "exploration should cross relation boundaries");
    }

    #[test]
    fn layered_neighbors_shape() {
        let g = star();
        let ex = InterRelationshipExplorer::new(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let layers = ex.layered_neighbors(NodeId(0), 2, 4, 16, &mut rng);
        assert_eq!(layers[0], vec![NodeId(0)]);
        assert!(layers.len() >= 2);
        assert!(layers[1].len() <= 4);
        // All layer-1 nodes must be actual neighbors of node 0 (any relation).
        for &u in &layers[1] {
            assert!(g.has_any_edge(NodeId(0), u));
        }
    }

    #[test]
    fn layered_neighbors_respects_max_layer() {
        let g = star();
        let ex = InterRelationshipExplorer::new(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let layers = ex.layered_neighbors(NodeId(0), 3, 10, 5, &mut rng);
        for layer in &layers[1..] {
            assert!(layer.len() <= 5, "layer exceeded cap: {}", layer.len());
        }
    }
}
