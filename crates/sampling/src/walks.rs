//! Random-walk generators.
//!
//! Three walkers cover every model in the reproduction:
//!
//! * [`UniformWalker`] — DeepWalk-style first-order walks over the flattened
//!   graph (all relations merged).
//! * [`Node2VecWalker`] — second-order p/q-biased walks (node2vec baseline).
//! * [`MetapathWalker`] — the paper's training walks (§III-E): walks under a
//!   single relation whose node types cycle through a metapath scheme, with
//!   the transition probability `T(v_{t+1} | v_t)` uniform over typed
//!   neighbors.

use rand::Rng;

use mhg_graph::{GraphStore, MetapathScheme, MultiplexGraph, NodeId, RelationId};

use crate::errors::SampleError;

/// A generated random walk.
pub type Walk = Vec<NodeId>;

/// DeepWalk-style uniform walker over the flattened multiplex graph:
/// at each step a uniform neighbor across *all* relations is chosen.
///
/// Generic over the [`GraphStore`] backend; the RNG draw sequence depends
/// only on degrees and sorted neighbor lists, so walks are bit-identical
/// between the in-RAM and sharded stores.
pub struct UniformWalker<'g, G: GraphStore = MultiplexGraph> {
    graph: &'g G,
}

impl<'g, G: GraphStore> UniformWalker<'g, G> {
    /// Creates a walker over `graph`.
    pub fn new(graph: &'g G) -> Self {
        Self { graph }
    }

    /// Generates a walk of at most `length` nodes starting at `start`.
    /// Stops early at sinks (isolated nodes).
    pub fn walk<R: Rng + ?Sized>(&self, start: NodeId, length: usize, rng: &mut R) -> Walk {
        let mut walk = Vec::with_capacity(length);
        walk.push(start);
        let mut current = start;
        while walk.len() < length {
            let Some(next) = uniform_any_neighbor(self.graph, current, rng) else {
                break;
            };
            walk.push(next);
            current = next;
        }
        walk
    }
}

/// Samples a uniform neighbor of `v` across all relations (degree-weighted
/// over relations, i.e. uniform over the multiset of incident edges).
fn uniform_any_neighbor<G: GraphStore, R: Rng + ?Sized>(
    graph: &G,
    v: NodeId,
    rng: &mut R,
) -> Option<NodeId> {
    let total = graph.total_degree(v);
    if total == 0 {
        return None;
    }
    let mut pick = rng.gen_range(0..total);
    for r in graph.schema().relations() {
        let d = graph.degree(v, r);
        if pick < d {
            return Some(graph.neighbor_at(v, r, pick));
        }
        pick -= d;
    }
    unreachable!("pick exceeded total degree")
}

/// node2vec second-order walker with return parameter `p` and in-out
/// parameter `q`, operating on the flattened graph.
pub struct Node2VecWalker<'g, G: GraphStore = MultiplexGraph> {
    graph: &'g G,
    p: f32,
    q: f32,
}

impl<'g, G: GraphStore> Node2VecWalker<'g, G> {
    /// Creates a walker with the given bias parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `p > 0` and `q > 0`.
    pub fn new(graph: &'g G, p: f32, q: f32) -> Self {
        assert!(p > 0.0 && q > 0.0, "p and q must be positive");
        Self { graph, p, q }
    }

    /// Generates a walk of at most `length` nodes starting at `start`.
    pub fn walk<R: Rng + ?Sized>(&self, start: NodeId, length: usize, rng: &mut R) -> Walk {
        let mut walk = Vec::with_capacity(length);
        walk.push(start);
        let Some(first) = uniform_any_neighbor(self.graph, start, rng) else {
            return walk;
        };
        if length > 1 {
            walk.push(first);
        }
        while walk.len() < length {
            let prev = walk[walk.len() - 2];
            let current = walk[walk.len() - 1];
            let Some(next) = self.biased_step(prev, current, rng) else {
                break;
            };
            walk.push(next);
        }
        walk
    }

    /// One rejection-sampled second-order step (the standard trick: accept a
    /// uniform candidate with probability proportional to its bias weight).
    fn biased_step<R: Rng + ?Sized>(
        &self,
        prev: NodeId,
        current: NodeId,
        rng: &mut R,
    ) -> Option<NodeId> {
        if self.graph.total_degree(current) == 0 {
            return None;
        }
        let max_w = (1.0f32 / self.p).max(1.0).max(1.0 / self.q);
        // Bounded rejection sampling; falls back to the last candidate.
        for _ in 0..32 {
            let cand = uniform_any_neighbor(self.graph, current, rng)?;
            let w = if cand == prev {
                1.0 / self.p
            } else if self.graph.has_any_edge(cand, prev) {
                1.0
            } else {
                1.0 / self.q
            };
            if rng.gen::<f32>() * max_w <= w {
                return Some(cand);
            }
        }
        uniform_any_neighbor(self.graph, current, rng)
    }
}

/// The paper's metapath-based training walker (§III-E): walks stay under one
/// relation `r` while node types follow a scheme cyclically. The transition
/// `T(v_{t+1}|v_t)` is uniform over `N_r(v_t) ∩ κ(next type)`.
pub struct MetapathWalker<'g, G: GraphStore = MultiplexGraph> {
    graph: &'g G,
    scheme: MetapathScheme,
    relation: RelationId,
}

impl<'g, G: GraphStore> MetapathWalker<'g, G> {
    /// Creates a walker for an intra-relationship scheme; a scheme that is
    /// not intra-relationship or does not fit the graph's schema is a typed
    /// [`SampleError`], surfaced through the training pipeline instead of
    /// aborting the process.
    pub fn new(graph: &'g G, scheme: MetapathScheme) -> Result<Self, SampleError> {
        if !scheme.is_intra_relationship() {
            return Err(SampleError::InvalidScheme(
                "training walks use intra-relationship schemes".to_string(),
            ));
        }
        scheme
            .validate(graph.schema())
            .map_err(|e| SampleError::InvalidScheme(e.to_string()))?;
        let relation = scheme.relations()[0];
        Ok(Self {
            graph,
            scheme,
            relation,
        })
    }

    /// The scheme driving this walker.
    pub fn scheme(&self) -> &MetapathScheme {
        &self.scheme
    }

    /// Generates a walk of at most `length` nodes starting at `start`,
    /// cycling through the scheme's node types. Returns a single-node walk
    /// if `start` has the wrong type.
    pub fn walk<R: Rng + ?Sized>(&self, start: NodeId, length: usize, rng: &mut R) -> Walk {
        let mut walk = Vec::with_capacity(length);
        walk.push(start);
        if self.graph.node_type(start) != self.scheme.source_type() {
            return walk;
        }
        let types = self.scheme.node_types();
        // Position in the cyclic scheme. The scheme ends on its source type
        // for symmetric paths; cycling restarts after the last hop.
        let mut pos = 0usize;
        let mut current = start;
        while walk.len() < length {
            let next_pos = if pos + 1 < types.len() { pos + 1 } else { 1 };
            let want = types[next_pos];
            let candidates: Vec<NodeId> = self.graph.with_neighbors(current, self.relation, |ns| {
                ns.iter()
                    .copied()
                    .filter(|&u| self.graph.node_type(u) == want)
                    .collect()
            });
            if candidates.is_empty() {
                break;
            }
            current = candidates[rng.gen_range(0..candidates.len())];
            walk.push(current);
            pos = next_pos;
        }
        walk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_graph::{GraphBuilder, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// users u0,u1 — videos v0,v1; u0-v0, u0-v1 (like); u1-v0 (like);
    /// u1-v1 (comment).
    fn bipartite() -> MultiplexGraph {
        let mut schema = Schema::new();
        let user = schema.add_node_type("user");
        let video = schema.add_node_type("video");
        let like = schema.add_relation("like");
        let comment = schema.add_relation("comment");
        let mut b = GraphBuilder::new(schema);
        let u0 = b.add_node(user);
        let u1 = b.add_node(user);
        let v0 = b.add_node(video);
        let v1 = b.add_node(video);
        b.add_edge(u0, v0, like);
        b.add_edge(u0, v1, like);
        b.add_edge(u1, v0, like);
        b.add_edge(u1, v1, comment);
        b.build()
    }

    #[test]
    fn uniform_walk_stays_on_edges() {
        let g = bipartite();
        let w = UniformWalker::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        for start in g.nodes() {
            let walk = w.walk(start, 12, &mut rng);
            assert_eq!(walk[0], start);
            for pair in walk.windows(2) {
                assert!(g.has_any_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn uniform_walk_on_isolated_node() {
        let mut schema = Schema::new();
        let t = schema.add_node_type("x");
        schema.add_relation("r");
        let mut b = GraphBuilder::new(schema);
        let n = b.add_node(t);
        let g = b.build();
        let w = UniformWalker::new(&g);
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(w.walk(n, 10, &mut rng), vec![n]);
    }

    #[test]
    fn node2vec_walk_valid() {
        let g = bipartite();
        let w = Node2VecWalker::new(&g, 0.5, 2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let walk = w.walk(NodeId(0), 15, &mut rng);
        assert!(walk.len() > 1);
        for pair in walk.windows(2) {
            assert!(g.has_any_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn node2vec_low_p_returns_more() {
        // With p → 0 the walker should revisit the previous node much more
        // often than with p → ∞.
        let g = bipartite();
        let mut revisits = [0usize; 2];
        for (i, p) in [(0usize, 0.05f32), (1usize, 20.0)] {
            let w = Node2VecWalker::new(&g, p, 1.0);
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..300 {
                let walk = w.walk(NodeId(0), 8, &mut rng);
                for win in walk.windows(3) {
                    if win[0] == win[2] {
                        revisits[i] += 1;
                    }
                }
            }
        }
        assert!(
            revisits[0] > revisits[1],
            "low p should revisit more: {revisits:?}"
        );
    }

    #[test]
    fn metapath_walk_alternates_types() {
        let g = bipartite();
        let schema = g.schema();
        let user = schema.node_type_id("user").unwrap();
        let video = schema.node_type_id("video").unwrap();
        let like = schema.relation_id("like").unwrap();
        let scheme = MetapathScheme::intra(vec![user, video, user], like);
        let w = MetapathWalker::new(&g, scheme).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let walk = w.walk(NodeId(0), 9, &mut rng);
        assert!(walk.len() >= 3, "walk too short: {walk:?}");
        for (i, &v) in walk.iter().enumerate() {
            let expected = if i % 2 == 0 { user } else { video };
            assert_eq!(g.node_type(v), expected, "position {i}");
        }
        // All steps must stay under the like relation.
        for pair in walk.windows(2) {
            assert!(g.has_edge(pair[0], pair[1], like));
        }
    }

    #[test]
    fn metapath_walk_wrong_start_type() {
        let g = bipartite();
        let schema = g.schema();
        let user = schema.node_type_id("user").unwrap();
        let video = schema.node_type_id("video").unwrap();
        let like = schema.relation_id("like").unwrap();
        let scheme = MetapathScheme::intra(vec![user, video, user], like);
        let w = MetapathWalker::new(&g, scheme).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        // v0 is a video — walk must stop immediately.
        assert_eq!(w.walk(NodeId(2), 9, &mut rng), vec![NodeId(2)]);
    }

    #[test]
    fn metapath_walk_respects_relation() {
        // u1's only comment edge is to v1; under the like relation the walk
        // from u1 must never use the comment edge.
        let g = bipartite();
        let schema = g.schema();
        let user = schema.node_type_id("user").unwrap();
        let video = schema.node_type_id("video").unwrap();
        let like = schema.relation_id("like").unwrap();
        let scheme = MetapathScheme::intra(vec![user, video, user], like);
        let w = MetapathWalker::new(&g, scheme).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..50 {
            let walk = w.walk(NodeId(1), 5, &mut rng);
            for pair in walk.windows(2) {
                assert!(g.has_edge(pair[0], pair[1], like));
            }
        }
    }
}
