//! Walker's alias method for O(1) categorical sampling.
//!
//! Negative sampling draws millions of nodes from the unigram^0.75
//! distribution per epoch; the alias table makes each draw two random
//! numbers and one comparison.

use rand::Rng;

/// An alias table over `n` categories.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f32>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative/NaN value, or sums
    /// to zero.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w as f64 * scale).collect();
        let mut alias = vec![0u32; n];

        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: give them probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }

        Self {
            prob: prob.into_iter().map(|p| p as f32).collect(),
            alias,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f32>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let t = AliasTable::new(&[1.0, 1.0, 1.0, 1.0]);
        let freq = empirical(&t, 40_000, 1);
        for f in freq {
            assert!((f - 0.25).abs() < 0.02, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let t = AliasTable::new(&[1.0, 3.0, 6.0]);
        let freq = empirical(&t, 60_000, 2);
        assert!((freq[0] - 0.1).abs() < 0.02);
        assert!((freq[1] - 0.3).abs() < 0.02);
        assert!((freq[2] - 0.6).abs() < 0.02);
    }

    #[test]
    fn zero_weight_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let freq = empirical(&t, 20_000, 3);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
    }

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn all_zero_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_rejected() {
        let _ = AliasTable::new(&[]);
    }
}
