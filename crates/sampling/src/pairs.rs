//! Skip-gram training-pair generation.
//!
//! Given walks, emits `(center, context)` pairs where the context lies
//! within a window of radius `δ` around the center (paper §III-E:
//! `C(v_i) = {v_k | v_k ∈ S, |k−i| ≤ δ, k ≠ i}`).

use mhg_graph::NodeId;

/// A positive skip-gram training pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pair {
    /// The center node `v_i`.
    pub center: NodeId,
    /// A context node from `C(v_i)`.
    pub context: NodeId,
}

/// Emits all windowed pairs from one walk.
pub fn pairs_from_walk(walk: &[NodeId], window: usize) -> Vec<Pair> {
    let mut out = Vec::with_capacity(walk.len() * window.saturating_mul(2));
    for (i, &center) in walk.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window).min(walk.len().saturating_sub(1));
        for (k, &context) in walk.iter().enumerate().take(hi + 1).skip(lo) {
            if k != i && context != center {
                out.push(Pair { center, context });
            }
        }
    }
    out
}

/// Emits windowed pairs from many walks.
pub fn pairs_from_walks<'a>(
    walks: impl IntoIterator<Item = &'a Vec<NodeId>>,
    window: usize,
) -> Vec<Pair> {
    let mut out = Vec::new();
    for walk in walks {
        out.extend(pairs_from_walk(walk, window));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn window_one() {
        let walk = vec![n(0), n(1), n(2)];
        let pairs = pairs_from_walk(&walk, 1);
        assert_eq!(
            pairs,
            vec![
                Pair {
                    center: n(0),
                    context: n(1)
                },
                Pair {
                    center: n(1),
                    context: n(0)
                },
                Pair {
                    center: n(1),
                    context: n(2)
                },
                Pair {
                    center: n(2),
                    context: n(1)
                },
            ]
        );
    }

    #[test]
    fn window_covers_whole_walk() {
        let walk = vec![n(0), n(1), n(2)];
        let pairs = pairs_from_walk(&walk, 10);
        // Every ordered pair (i, k≠i): 3·2 = 6.
        assert_eq!(pairs.len(), 6);
    }

    #[test]
    fn self_pairs_skipped_on_revisit() {
        // Walks can revisit nodes; (v, v) pairs must be dropped.
        let walk = vec![n(0), n(1), n(0)];
        let pairs = pairs_from_walk(&walk, 2);
        assert!(pairs.iter().all(|p| p.center != p.context));
    }

    #[test]
    fn empty_and_singleton_walks() {
        assert!(pairs_from_walk(&[], 3).is_empty());
        assert!(pairs_from_walk(&[n(5)], 3).is_empty());
    }

    #[test]
    fn multi_walk_concatenation() {
        let walks = vec![vec![n(0), n(1)], vec![n(2), n(3)]];
        let pairs = pairs_from_walks(&walks, 1);
        assert_eq!(pairs.len(), 4);
        // No cross-walk pairs.
        assert!(!pairs.iter().any(|p| (p.center.0 < 2) != (p.context.0 < 2)));
    }
}
