//! Metapath-guided neighbor sampling (paper Def. 5).
//!
//! For a node `v` and scheme `P = o_0 -r_1-> … -r_K-> o_K`, the layered sets
//! `N^k_P(v)` contain the nodes reachable at step `k` along instances of
//! `P`. The hybrid aggregation flow (Eq. 3) consumes these layers
//! leaves-to-root. Fan-out and layer caps bound the cost, mirroring
//! GraphSage-style fixed-size sampling the paper's complexity analysis
//! assumes (`∏ N_i · d_k²`).

use rand::seq::SliceRandom;
use rand::Rng;

use mhg_graph::{GraphStore, MetapathScheme, MultiplexGraph, NodeId};

/// Layered metapath-guided neighbors: `layers[0] = [v]`,
/// `layers[k] ⊆ N^k_P(v)`.
pub type LayeredNeighbors = Vec<Vec<NodeId>>;

/// Samples `N^k_P(v)` layer by layer with per-parent fan-out and a per-layer
/// size cap.
pub struct MetapathNeighborSampler<'g, G: GraphStore = MultiplexGraph> {
    graph: &'g G,
    fan_out: usize,
    max_layer: usize,
}

impl<'g, G: GraphStore> MetapathNeighborSampler<'g, G> {
    /// Creates a sampler with the given per-parent fan-out and per-layer cap.
    ///
    /// # Panics
    ///
    /// Panics if `fan_out` or `max_layer` is zero.
    pub fn new(graph: &'g G, fan_out: usize, max_layer: usize) -> Self {
        assert!(fan_out > 0 && max_layer > 0, "caps must be positive");
        Self {
            graph,
            fan_out,
            max_layer,
        }
    }

    /// Samples layered neighbors of `v` under `scheme`.
    ///
    /// Returns `[[v]]` (a single layer) when `v`'s type doesn't match the
    /// scheme source or the first hop has no candidates — the caller then
    /// knows the scheme contributes no flow for this node.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        scheme: &MetapathScheme,
        rng: &mut R,
    ) -> LayeredNeighbors {
        let mut layers: LayeredNeighbors = Vec::with_capacity(scheme.len() + 1);
        layers.push(vec![v]);
        if self.graph.node_type(v) != scheme.source_type() {
            return layers;
        }
        for (hop, (&r, &want)) in scheme
            .relations()
            .iter()
            .zip(&scheme.node_types()[1..])
            .enumerate()
        {
            let frontier = &layers[hop];
            let mut next = Vec::with_capacity(frontier.len().saturating_mul(self.fan_out));
            for &u in frontier {
                let candidates: Vec<NodeId> = self.graph.with_neighbors(u, r, |ns| {
                    ns.iter()
                        .copied()
                        .filter(|&w| self.graph.node_type(w) == want)
                        .collect()
                });
                if candidates.is_empty() {
                    continue;
                }
                if candidates.len() <= self.fan_out {
                    // Small neighborhood: take every candidate exactly once
                    // instead of drawing with replacement, so coverage does
                    // not depend on the RNG stream.
                    for &w in &candidates {
                        next.push(w);
                        if next.len() >= self.max_layer {
                            break;
                        }
                    }
                } else {
                    for _ in 0..self.fan_out {
                        next.push(candidates[rng.gen_range(0..candidates.len())]);
                        if next.len() >= self.max_layer {
                            break;
                        }
                    }
                }
                if next.len() >= self.max_layer {
                    break;
                }
            }
            if next.is_empty() {
                break;
            }
            layers.push(next);
        }
        layers
    }
}

/// Uniform neighbor sampler over the flattened graph — used by the
/// `w/o hybrid aggregation flow` ablation (paper Table VIII) and the
/// GraphSage baseline.
pub struct UniformNeighborSampler<'g, G: GraphStore = MultiplexGraph> {
    graph: &'g G,
    fan_out: usize,
    max_layer: usize,
}

impl<'g, G: GraphStore> UniformNeighborSampler<'g, G> {
    /// Creates a sampler with the given caps.
    ///
    /// # Panics
    ///
    /// Panics if `fan_out` or `max_layer` is zero.
    pub fn new(graph: &'g G, fan_out: usize, max_layer: usize) -> Self {
        assert!(fan_out > 0 && max_layer > 0, "caps must be positive");
        Self {
            graph,
            fan_out,
            max_layer,
        }
    }

    /// Samples `depth` layers of uniform neighbors (all relations merged).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        depth: usize,
        rng: &mut R,
    ) -> LayeredNeighbors {
        let mut layers: LayeredNeighbors = Vec::with_capacity(depth + 1);
        layers.push(vec![v]);
        for _ in 0..depth {
            let Some(frontier) = layers.last() else { break };
            let mut next = Vec::new();
            for &u in frontier {
                // Merge neighbors across relations, then sample.
                let mut all: Vec<NodeId> = Vec::with_capacity(self.graph.total_degree(u));
                for r in self.graph.schema().relations() {
                    self.graph.push_neighbors(u, r, &mut all);
                }
                if all.is_empty() {
                    continue;
                }
                all.shuffle(rng);
                for &w in all.iter().take(self.fan_out) {
                    next.push(w);
                    if next.len() >= self.max_layer {
                        break;
                    }
                }
                if next.len() >= self.max_layer {
                    break;
                }
            }
            if next.is_empty() {
                break;
            }
            layers.push(next);
        }
        layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_graph::{GraphBuilder, MetapathScheme, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fig. 1-style graph: videos v1; users u1, u2; author a1.
    /// v1 -like- u1, v1 -like- u2 (video liked by users);
    /// u1 -comment- a1, u2 -comment- a1.
    fn fig1() -> MultiplexGraph {
        let mut schema = Schema::new();
        let video = schema.add_node_type("video");
        let user = schema.add_node_type("user");
        let author = schema.add_node_type("author");
        let like = schema.add_relation("like");
        let comment = schema.add_relation("comment");
        let mut b = GraphBuilder::new(schema);
        let v1 = b.add_node(video);
        let u1 = b.add_node(user);
        let u2 = b.add_node(user);
        let a1 = b.add_node(author);
        b.add_edge(v1, u1, like);
        b.add_edge(v1, u2, like);
        b.add_edge(u1, a1, comment);
        b.add_edge(u2, a1, comment);
        b.build()
    }

    /// The paper's running example: P = Video -like-> User -comment-> Author
    /// gives N⁰(v1)={v1}, N¹(v1)={u1,u2}, N²(v1)={a1}.
    #[test]
    fn paper_example_layers() {
        let g = fig1();
        let s = g.schema();
        let scheme = MetapathScheme::new(
            vec![
                s.node_type_id("video").unwrap(),
                s.node_type_id("user").unwrap(),
                s.node_type_id("author").unwrap(),
            ],
            vec![
                s.relation_id("like").unwrap(),
                s.relation_id("comment").unwrap(),
            ],
        );
        let sampler = MetapathNeighborSampler::new(&g, 8, 64);
        let mut rng = StdRng::seed_from_u64(1);
        let layers = sampler.sample(NodeId(0), &scheme, &mut rng);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0], vec![NodeId(0)]);
        // Layer 1 must contain only u1/u2; layer 2 only a1.
        assert!(layers[1].iter().all(|&n| n == NodeId(1) || n == NodeId(2)));
        let mut uniq1: Vec<_> = layers[1].clone();
        uniq1.sort_unstable();
        uniq1.dedup();
        assert_eq!(uniq1, vec![NodeId(1), NodeId(2)]);
        assert!(layers[2].iter().all(|&n| n == NodeId(3)));
    }

    #[test]
    fn wrong_source_type_gives_single_layer() {
        let g = fig1();
        let s = g.schema();
        let scheme = MetapathScheme::intra(
            vec![
                s.node_type_id("user").unwrap(),
                s.node_type_id("author").unwrap(),
            ],
            s.relation_id("comment").unwrap(),
        );
        let sampler = MetapathNeighborSampler::new(&g, 4, 16);
        let mut rng = StdRng::seed_from_u64(2);
        // Node 0 is a video; scheme starts at user.
        let layers = sampler.sample(NodeId(0), &scheme, &mut rng);
        assert_eq!(layers.len(), 1);
    }

    #[test]
    fn fan_out_and_cap_respected() {
        let g = fig1();
        let s = g.schema();
        let scheme = MetapathScheme::intra(
            vec![
                s.node_type_id("video").unwrap(),
                s.node_type_id("user").unwrap(),
                s.node_type_id("video").unwrap(),
            ],
            s.relation_id("like").unwrap(),
        );
        let sampler = MetapathNeighborSampler::new(&g, 1, 1);
        let mut rng = StdRng::seed_from_u64(3);
        let layers = sampler.sample(NodeId(0), &scheme, &mut rng);
        for layer in &layers[1..] {
            assert!(layer.len() <= 1);
        }
    }

    #[test]
    fn metapath_layers_respect_relation() {
        // Scheme under `like` only: layer-1 of u1 must not contain a1
        // (u1's only like-neighbor is v1).
        let g = fig1();
        let s = g.schema();
        let scheme = MetapathScheme::intra(
            vec![
                s.node_type_id("user").unwrap(),
                s.node_type_id("video").unwrap(),
            ],
            s.relation_id("like").unwrap(),
        );
        let sampler = MetapathNeighborSampler::new(&g, 4, 16);
        let mut rng = StdRng::seed_from_u64(4);
        let layers = sampler.sample(NodeId(1), &scheme, &mut rng);
        assert_eq!(layers.len(), 2);
        assert!(layers[1].iter().all(|&n| n == NodeId(0)));
    }

    #[test]
    fn uniform_sampler_merges_relations() {
        let g = fig1();
        let sampler = UniformNeighborSampler::new(&g, 8, 64);
        let mut rng = StdRng::seed_from_u64(5);
        // u1's merged neighborhood = {v1 (like), a1 (comment)}.
        let mut seen_video = false;
        let mut seen_author = false;
        for _ in 0..50 {
            let layers = sampler.sample(NodeId(1), 1, &mut rng);
            for &n in &layers[1] {
                if n == NodeId(0) {
                    seen_video = true;
                }
                if n == NodeId(3) {
                    seen_author = true;
                }
            }
        }
        assert!(seen_video && seen_author);
    }
}
