//! Double-buffered background batch production.
//!
//! [`run_prefetched`] runs a producer closure on a scoped worker thread, one
//! buffer ahead of the consumer: while the consumer processes buffer `e`,
//! the worker generates buffer `e + 1`. The hand-off channel is a rendezvous
//! (`sync_channel(0)`), so the worker can never run further ahead than one
//! buffer — exactly double buffering, with bounded memory.
//!
//! Determinism is the producer's responsibility: `produce(i)` must be a pure
//! function of `i` (e.g. by seeding an RNG from the buffer index, as
//! `mhg-train` does), so the buffer stream is identical to calling
//! `produce(0..n)` inline on the consumer thread.
//!
//! A panicking producer is *contained*: the unwind is caught on the worker,
//! converted into [`SampleError::WorkerPanicked`] and delivered in-band to
//! the consumer, which can fall back to producing the remaining buffers
//! inline — never a hung rendezvous or a process abort. The worker is also
//! a fault-injection site ([`mhg_faults::FaultSite::SamplerPanic`]) so the
//! containment path stays exercised.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;

use crate::errors::SampleError;

/// Runs `consume` on the current thread while a scoped worker thread runs
/// `produce(0), produce(1), …, produce(count - 1)` one buffer ahead.
///
/// `consume` receives a puller that yields the produced buffers in order
/// and returns `None` after all `count` buffers were delivered. A buffer of
/// `Err(SampleError::WorkerPanicked)` means the producer panicked; the
/// worker has exited and no further buffers will arrive — the consumer
/// decides how to recover. The consumer may also stop pulling early (early
/// stopping): remaining buffers are abandoned and the worker exits after at
/// most one more in-flight `produce` call.
///
/// Returns `consume`'s result once the worker has shut down.
pub fn run_prefetched<B, P, C, R>(count: usize, produce: &P, consume: C) -> R
where
    B: Send,
    P: Fn(usize) -> B + Sync,
    C: FnOnce(&mut dyn FnMut() -> Option<Result<B, SampleError>>) -> R,
{
    thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<Result<B, SampleError>>(0);
        scope.spawn(move || {
            for idx in 0..count {
                let buffer = catch_unwind(AssertUnwindSafe(|| {
                    mhg_faults::panic_if_scheduled(mhg_faults::FaultSite::SamplerPanic);
                    produce(idx)
                }));
                match buffer {
                    Ok(b) => {
                        // A failed send means the consumer hung up: stop.
                        if tx.send(Ok(b)).is_err() {
                            break;
                        }
                    }
                    Err(payload) => {
                        // Deliver the panic as a recoverable error, then
                        // exit — the producer's state is gone.
                        let _ = tx.send(Err(classify_panic(payload.as_ref())));
                        break;
                    }
                }
            }
        });
        let mut puller = move || rx.recv().ok();
        let result = consume(&mut puller);
        // Drop the receiver before the scope joins the worker, so a worker
        // blocked in `send` fails out instead of deadlocking the join.
        drop(puller);
        result
    })
}

/// Classifies a caught producer panic: a sharded-store failure (recognised
/// by [`mhg_graph::STORE_FAILURE_PREFIX`]) becomes [`SampleError::Storage`]
/// — the store's quarantine makes it deterministic, so an inline replay
/// would fail identically — while anything else stays a generic
/// [`SampleError::WorkerPanicked`] that the pipeline retries inline.
pub fn classify_panic(payload: &(dyn std::any::Any + Send)) -> SampleError {
    let msg = panic_message(payload);
    if msg.starts_with(mhg_graph::STORE_FAILURE_PREFIX) {
        SampleError::Storage(msg)
    } else {
        SampleError::WorkerPanicked(msg)
    }
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_all_buffers_in_order() {
        let produce = |i: usize| i * i;
        let collected = run_prefetched(5, &produce, |next| {
            let mut got = Vec::new();
            while let Some(v) = next() {
                got.push(v.expect("no panic expected"));
            }
            got
        });
        assert_eq!(collected, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn zero_buffers_is_immediately_exhausted() {
        let produce = |i: usize| i;
        let pulled = run_prefetched(0, &produce, |next| next());
        assert!(pulled.is_none());
    }

    #[test]
    fn early_stop_does_not_deadlock() {
        let produce = |i: usize| vec![i; 3];
        // Pull only 2 of 100 buffers, then hang up.
        let got = run_prefetched(100, &produce, |next| {
            let a = next().expect("first buffer").expect("ok");
            let b = next().expect("second buffer").expect("ok");
            (a, b)
        });
        assert_eq!(got, (vec![0; 3], vec![1; 3]));
    }

    #[test]
    fn borrows_consumer_state_across_threads() {
        let base = [10usize, 20, 30];
        let produce = |i: usize| base[i] + 1;
        let sum = run_prefetched(3, &produce, |next| {
            let mut s = 0usize;
            while let Some(v) = next() {
                s += v.expect("ok");
            }
            s
        });
        assert_eq!(sum, 63);
    }

    #[test]
    fn storage_panics_classify_as_storage_errors() {
        let msg = format!("{}: checksum mismatch", mhg_graph::STORE_FAILURE_PREFIX);
        match classify_panic(&msg.clone() as &(dyn std::any::Any + Send)) {
            SampleError::Storage(m) => assert_eq!(m, msg),
            other => panic!("expected Storage, got {other:?}"),
        }
        match classify_panic(&"index out of bounds" as &(dyn std::any::Any + Send)) {
            SampleError::WorkerPanicked(m) => assert_eq!(m, "index out of bounds"),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn storage_panic_on_the_worker_is_delivered_typed() {
        let produce = |i: usize| {
            if i == 1 {
                panic!(
                    "{}: shard r0-s0 quarantined",
                    mhg_graph::STORE_FAILURE_PREFIX
                );
            }
            i
        };
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let got = run_prefetched(3, &produce, |next| {
            let mut last = None;
            while let Some(r) = next() {
                match r {
                    Ok(_) => {}
                    Err(e) => {
                        last = Some(e);
                        break;
                    }
                }
            }
            last
        });
        std::panic::set_hook(prev_hook);
        match got {
            Some(SampleError::Storage(m)) => assert!(m.contains("quarantined")),
            other => panic!("expected Storage, got {other:?}"),
        }
    }

    #[test]
    fn producer_panic_surfaces_as_recoverable_error() {
        let produce = |i: usize| {
            if i == 2 {
                panic!("boom at {i}");
            }
            i
        };
        // Suppress the default panic-hook backtrace noise for this test.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let got = run_prefetched(5, &produce, |next| {
            let mut ok = Vec::new();
            let mut err = None;
            while let Some(r) = next() {
                match r {
                    Ok(v) => ok.push(v),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            (ok, err)
        });
        std::panic::set_hook(prev_hook);
        assert_eq!(got.0, vec![0, 1], "buffers before the panic still arrive");
        match got.1 {
            Some(SampleError::WorkerPanicked(msg)) => assert!(msg.contains("boom at 2")),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn after_panic_the_stream_ends_without_hanging() {
        let produce = |i: usize| {
            if i == 0 {
                panic!("immediate");
            }
            i
        };
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let events = run_prefetched(3, &produce, |next| {
            let mut events = Vec::new();
            while let Some(r) = next() {
                events.push(r.is_ok());
            }
            events
        });
        std::panic::set_hook(prev_hook);
        assert_eq!(events, vec![false], "one error, then clean exhaustion");
    }
}
