//! Double-buffered background batch production.
//!
//! [`run_prefetched`] runs a producer closure on a scoped worker thread, one
//! buffer ahead of the consumer: while the consumer processes buffer `e`,
//! the worker generates buffer `e + 1`. The hand-off channel is a rendezvous
//! (`sync_channel(0)`), so the worker can never run further ahead than one
//! buffer — exactly double buffering, with bounded memory.
//!
//! Determinism is the producer's responsibility: `produce(i)` must be a pure
//! function of `i` (e.g. by seeding an RNG from the buffer index, as
//! `mhg-train` does), so the buffer stream is identical to calling
//! `produce(0..n)` inline on the consumer thread.

use std::sync::mpsc;
use std::thread;

/// Runs `consume` on the current thread while a scoped worker thread runs
/// `produce(0), produce(1), …, produce(count - 1)` one buffer ahead.
///
/// `consume` receives a puller that yields the produced buffers in order and
/// returns `None` after all `count` buffers were delivered. The consumer may
/// stop pulling early (early stopping): remaining buffers are abandoned and
/// the worker exits after at most one more in-flight `produce` call.
///
/// Returns `consume`'s result once the worker has shut down.
pub fn run_prefetched<B, P, C, R>(count: usize, produce: &P, consume: C) -> R
where
    B: Send,
    P: Fn(usize) -> B + Sync,
    C: FnOnce(&mut dyn FnMut() -> Option<B>) -> R,
{
    thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel::<B>(0);
        scope.spawn(move || {
            for idx in 0..count {
                // A failed send means the consumer hung up early: stop.
                if tx.send(produce(idx)).is_err() {
                    break;
                }
            }
        });
        let mut puller = move || rx.recv().ok();
        let result = consume(&mut puller);
        // Drop the receiver before the scope joins the worker, so a worker
        // blocked in `send` fails out instead of deadlocking the join.
        drop(puller);
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_all_buffers_in_order() {
        let produce = |i: usize| i * i;
        let collected = run_prefetched(5, &produce, |next| {
            let mut got = Vec::new();
            while let Some(v) = next() {
                got.push(v);
            }
            got
        });
        assert_eq!(collected, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn zero_buffers_is_immediately_exhausted() {
        let produce = |i: usize| i;
        let pulled = run_prefetched(0, &produce, |next| next());
        assert_eq!(pulled, None);
    }

    #[test]
    fn early_stop_does_not_deadlock() {
        let produce = |i: usize| vec![i; 3];
        // Pull only 2 of 100 buffers, then hang up.
        let got = run_prefetched(100, &produce, |next| {
            let a = next().expect("first buffer");
            let b = next().expect("second buffer");
            (a, b)
        });
        assert_eq!(got, (vec![0; 3], vec![1; 3]));
    }

    #[test]
    fn borrows_consumer_state_across_threads() {
        let base = [10usize, 20, 30];
        let produce = |i: usize| base[i] + 1;
        let sum = run_prefetched(3, &produce, |next| {
            let mut s = 0usize;
            while let Some(v) = next() {
                s += v;
            }
            s
        });
        assert_eq!(sum, 63);
    }
}
