//! Sampling machinery for the HybridGNN reproduction.
//!
//! Everything the paper's training pipeline draws at random lives here:
//!
//! * [`AliasTable`] — O(1) categorical sampling.
//! * [`UniformWalker`] / [`Node2VecWalker`] / [`MetapathWalker`] — the walk
//!   generators behind DeepWalk, node2vec and the paper's metapath-based
//!   training walks (§III-E).
//! * [`InterRelationshipExplorer`] — the paper's randomized two-phase
//!   inter-relationship exploration (§III-B, Eq. 1–2).
//! * [`MetapathNeighborSampler`] / [`UniformNeighborSampler`] — layered
//!   `N^k_P(v)` sets consumed by the hybrid aggregation flows (Eq. 3–4).
//! * [`NegativeSampler`] — heterogeneous (type-aware) unigram^0.75 negative
//!   sampling.
//! * [`pairs_from_walk`] — windowed skip-gram pair generation.
//! * [`run_prefetched`] — double-buffered background batch production for
//!   the training pipeline in `mhg-train`.
//! * [`sharded`] / [`sharded_over`] — fixed-shard parallel walk generation
//!   with one derived sub-RNG per shard (bit-identical for any thread
//!   count).
//!
//! Walkers, samplers and the explorer are generic over the
//! [`mhg_graph::GraphStore`] backend (defaulting to the in-RAM
//! [`mhg_graph::MultiplexGraph`]). Because every RNG draw is conditioned
//! only on degrees and sorted neighbor lists — which the contract requires
//! all backends to report identically — walk and sample streams are
//! bit-identical between the in-RAM graph and the chunk-paged
//! [`mhg_graph::ShardedCsr`], for any shard layout and any thread count.

mod alias;
mod errors;
mod explore;
mod negative;
mod neighbors;
mod pairs;
mod prefetch;
mod shard;
mod walks;

pub use alias::AliasTable;
pub use errors::SampleError;
pub use explore::InterRelationshipExplorer;
pub use negative::{NegativeSampler, UNIGRAM_POWER};
pub use neighbors::{LayeredNeighbors, MetapathNeighborSampler, UniformNeighborSampler};
pub use pairs::{pairs_from_walk, pairs_from_walks, Pair};
pub use prefetch::{classify_panic, run_prefetched};
pub use shard::{
    derive_seed, sharded, sharded_over, sharded_over_obs, walk_shards, STARTS_PER_SHARD,
};
pub use walks::{MetapathWalker, Node2VecWalker, UniformWalker, Walk};
