//! Fixed-shard parallel walk generation.
//!
//! Per-epoch walk generation is embarrassingly parallel, but naively handing
//! one RNG stream to N workers would make the walk set depend on N. Instead,
//! work is split into a **fixed** number of shards — a function of the item
//! count only, never the thread count — and each shard draws from its own
//! sub-RNG seeded by [`derive_seed`]`(base, shard)`. Shard outputs are
//! concatenated in shard order, so the walk stream is a pure function of the
//! base seed: bit-identical for any `MHG_THREADS`, exactly like the prefetch
//! thread in [`run_prefetched`](crate::run_prefetched).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Work items per walker shard. Small enough that paper-scale start sets
/// (thousands of nodes) split into many shards for load balancing, large
/// enough that per-shard RNG setup is amortised.
pub const STARTS_PER_SHARD: usize = 64;

/// The fixed shard count for `items` work items (at least 1). Depends only
/// on the item count, never on the thread count.
pub fn walk_shards(items: usize) -> usize {
    items.div_ceil(STARTS_PER_SHARD).max(1)
}

/// Derives an independent stream seed from a base seed via the splitmix64
/// finalizer — the same mixer `mhg-train` uses for per-epoch sampler seeds,
/// so streams for distinct `(base, stream)` pairs are well separated.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `produce(shard, rng)` for each of `shards` fixed shards — across
/// worker threads when the pool has them — and concatenates the outputs in
/// shard order. Each shard's RNG is seeded `derive_seed(base_seed, shard)`,
/// so the result is a pure function of `(base_seed, shards)`.
pub fn sharded<T, F>(base_seed: u64, shards: usize, produce: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> Vec<T> + Sync,
{
    let per_shard = mhg_par::par_map_collect(shards, |shard| {
        let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, shard as u64));
        produce(shard, &mut rng)
    });
    let total = per_shard.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in per_shard {
        out.extend(part);
    }
    out
}

/// Shards a slice of work items (walk starts) with [`walk_shards`] and hands
/// each shard its fixed sub-slice plus its own derived RNG; returns the
/// concatenated outputs in item order. The convenience form every model's
/// per-epoch walk generation uses.
pub fn sharded_over<T, I, F>(base_seed: u64, items: &[I], produce: F) -> Vec<T>
where
    T: Send,
    I: Sync,
    F: Fn(&[I], &mut StdRng) -> Vec<T> + Sync,
{
    let shards = walk_shards(items.len());
    sharded(base_seed, shards, |shard, rng| {
        let range = mhg_par::split_range(items.len(), shards, shard);
        produce(&items[range], rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn shard_count_depends_only_on_items() {
        assert_eq!(walk_shards(0), 1);
        assert_eq!(walk_shards(1), 1);
        assert_eq!(walk_shards(STARTS_PER_SHARD), 1);
        assert_eq!(walk_shards(STARTS_PER_SHARD + 1), 2);
        assert_eq!(walk_shards(10 * STARTS_PER_SHARD), 10);
    }

    #[test]
    fn derive_seed_matches_train_epoch_seed_mixer() {
        // Regression pin: changing the mixer would silently re-seed every
        // epoch of every model.
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn sharded_output_is_thread_count_invariant() {
        let items: Vec<u32> = (0..500).collect();
        let run = || {
            sharded_over(0xDEAD_BEEF, &items, |shard, rng| {
                shard
                    .iter()
                    .map(|&v| (v, rng.gen::<u32>()))
                    .collect::<Vec<_>>()
            })
        };
        let serial = mhg_par::with_threads(1, run);
        for threads in [2usize, 4, 7] {
            let parallel = mhg_par::with_threads(threads, run);
            assert_eq!(serial, parallel, "divergence at {threads} threads");
        }
        // Items are preserved in order.
        let got: Vec<u32> = serial.iter().map(|&(v, _)| v).collect();
        assert_eq!(got, items);
    }
}
