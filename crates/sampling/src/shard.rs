//! Fixed-shard parallel walk generation.
//!
//! Per-epoch walk generation is embarrassingly parallel, but naively handing
//! one RNG stream to N workers would make the walk set depend on N. Instead,
//! work is split into a **fixed** number of shards — a function of the item
//! count only, never the thread count — and each shard draws from its own
//! sub-RNG seeded by [`derive_seed`]`(base, shard)`. Shard outputs are
//! concatenated in shard order, so the walk stream is a pure function of the
//! base seed: bit-identical for any `MHG_THREADS`, exactly like the prefetch
//! thread in [`run_prefetched`](crate::run_prefetched).

use mhg_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Work items per walker shard. Small enough that paper-scale start sets
/// (thousands of nodes) split into many shards for load balancing, large
/// enough that per-shard RNG setup is amortised.
pub const STARTS_PER_SHARD: usize = 64;

/// The fixed shard count for `items` work items (at least 1). Depends only
/// on the item count, never on the thread count.
pub fn walk_shards(items: usize) -> usize {
    items.div_ceil(STARTS_PER_SHARD).max(1)
}

/// Derives an independent stream seed from a base seed via the splitmix64
/// finalizer — the same mixer `mhg-train` uses for per-epoch sampler seeds,
/// so streams for distinct `(base, stream)` pairs are well separated.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `produce(shard, rng)` for each of `shards` fixed shards — across
/// worker threads when the pool has them — and concatenates the outputs in
/// shard order. Each shard's RNG is seeded `derive_seed(base_seed, shard)`,
/// so the result is a pure function of `(base_seed, shards)`.
pub fn sharded<T, F>(base_seed: u64, shards: usize, produce: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut StdRng) -> Vec<T> + Sync,
{
    let per_shard = mhg_par::par_map_collect(shards, |shard| {
        let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, shard as u64));
        produce(shard, &mut rng)
    });
    let total = per_shard.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in per_shard {
        out.extend(part);
    }
    out
}

/// Shards a slice of work items (walk starts) with [`walk_shards`] and hands
/// each shard its fixed sub-slice plus its own derived RNG; returns the
/// concatenated outputs in item order. The convenience form every model's
/// per-epoch walk generation uses.
pub fn sharded_over<T, I, F>(base_seed: u64, items: &[I], produce: F) -> Vec<T>
where
    T: Send,
    I: Sync,
    F: Fn(&[I], &mut StdRng) -> Vec<T> + Sync,
{
    let shards = walk_shards(items.len());
    sharded(base_seed, shards, |shard, rng| {
        let range = mhg_par::split_range(items.len(), shards, shard);
        produce(&items[range], rng)
    })
}

/// [`sharded_over`] with walk-sampler observability: records shard counts,
/// per-shard occupancy and produced-item totals into `obs`.
///
/// The instrumentation is clock-free and touches only relaxed atomics, so
/// it never perturbs the RNG streams or the output: the result is
/// bit-identical to [`sharded_over`], and the recorded totals are identical
/// for any `MHG_THREADS`. Throughput (items per second) is derived
/// downstream by dividing the `sampling/walk_items` counter by the
/// pipeline's `train/sample` span time.
pub fn sharded_over_obs<T, I, F>(obs: &Obs, base_seed: u64, items: &[I], produce: F) -> Vec<T>
where
    T: Send,
    I: Sync,
    F: Fn(&[I], &mut StdRng) -> Vec<T> + Sync,
{
    let shards = walk_shards(items.len());
    obs.counter_add("sampling/walk_batches", 1);
    obs.counter_add("sampling/walk_shards", shards as u64);
    obs.counter_add("sampling/walk_starts", items.len() as u64);
    let out = sharded(base_seed, shards, |shard, rng| {
        let range = mhg_par::split_range(items.len(), shards, shard);
        obs.record_value("sampling/shard_occupancy", range.len() as u64);
        produce(&items[range], rng)
    });
    obs.counter_add("sampling/walk_items", out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_obs::MetricValue;
    use rand::Rng;

    #[test]
    fn shard_count_depends_only_on_items() {
        assert_eq!(walk_shards(0), 1);
        assert_eq!(walk_shards(1), 1);
        assert_eq!(walk_shards(STARTS_PER_SHARD), 1);
        assert_eq!(walk_shards(STARTS_PER_SHARD + 1), 2);
        assert_eq!(walk_shards(10 * STARTS_PER_SHARD), 10);
    }

    #[test]
    fn derive_seed_matches_train_epoch_seed_mixer() {
        // Regression pin: changing the mixer would silently re-seed every
        // epoch of every model.
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 1), derive_seed(43, 1));
    }

    #[test]
    fn sharded_output_is_thread_count_invariant() {
        let items: Vec<u32> = (0..500).collect();
        let run = || {
            sharded_over(0xDEAD_BEEF, &items, |shard, rng| {
                shard
                    .iter()
                    .map(|&v| (v, rng.gen::<u32>()))
                    .collect::<Vec<_>>()
            })
        };
        let serial = mhg_par::with_threads(1, run);
        for threads in [2usize, 4, 7] {
            let parallel = mhg_par::with_threads(threads, run);
            assert_eq!(serial, parallel, "divergence at {threads} threads");
        }
        // Items are preserved in order.
        let got: Vec<u32> = serial.iter().map(|&(v, _)| v).collect();
        assert_eq!(got, items);
    }

    #[test]
    fn sharded_over_obs_matches_plain_and_records_thread_invariant_metrics() {
        let items: Vec<u32> = (0..300).collect();
        let produce = |shard: &[u32], rng: &mut StdRng| {
            shard
                .iter()
                .map(|&v| (v, rng.gen::<u32>()))
                .collect::<Vec<_>>()
        };
        let plain = mhg_par::with_threads(1, || sharded_over(7, &items, produce));
        let run = || {
            let obs = Obs::deterministic(1_000);
            let out = sharded_over_obs(&obs, 7, &items, produce);
            (out, obs.render_jsonl())
        };
        let (out1, jsonl1) = mhg_par::with_threads(1, run);
        let (out4, jsonl4) = mhg_par::with_threads(4, run);
        assert_eq!(out1, plain, "instrumentation must not change the output");
        assert_eq!(out1, out4);
        assert_eq!(jsonl1, jsonl4, "metrics must be thread-count invariant");

        let obs = Obs::deterministic(1_000);
        let out = sharded_over_obs(&obs, 7, &items, produce);
        let metrics = obs.metrics();
        let get = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        // 300 items → 5 shards of 60 starts each.
        assert_eq!(get("sampling/walk_shards"), Some(MetricValue::Counter(5)));
        assert_eq!(get("sampling/walk_starts"), Some(MetricValue::Counter(300)));
        assert_eq!(
            get("sampling/walk_items"),
            Some(MetricValue::Counter(out.len() as u64))
        );
        match get("sampling/shard_occupancy") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 5);
                assert_eq!(h.sum, 300);
                assert_eq!(h.max, 60);
            }
            other => panic!("expected occupancy histogram, got {other:?}"),
        }
    }
}
