//! HybridGNN configuration, including the paper's ablation switches.

use mhg_models::CommonConfig;

/// Aggregation function for the hybrid flows (the paper reports the mean
/// aggregator and notes LSTM/pooling perform similarly; we offer mean, sum
/// and max-pool as an ablation axis — see DESIGN.md §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggregatorKind {
    /// Arithmetic mean (the paper's reported choice).
    Mean,
    /// Column-wise sum.
    Sum,
    /// Column-wise max-pooling.
    MaxPool,
    /// LSTM over the stacked rows (the paper's third candidate); the final
    /// hidden state is the pooled output. Order-sensitive and slower.
    Lstm,
}

/// Full HybridGNN configuration.
///
/// Dimension conventions match the paper: the base embedding `e_v` has
/// dimension `common.dim` (`d_m`, default 128); flow/edge embeddings and
/// both attention levels operate at `common.edge_dim` (`d_e = d_h = d_k`,
/// default 8, the optimum of Fig. 3b).
#[derive(Clone, Debug)]
pub struct HybridConfig {
    /// Shared hyper-parameters (dims, walks, negatives, early stopping).
    pub common: CommonConfig,
    /// Depth `L` of the randomized inter-relationship exploration
    /// (Table VI sweeps 1–3; 2 is the paper's sweet spot for complex
    /// graphs).
    pub exploration_depth: usize,
    /// Per-parent fan-out when sampling metapath-guided / exploration
    /// neighbors.
    pub fan_out: usize,
    /// Per-layer cap on sampled neighbor sets.
    pub max_layer: usize,
    /// Flow aggregation function.
    pub aggregator: AggregatorKind,
    /// Ablation: metapath-level self-attention (Eq. 6) — when off, flows
    /// are combined by plain mean pooling.
    pub use_metapath_attention: bool,
    /// Ablation: relationship-level self-attention (Eq. 9) — when off, the
    /// per-relation summaries are used directly.
    pub use_relationship_attention: bool,
    /// Ablation: the randomized inter-relationship exploration flow
    /// (§III-B) — when off, only intra-relationship metapath flows remain.
    pub use_randomized_exploration: bool,
    /// Ablation: hybrid (metapath-guided) aggregation flows — when off,
    /// metapath flows are replaced by uniform random-neighbor aggregation.
    pub use_hybrid_flows: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            common: CommonConfig::default(),
            exploration_depth: 2,
            fan_out: 4,
            max_layer: 16,
            aggregator: AggregatorKind::Mean,
            use_metapath_attention: true,
            use_relationship_attention: true,
            use_randomized_exploration: true,
            use_hybrid_flows: true,
        }
    }
}

impl HybridConfig {
    /// A fast configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            common: CommonConfig::fast(),
            ..Self::default()
        }
    }

    /// The `w/o metapath-level attention` ablation of Table VIII.
    pub fn without_metapath_attention(mut self) -> Self {
        self.use_metapath_attention = false;
        self
    }

    /// The `w/o relationship-level attention` ablation of Table VIII.
    pub fn without_relationship_attention(mut self) -> Self {
        self.use_relationship_attention = false;
        self
    }

    /// The `w/o randomized exploration` ablation of Table VIII.
    pub fn without_randomized_exploration(mut self) -> Self {
        self.use_randomized_exploration = false;
        self
    }

    /// The `w/o hybrid aggregation flow` ablation of Table VIII.
    pub fn without_hybrid_flows(mut self) -> Self {
        self.use_hybrid_flows = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HybridConfig::default();
        assert_eq!(c.exploration_depth, 2);
        assert_eq!(c.common.dim, 128);
        assert_eq!(c.common.edge_dim, 8);
        assert!(c.use_metapath_attention && c.use_relationship_attention);
        assert!(c.use_randomized_exploration && c.use_hybrid_flows);
        assert_eq!(c.aggregator, AggregatorKind::Mean);
    }

    #[test]
    fn lstm_kind_exists() {
        // The paper's three aggregator candidates plus sum.
        let kinds = [
            AggregatorKind::Mean,
            AggregatorKind::Sum,
            AggregatorKind::MaxPool,
            AggregatorKind::Lstm,
        ];
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn ablation_builders() {
        assert!(
            !HybridConfig::fast()
                .without_metapath_attention()
                .use_metapath_attention
        );
        assert!(
            !HybridConfig::fast()
                .without_relationship_attention()
                .use_relationship_attention
        );
        assert!(
            !HybridConfig::fast()
                .without_randomized_exploration()
                .use_randomized_exploration
        );
        assert!(!HybridConfig::fast().without_hybrid_flows().use_hybrid_flows);
    }
}
