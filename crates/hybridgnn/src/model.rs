//! The HybridGNN model (paper §III): randomized inter-relationship
//! exploration + hybrid aggregation flows + hierarchical attention, trained
//! with the heterogeneous skip-gram objective over metapath-based walks.

use std::collections::{BTreeMap, HashMap};

use mhg_autograd::{Adam, Graph, Optimizer, ParamId, ParamStore, Var};
use mhg_ckpt::{CkptError, StateDict};
use mhg_datasets::LabeledEdge;
use mhg_graph::{GraphStore, MetapathScheme, NodeId, NodeTypeId, RelationId};
use mhg_models::{EmbeddingScores, FitData, LinkPredictor, TrainError, TrainReport};
use mhg_sampling::{
    derive_seed, pairs_from_walk, sharded_over_obs, InterRelationshipExplorer,
    MetapathNeighborSampler, MetapathWalker, NegativeSampler, Pair, UniformNeighborSampler,
};
use mhg_tensor::{InitKind, Tensor};
use mhg_train::{pair_batches, BatchLoss, PairExample, TrainStep};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::AggregatorKind;
use crate::config::HybridConfig;
use crate::flows::{flow_embedding, self_attention, FlowAggregator, LstmParams};

const BATCH: usize = 48;

/// Averaged metapath-level attention mass per flow, per relation — the data
/// behind the paper's Fig. 4.
pub type AttentionProfile = Vec<Vec<(String, f64)>>;

/// The HybridGNN link predictor.
pub struct HybridGnn {
    config: HybridConfig,
    scores: EmbeddingScores,
    attention: AttentionProfile,
}

struct Params {
    base: ParamId,
    ctx: ParamId,
    flow: ParamId,
    /// Per metapath shape (shared across relations; the attention layers
    /// provide relation-specific mixing).
    w_shape: Vec<ParamId>,
    w_rand: ParamId,
    w_self: ParamId,
    mq: ParamId,
    mk: ParamId,
    mv: ParamId,
    rq: ParamId,
    rk: ParamId,
    rv: ParamId,
    w_out: Vec<ParamId>,
    /// Present only for the LSTM aggregator.
    lstm: Option<LstmParams>,
}

/// Static per-fit context shared by forward passes.
struct ForwardCtx<'a, G: GraphStore> {
    graph: &'a G,
    config: &'a HybridConfig,
    /// Table II shapes with human-readable labels.
    shapes: &'a [(Vec<NodeTypeId>, String)],
}

impl HybridGnn {
    /// Creates an untrained model.
    pub fn new(config: HybridConfig) -> Self {
        Self {
            config,
            scores: EmbeddingScores::default(),
            attention: Vec::new(),
        }
    }

    /// The model's configuration.
    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    /// The averaged metapath-level attention scores per relation observed
    /// during the final inference pass (Fig. 4). Empty before `fit`, or if
    /// metapath-level attention is ablated away.
    pub fn attention_profile(&self) -> &AttentionProfile {
        &self.attention
    }

    /// The final per-relation embedding of `v` (after `fit`).
    pub fn embedding(&self, v: NodeId, r: RelationId) -> &[f32] {
        self.scores.embedding(v, r)
    }

    fn init_params<G: GraphStore>(
        graph: &G,
        config: &HybridConfig,
        num_shapes: usize,
        rng: &mut StdRng,
    ) -> (ParamStore, Params) {
        let n = graph.num_nodes();
        let d_m = config.common.dim;
        let d_h = config.common.edge_dim;
        let num_rel = graph.schema().num_relations();
        let mut params = ParamStore::new();
        let p = Params {
            base: params.register(
                "base",
                InitKind::Uniform {
                    limit: 0.5 / d_m as f32,
                }
                .init(n, d_m, rng),
            ),
            ctx: params.register("ctx", Tensor::zeros(n, d_m)),
            flow: params.register(
                "flow",
                InitKind::Uniform {
                    limit: 0.5 / d_h as f32,
                }
                .init(n, d_h, rng),
            ),
            w_shape: (0..num_shapes)
                .map(|i| {
                    params.register(
                        format!("w_shape{i}"),
                        InitKind::XavierUniform.init(d_h, d_h, rng),
                    )
                })
                .collect(),
            w_rand: params.register("w_rand", InitKind::XavierUniform.init(d_h, d_h, rng)),
            w_self: params.register("w_self", InitKind::XavierUniform.init(d_h, d_h, rng)),
            mq: params.register("mq", InitKind::XavierUniform.init(d_h, d_h, rng)),
            mk: params.register("mk", InitKind::XavierUniform.init(d_h, d_h, rng)),
            mv: params.register("mv", InitKind::XavierUniform.init(d_h, d_h, rng)),
            rq: params.register("rq", InitKind::XavierUniform.init(d_h, d_h, rng)),
            rk: params.register("rk", InitKind::XavierUniform.init(d_h, d_h, rng)),
            rv: params.register("rv", InitKind::XavierUniform.init(d_h, d_h, rng)),
            w_out: (0..num_rel)
                .map(|i| {
                    params.register(
                        format!("w_out_r{i}"),
                        InitKind::XavierUniform.init(d_h, d_m, rng),
                    )
                })
                .collect(),
            lstm: (config.aggregator == AggregatorKind::Lstm).then(|| {
                let mut mat = |name: &str| {
                    params.register(
                        name.to_string(),
                        InitKind::XavierUniform.init(d_h, d_h, rng),
                    )
                };
                let wx = [
                    mat("lstm_wxi"),
                    mat("lstm_wxf"),
                    mat("lstm_wxo"),
                    mat("lstm_wxg"),
                ];
                let wh = [
                    mat("lstm_whi"),
                    mat("lstm_whf"),
                    mat("lstm_who"),
                    mat("lstm_whg"),
                ];
                let b = [
                    params.register("lstm_bi", Tensor::zeros(1, d_h)),
                    // Forget-gate bias starts at 1 (standard LSTM trick).
                    params.register("lstm_bf", Tensor::full(1, d_h, 1.0)),
                    params.register("lstm_bo", Tensor::zeros(1, d_h)),
                    params.register("lstm_bg", Tensor::zeros(1, d_h)),
                ];
                LstmParams { wx, wh, b }
            }),
        };
        (params, p)
    }

    /// Forward pass for one node: returns `e*_{v,r}` for every relation
    /// (each a `1 × d_m` variable), plus per-relation `(label, mass)`
    /// attention observations when metapath attention is active.
    #[allow(clippy::type_complexity)]
    fn forward_node<G: GraphStore>(
        g: &mut Graph<'_>,
        p: &Params,
        ctx: &ForwardCtx<'_, G>,
        v: NodeId,
        rng: &mut StdRng,
        collect_attention: bool,
    ) -> (Vec<Var>, Vec<Vec<(String, f64)>>) {
        let cfg = ctx.config;
        let graph = ctx.graph;
        let metapath_sampler = MetapathNeighborSampler::new(graph, cfg.fan_out, cfg.max_layer);
        let uniform_sampler = UniformNeighborSampler::new(graph, cfg.fan_out, cfg.max_layer);
        let explorer = InterRelationshipExplorer::new(graph);
        let aggregator = FlowAggregator::new(cfg.aggregator, p.lstm);

        let mut rel_rows: Vec<Var> = Vec::with_capacity(graph.schema().num_relations());
        let mut attn_obs: Vec<Vec<(String, f64)>> = Vec::new();

        for r in graph.schema().relations() {
            let mut rows: Vec<Var> = Vec::new();
            let mut labels: Vec<String> = Vec::new();

            for (si, (shape, label)) in ctx.shapes.iter().enumerate() {
                if shape[0] != graph.node_type(v) {
                    continue;
                }
                if cfg.use_hybrid_flows {
                    // Intra-relationship metapath-guided flow (Eq. 3).
                    let scheme = MetapathScheme::intra(shape.clone(), r);
                    let layers = metapath_sampler.sample(v, &scheme, rng);
                    if layers.len() <= 1 {
                        continue;
                    }
                    rows.push(flow_embedding(
                        g,
                        p.flow,
                        p.w_shape[si],
                        &layers,
                        &aggregator,
                    ));
                } else {
                    // Ablation: random-neighbor aggregation of the same
                    // depth replaces the metapath guidance.
                    let layers = uniform_sampler.sample(v, shape.len() - 1, rng);
                    if layers.len() <= 1 {
                        continue;
                    }
                    rows.push(flow_embedding(
                        g,
                        p.flow,
                        p.w_shape[si],
                        &layers,
                        &aggregator,
                    ));
                }
                labels.push(label.clone());
            }

            if cfg.use_randomized_exploration {
                let layers = explorer.layered_neighbors(
                    v,
                    cfg.exploration_depth,
                    cfg.fan_out,
                    cfg.max_layer,
                    rng,
                );
                if layers.len() > 1 {
                    rows.push(flow_embedding(g, p.flow, p.w_rand, &layers, &aggregator));
                    labels.push("random".to_string());
                }
            }

            if rows.is_empty() {
                // Isolated node or no applicable scheme: self flow.
                let layers = vec![vec![v]];
                rows.push(flow_embedding(g, p.flow, p.w_self, &layers, &aggregator));
                labels.push("self".to_string());
            }

            let h = g.concat_rows(&rows); // F×d_h  (Eq. 5)
            let pooled = if cfg.use_metapath_attention {
                let (h_hat, attn) = self_attention(g, h, p.mq, p.mk, p.mv); // Eq. 6
                if collect_attention {
                    // Mean attention mass received per flow (column means).
                    let a = g.value(attn);
                    let mut obs = Vec::with_capacity(labels.len());
                    for (c, label) in labels.iter().enumerate() {
                        let mass: f32 =
                            (0..a.rows()).map(|rr| a[(rr, c)]).sum::<f32>() / a.rows() as f32;
                        obs.push((label.clone(), mass as f64));
                    }
                    attn_obs.push(obs);
                }
                g.mean_rows(h_hat) // Eq. 7
            } else {
                if collect_attention {
                    attn_obs.push(Vec::new());
                }
                g.mean_rows(h)
            };
            rel_rows.push(pooled);
        }

        let u = g.concat_rows(&rel_rows); // L×d_k  (Eq. 8)
        let u_hat = if cfg.use_relationship_attention {
            self_attention(g, u, p.rq, p.rk, p.rv).0 // Eq. 9
        } else {
            u
        };

        let base = g.gather(p.base, &[v.0]);
        let e_stars = graph
            .schema()
            .relations()
            .map(|r| {
                // Eq. 10: e*_{v,r} = e_v + e_{v,r} · W_r
                let row = g.slice_rows(u_hat, r.index(), r.index() + 1);
                let w = g.param(p.w_out[r.index()]);
                let proj = g.matmul(row, w);
                g.add(base, proj)
            })
            .collect();
        (e_stars, attn_obs)
    }

    /// Full-graph inference: per-relation embedding tables, plus the
    /// averaged attention profile.
    fn full_inference<G: GraphStore>(
        params: &ParamStore,
        p: &Params,
        ctx: &ForwardCtx<'_, G>,
        rng: &mut StdRng,
    ) -> (Vec<Tensor>, AttentionProfile) {
        let graph = ctx.graph;
        let d_m = ctx.config.common.dim;
        let num_rel = graph.schema().num_relations();
        let mut tables = vec![Tensor::zeros(graph.num_nodes(), d_m); num_rel];
        // label → (mass sum, count), per relation.
        let mut acc: Vec<BTreeMap<String, (f64, usize)>> = vec![BTreeMap::new(); num_rel];

        let nodes: Vec<NodeId> = graph.node_id_range().map(NodeId).collect();
        for chunk in nodes.chunks(BATCH) {
            let mut g = Graph::new(params);
            for &v in chunk {
                let (e_stars, attn) = Self::forward_node(&mut g, p, ctx, v, rng, true);
                for (ri, e) in e_stars.iter().enumerate() {
                    tables[ri].set_row(v.index(), g.value(*e).row(0));
                }
                for (ri, obs) in attn.iter().enumerate() {
                    for (label, mass) in obs {
                        let entry = acc[ri].entry(label.clone()).or_insert((0.0, 0));
                        entry.0 += mass;
                        entry.1 += 1;
                    }
                }
            }
        }

        let attention = acc
            .into_iter()
            .map(|m| {
                // BTreeMap iterates label-sorted, so the profile rows come
                // out in the same order the old explicit sort produced.
                let rows: Vec<(String, f64)> = m
                    .into_iter()
                    .map(|(label, (sum, count))| (label, sum / count.max(1) as f64))
                    .collect();
                rows
            })
            .collect();
        (tables, attention)
    }
}

/// The `TrainStep` for HybridGNN: hybrid-flow forward per pair batch with a
/// per-center tape cache, (scores, attention) snapshot on improvement.
struct HybridStep<'a, G: GraphStore> {
    params: ParamStore,
    p: Params,
    graph: &'a G,
    config: HybridConfig,
    shapes: Vec<(Vec<NodeTypeId>, String)>,
    opt: Adam,
    val: &'a [LabeledEdge],
    scores: &'a mut EmbeddingScores,
    attention: &'a mut AttentionProfile,
    staged: Option<(EmbeddingScores, AttentionProfile)>,
}

impl<G: GraphStore> TrainStep for HybridStep<'_, G> {
    type Batch = Vec<PairExample>;

    fn step(&mut self, batch: Vec<PairExample>, rng: &mut StdRng) -> BatchLoss {
        let ctx = ForwardCtx {
            graph: self.graph,
            config: &self.config,
            shapes: &self.shapes,
        };
        let mut g = Graph::new(&self.params);
        // One forward per distinct center in the batch.
        let mut center_cache: HashMap<NodeId, Vec<Var>> = HashMap::new();
        let mut lefts: Vec<Var> = Vec::new();
        let mut targets: Vec<u32> = Vec::new();
        let mut labels: Vec<f32> = Vec::new();
        for ex in &batch {
            let e_stars = center_cache.entry(ex.center).or_insert_with(|| {
                HybridGnn::forward_node(&mut g, &self.p, &ctx, ex.center, rng, false).0
            });
            let e = e_stars[ex.relation.index()];
            lefts.push(e);
            targets.push(ex.context.0);
            labels.push(1.0);
            for &neg in &ex.negatives {
                lefts.push(e);
                targets.push(neg.0);
                labels.push(-1.0);
            }
        }
        let left = g.concat_rows(&lefts);
        let right = g.gather(self.p.ctx, &targets);
        let scores = g.row_dot(left, right);
        let loss = g.logistic_loss(scores, &labels);
        let loss_sum = g.scalar(loss) as f64;
        let grads = g.backward(loss);
        self.opt.step(&mut self.params, &grads);
        BatchLoss { loss_sum, denom: 1 }
    }

    fn eval(&mut self, rng: &mut StdRng) -> f64 {
        let ctx = ForwardCtx {
            graph: self.graph,
            config: &self.config,
            shapes: &self.shapes,
        };
        let (tables, attention) = HybridGnn::full_inference(&self.params, &self.p, &ctx, rng);
        let snapshot = EmbeddingScores::per_relation(tables)
            .with_context(self.params.value(self.p.ctx).clone());
        let auc = mhg_models::val_auc(&snapshot, self.val);
        self.staged = Some((snapshot, attention));
        auc
    }

    fn promote(&mut self) {
        if let Some((scores, attention)) = self.staged.take() {
            *self.scores = scores;
            *self.attention = attention;
        }
    }

    fn is_fitted(&self) -> bool {
        self.scores.is_ready()
    }

    fn export_state(&self, dict: &mut StateDict) {
        self.params.export_state("model/params", dict);
        self.opt.export_state("model/opt", dict);
        self.scores.export_state("model/scores", dict);
        dict.put_bytes("model/attention", encode_attention(self.attention));
    }

    fn import_state(&mut self, dict: &StateDict) -> Result<(), CkptError> {
        self.params.import_state("model/params", dict)?;
        self.opt.import_state("model/opt", dict)?;
        self.scores.import_state("model/scores", dict)?;
        *self.attention = decode_attention(dict.bytes("model/attention")?)?;
        Ok(())
    }
}

/// Byte layout for an [`AttentionProfile`]: all integers are u64 LE —
/// relation count, then per relation an entry count, then per entry a
/// label length + UTF-8 bytes + the f64 mass as raw bits.
fn encode_attention(profile: &AttentionProfile) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(profile.len() as u64).to_le_bytes());
    for rel in profile {
        out.extend_from_slice(&(rel.len() as u64).to_le_bytes());
        for (label, mass) in rel {
            out.extend_from_slice(&(label.len() as u64).to_le_bytes());
            out.extend_from_slice(label.as_bytes());
            out.extend_from_slice(&mass.to_bits().to_le_bytes());
        }
    }
    out
}

/// Inverse of [`encode_attention`]; every read is bounds-checked so
/// corrupted payloads surface as typed errors, never panics or huge
/// allocations.
fn decode_attention(buf: &[u8]) -> Result<AttentionProfile, CkptError> {
    let mut pos = 0usize;
    let take_u64 = |pos: &mut usize| -> Result<u64, CkptError> {
        let end = pos.checked_add(8).ok_or(CkptError::Truncated)?;
        let bytes = buf.get(*pos..end).ok_or(CkptError::Truncated)?;
        *pos = end;
        let bytes: [u8; 8] = bytes.try_into().map_err(|_| CkptError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    };
    let num_rel = take_u64(&mut pos)?;
    if num_rel > buf.len() as u64 {
        return Err(CkptError::Truncated);
    }
    let mut profile = Vec::with_capacity(num_rel as usize);
    for _ in 0..num_rel {
        let num_entries = take_u64(&mut pos)?;
        if num_entries > buf.len() as u64 {
            return Err(CkptError::Truncated);
        }
        let mut rel = Vec::with_capacity(num_entries as usize);
        for _ in 0..num_entries {
            let label_len =
                usize::try_from(take_u64(&mut pos)?).map_err(|_| CkptError::Truncated)?;
            let end = pos.checked_add(label_len).ok_or(CkptError::Truncated)?;
            let raw = buf.get(pos..end).ok_or(CkptError::Truncated)?;
            pos = end;
            let label = std::str::from_utf8(raw)
                .map_err(|_| CkptError::BadUtf8)?
                .to_string();
            let mass = f64::from_bits(take_u64(&mut pos)?);
            rel.push((label, mass));
        }
        profile.push(rel);
    }
    Ok(profile)
}

impl HybridGnn {
    /// Trains over any [`GraphStore`] backend — the in-RAM graph (what
    /// [`LinkPredictor::fit`] delegates to) or the paged `ShardedCsr`,
    /// whose self-healing ladder runs underneath the samplers while this
    /// loop trains. Results are bit-identical across conforming backends
    /// (the store determinism contract pins the walk streams).
    pub fn fit_store<G: GraphStore>(
        &mut self,
        data: &FitData<'_, G>,
        rng: &mut StdRng,
    ) -> Result<TrainReport, TrainError> {
        let graph = data.graph;
        let cfg = self.config.clone();
        let common = &cfg.common;

        // Label shapes like "user-item-user" from schema names.
        let shapes: Vec<(Vec<NodeTypeId>, String)> = data
            .metapath_shapes
            .iter()
            .map(|shape| {
                let label = shape
                    .iter()
                    .map(|&t| graph.schema().node_type_name(t))
                    .collect::<Vec<_>>()
                    .join("-");
                (shape.clone(), label)
            })
            .collect();

        let (params, p) = Self::init_params(graph, &cfg, shapes.len(), rng);
        let negatives = NegativeSampler::new(graph);
        let pair_budget = mhg_models::pair_budget(graph.num_edges());

        // Metapath-based training walks per relation (§III-E). These same
        // walks drive the aggregation sampling statistics. Each (relation,
        // shape) stream generates its walks in fixed shards with one derived
        // sub-RNG per shard, so the walk set is bit-identical for any thread
        // count; the post-walk shuffle keeps the SGD pair order random.
        let sample = |_epoch: usize, rng: &mut StdRng| {
            let base: u64 = rng.gen();
            let mut tagged: Vec<(Pair, RelationId)> = Vec::new();
            for r in graph.schema().relations() {
                for (shape_idx, (shape, _)) in shapes.iter().enumerate() {
                    let scheme = MetapathScheme::intra(shape.clone(), r);
                    let walker = MetapathWalker::new(graph, scheme)?;
                    let starts: Vec<NodeId> = graph
                        .nodes_of_type(shape[0])
                        .iter()
                        .copied()
                        .filter(|&start| graph.degree(start, r) > 0)
                        .collect();
                    let stream = ((r.index() as u64) << 32) | shape_idx as u64;
                    tagged.extend(sharded_over_obs(
                        &common.obs,
                        derive_seed(base, stream),
                        &starts,
                        |shard, rng| {
                            let mut out = Vec::new();
                            for &start in shard {
                                for _ in 0..common.walks_per_node.min(3) {
                                    let walk = walker.walk(start, common.walk_length, rng);
                                    out.extend(
                                        pairs_from_walk(&walk, common.window)
                                            .into_iter()
                                            .map(|pair| (pair, r)),
                                    );
                                }
                            }
                            out
                        },
                    ));
                }
            }
            tagged.shuffle(rng);
            tagged.truncate(pair_budget);
            Ok(pair_batches(
                graph,
                &negatives,
                tagged,
                common.negatives,
                BATCH,
                rng,
            ))
        };

        let mut step = HybridStep {
            params,
            p,
            graph,
            config: cfg.clone(),
            shapes: shapes.clone(),
            opt: Adam::new(common.lr.min(0.01)),
            val: data.val,
            scores: &mut self.scores,
            attention: &mut self.attention,
            staged: None,
        };
        mhg_train::train(&common.train_options(), sample, &mut step, rng)
    }
}

impl LinkPredictor for HybridGnn {
    fn name(&self) -> &'static str {
        "HybridGNN"
    }

    fn fit(&mut self, data: &FitData<'_>, rng: &mut StdRng) -> Result<TrainReport, TrainError> {
        self.fit_store(data, rng)
    }

    fn score(&self, u: NodeId, v: NodeId, r: RelationId) -> f32 {
        self.scores.score(u, v, r)
    }
}
