//! Hybrid aggregation flows (paper §III-C, Eq. 3–5) and the hierarchical
//! attention blocks (§III-D, Eq. 6–9), expressed on the autograd tape.

use mhg_autograd::{Graph, ParamId, Var};
use mhg_sampling::LayeredNeighbors;

use crate::config::AggregatorKind;

/// LSTM-cell parameters: per-gate input/hidden projections and biases, in
/// gate order `[input, forget, output, candidate]`. Shared across flows.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LstmParams {
    /// Input projections `W_x` (`d_h × d_h` each).
    pub wx: [ParamId; 4],
    /// Hidden projections `W_h` (`d_h × d_h` each).
    pub wh: [ParamId; 4],
    /// Biases (`1 × d_h` each).
    pub b: [ParamId; 4],
}

/// The aggregation function applied at every flow step, carrying its
/// learnable state when the aggregator has any (LSTM).
#[derive(Clone, Copy, Debug)]
pub(crate) enum FlowAggregator {
    /// A stateless pool: mean, sum or max.
    Simple(AggregatorKind),
    /// LSTM over the stacked rows.
    Lstm(LstmParams),
}

impl FlowAggregator {
    /// Builds the aggregator for a configured kind.
    pub(crate) fn new(kind: AggregatorKind, lstm: Option<LstmParams>) -> Self {
        match kind {
            AggregatorKind::Lstm => {
                FlowAggregator::Lstm(lstm.expect("LSTM aggregator needs its parameters"))
            }
            other => FlowAggregator::Simple(other),
        }
    }
}

/// Pools a stack of rows into `1 × d` with the configured aggregator.
fn pool(g: &mut Graph<'_>, stack: Var, agg: &FlowAggregator) -> Var {
    match agg {
        FlowAggregator::Simple(AggregatorKind::Mean) => g.mean_rows(stack),
        FlowAggregator::Simple(AggregatorKind::Sum) => g.sum_rows(stack),
        FlowAggregator::Simple(AggregatorKind::MaxPool) => g.max_rows(stack),
        FlowAggregator::Simple(AggregatorKind::Lstm) => {
            unreachable!("Lstm kind is always wrapped with parameters")
        }
        FlowAggregator::Lstm(p) => lstm_pool(g, stack, p),
    }
}

/// Runs an LSTM over the rows of `stack` (`n × d_h`) and returns the final
/// hidden state (`1 × d_h`).
fn lstm_pool(g: &mut Graph<'_>, stack: Var, p: &LstmParams) -> Var {
    let n = g.value(stack).rows();
    let d = g.value(stack).cols();
    let zero = g.constant(mhg_tensor::Tensor::zeros(1, d));
    let mut h = zero;
    let mut c = zero;
    for i in 0..n {
        let x = g.slice_rows(stack, i, i + 1);
        let gate = |g: &mut Graph<'_>, h: Var, idx: usize| -> Var {
            let wx = g.param(p.wx[idx]);
            let wh = g.param(p.wh[idx]);
            let b = g.param(p.b[idx]);
            let xa = g.matmul(x, wx);
            let ha = g.matmul(h, wh);
            let sum = g.add(xa, ha);
            g.add(sum, b)
        };
        let i_gate = {
            let z = gate(g, h, 0);
            g.sigmoid(z)
        };
        let f_gate = {
            let z = gate(g, h, 1);
            g.sigmoid(z)
        };
        let o_gate = {
            let z = gate(g, h, 2);
            g.sigmoid(z)
        };
        let cand = {
            let z = gate(g, h, 3);
            g.tanh(z)
        };
        let kept = g.mul(f_gate, c);
        let new = g.mul(i_gate, cand);
        c = g.add(kept, new);
        let ct = g.tanh(c);
        h = g.mul(o_gate, ct);
    }
    h
}

/// Computes one aggregation flow embedding `h_{v|P}` (Eq. 3 for metapath
/// flows, Eq. 4 for the randomized-exploration flow) from layered neighbor
/// sets: the recursion folds the layers leaves-to-root, sharing the flow's
/// weight matrix `w` at every step.
///
/// `layers[0]` must be `[v]`. Returns a `1 × d_h` variable.
pub(crate) fn flow_embedding(
    g: &mut Graph<'_>,
    flow_table: ParamId,
    w: ParamId,
    layers: &LayeredNeighbors,
    agg: &FlowAggregator,
) -> Var {
    debug_assert!(!layers.is_empty() && layers[0].len() == 1);
    let wv = g.param(w);
    let mut carried: Option<Var> = None;
    for layer in layers.iter().skip(1).rev() {
        let ids: Vec<u32> = layer.iter().map(|n| n.0).collect();
        let gathered = g.gather(flow_table, &ids);
        let stack = match carried {
            Some(c) => g.concat_rows(&[gathered, c]),
            None => gathered,
        };
        let pooled = pool(g, stack, agg);
        let lin = g.matmul(pooled, wv);
        carried = Some(g.tanh(lin));
    }
    // Root step: combine v's own flow embedding with the carried summary.
    let self_ids = [layers[0][0].0];
    let self_row = g.gather(flow_table, &self_ids);
    let stack = match carried {
        Some(c) => g.concat_rows(&[self_row, c]),
        None => self_row,
    };
    let pooled = pool(g, stack, agg);
    let lin = g.matmul(pooled, wv);
    g.tanh(lin)
}

/// Single-head scaled dot-product self-attention (Eq. 6 / Eq. 9):
/// `softmax(X·Wq · (X·Wk)ᵀ / √d_k) · X·Wv`.
///
/// Returns `(output, attention)` where `attention` is the `n × n` softmax
/// matrix (used by the Fig. 4 attention-score export).
pub(crate) fn self_attention(
    g: &mut Graph<'_>,
    x: Var,
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
) -> (Var, Var) {
    let d_k = g.param_shape(wq).cols as f32;
    let q = {
        let w = g.param(wq);
        g.matmul(x, w)
    };
    let k = {
        let w = g.param(wk);
        g.matmul(x, w)
    };
    let v = {
        let w = g.param(wv);
        g.matmul(x, w)
    };
    let kt = g.transpose(k);
    let logits = g.matmul(q, kt);
    let scaled = g.scale(logits, 1.0 / d_k.sqrt());
    let attn = g.softmax_rows(scaled);
    (g.matmul(attn, v), attn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhg_autograd::ParamStore;
    use mhg_graph::NodeId;
    use mhg_tensor::{InitKind, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ParamStore, ParamId, ParamId) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = ParamStore::new();
        let flow = params.register(
            "flow",
            Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, 0.0]]),
        );
        let w = params.register("w", InitKind::XavierUniform.init(2, 2, &mut rng));
        (params, flow, w)
    }

    #[test]
    fn flow_embedding_shape() {
        let (params, flow, w) = setup();
        let mut g = Graph::new(&params);
        let layers = vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)], vec![NodeId(3)]];
        let h = flow_embedding(
            &mut g,
            flow,
            w,
            &layers,
            &FlowAggregator::Simple(AggregatorKind::Mean),
        );
        let t = g.value(h);
        assert_eq!((t.rows(), t.cols()), (1, 2));
        assert!(t.all_finite());
        // tanh output bounded.
        assert!(t.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn flow_embedding_single_layer() {
        let (params, flow, w) = setup();
        let mut g = Graph::new(&params);
        let layers = vec![vec![NodeId(2)]];
        let h = flow_embedding(
            &mut g,
            flow,
            w,
            &layers,
            &FlowAggregator::Simple(AggregatorKind::Mean),
        );
        assert_eq!(g.value(h).rows(), 1);
    }

    #[test]
    fn aggregators_differ() {
        let (params, flow, w) = setup();
        let layers = vec![vec![NodeId(0)], vec![NodeId(1), NodeId(3)]];
        let values: Vec<Tensor> = [
            AggregatorKind::Mean,
            AggregatorKind::Sum,
            AggregatorKind::MaxPool,
        ]
        .iter()
        .map(|&kind| {
            let mut g = Graph::new(&params);
            let h = flow_embedding(&mut g, flow, w, &layers, &FlowAggregator::Simple(kind));
            g.value(h).clone()
        })
        .collect();
        assert!(values[0].max_abs_diff(&values[1]) > 1e-6);
        assert!(values[0].max_abs_diff(&values[2]) > 1e-6);
    }

    #[test]
    fn lstm_pool_runs_and_is_order_sensitive() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = ParamStore::new();
        let flow = params.register(
            "flow",
            Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[0.5, -0.5], &[-1.0, 1.0]]),
        );
        let w = params.register("w", InitKind::XavierUniform.init(2, 2, &mut rng));
        let mut mat = |name: &str, p: &mut ParamStore| {
            p.register(
                name.to_string(),
                InitKind::XavierUniform.init(2, 2, &mut rng),
            )
        };
        let wx = [
            mat("wxi", &mut params),
            mat("wxf", &mut params),
            mat("wxo", &mut params),
            mat("wxg", &mut params),
        ];
        let wh = [
            mat("whi", &mut params),
            mat("whf", &mut params),
            mat("who", &mut params),
            mat("whg", &mut params),
        ];
        let b = [
            params.register("bi", Tensor::zeros(1, 2)),
            params.register("bf", Tensor::full(1, 2, 1.0)),
            params.register("bo", Tensor::zeros(1, 2)),
            params.register("bg", Tensor::zeros(1, 2)),
        ];
        let lstm = LstmParams { wx, wh, b };
        let agg = FlowAggregator::Lstm(lstm);

        // Same multiset of neighbors, different order: the LSTM (unlike
        // mean) is order-sensitive.
        let fwd = vec![vec![NodeId(0)], vec![NodeId(1), NodeId(3)]];
        let rev = vec![vec![NodeId(0)], vec![NodeId(3), NodeId(1)]];
        let mut g1 = Graph::new(&params);
        let h1 = flow_embedding(&mut g1, flow, w, &fwd, &agg);
        let v1 = g1.value(h1).clone();
        let mut g2 = Graph::new(&params);
        let h2 = flow_embedding(&mut g2, flow, w, &rev, &agg);
        let v2 = g2.value(h2).clone();
        assert!(v1.all_finite() && v2.all_finite());
        assert!(
            v1.max_abs_diff(&v2) > 1e-7,
            "LSTM should be order-sensitive"
        );

        // And its gradients must flow: backprop a scalar through it.
        let mut g3 = Graph::new(&params);
        let h3 = flow_embedding(&mut g3, flow, w, &fwd, &agg);
        let s = g3.sum_all(h3);
        let grads = g3.backward(s);
        assert!(grads.get(lstm.wx[0]).is_some(), "no gradient reached W_xi");
    }

    /// §III-F, case G₂: with a single relation the relationship-level
    /// softmax is 1×1 and its weight is identically 1 — the attention
    /// mechanism carries no information on such graphs.
    #[test]
    fn single_row_attention_weight_is_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut params = ParamStore::new();
        let wq = params.register("wq", InitKind::XavierUniform.init(3, 3, &mut rng));
        let wk = params.register("wk", InitKind::XavierUniform.init(3, 3, &mut rng));
        let wv = params.register("wv", InitKind::XavierUniform.init(3, 3, &mut rng));
        let mut g = Graph::new(&params);
        let x = g.constant(Tensor::from_rows(&[&[0.3, -0.7, 1.1]]));
        let (_, attn) = self_attention(&mut g, x, wq, wk, wv);
        let a = g.value(attn);
        assert_eq!((a.rows(), a.cols()), (1, 1));
        assert!((a[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn self_attention_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = ParamStore::new();
        let wq = params.register("wq", InitKind::XavierUniform.init(3, 3, &mut rng));
        let wk = params.register("wk", InitKind::XavierUniform.init(3, 3, &mut rng));
        let wv = params.register("wv", InitKind::XavierUniform.init(3, 3, &mut rng));
        let mut g = Graph::new(&params);
        let x = g.constant(InitKind::Uniform { limit: 1.0 }.init(4, 3, &mut rng));
        let (out, attn) = self_attention(&mut g, x, wq, wk, wv);
        let a = g.value(attn);
        assert_eq!((a.rows(), a.cols()), (4, 4));
        for r in 0..4 {
            let sum: f32 = a.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        assert_eq!(g.value(out).rows(), 4);
    }
}
