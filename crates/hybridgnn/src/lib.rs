//! **HybridGNN** — a from-scratch Rust reproduction of
//! *"HybridGNN: Learning Hybrid Representation for Recommendation in
//! Multiplex Heterogeneous Networks"* (ICDE 2022).
//!
//! The model learns one embedding per node **per relationship** in a
//! multiplex heterogeneous network, for relationship-specific link
//! prediction (recommendation). Three mechanisms work together:
//!
//! 1. **Randomized inter-relationship exploration** (§III-B, Eq. 1–2) — a
//!    two-phase walk that crosses relation-specific subgraphs, supplying
//!    the inter-relationship signal intra-relationship metapaths miss.
//! 2. **Hybrid aggregation flows** (§III-C, Eq. 3–5) — per-metapath
//!    leaves-to-root aggregation of sampled `N^k_P(v)` neighbor layers,
//!    plus one flow over the randomized exploration.
//! 3. **Hierarchical attention** (§III-D, Eq. 6–9) — metapath-level
//!    self-attention over the flow stack, then relationship-level
//!    self-attention over the per-relation summaries;
//!    `e*_{v,r} = e_v + e_{v,r}·W_r` (Eq. 10).
//!
//! Training uses the heterogeneous skip-gram objective with negative
//! sampling over metapath-based walks (§III-E, Eq. 12–13).
//!
//! # Example
//!
//! ```
//! use hybridgnn::{HybridConfig, HybridGnn};
//! use mhg_datasets::{DatasetKind, EdgeSplit};
//! use mhg_models::{FitData, LinkPredictor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let dataset = DatasetKind::Taobao.generate(0.005, 42);
//! let mut rng = StdRng::seed_from_u64(7);
//! let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
//!
//! let mut cfg = HybridConfig::fast();
//! cfg.common.epochs = 2;
//! let mut model = HybridGnn::new(cfg);
//! let data = FitData {
//!     graph: &split.train_graph,
//!     metapath_shapes: &dataset.metapath_shapes,
//!     val: &split.val,
//! };
//! model.fit(&data, &mut rng);
//! let e = split.test[0];
//! let _score = model.score(e.u, e.v, e.relation);
//! ```

mod config;
mod flows;
mod model;

pub use config::{AggregatorKind, HybridConfig};
pub use model::{AttentionProfile, HybridGnn};
