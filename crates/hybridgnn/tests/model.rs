//! End-to-end tests for the HybridGNN model: learnability, ablations, and
//! the inter-relationship uplift mechanism.

use hybridgnn::{AggregatorKind, HybridConfig, HybridGnn};
use mhg_datasets::{DatasetKind, EdgeSplit};
use mhg_models::{evaluate, FitData, LinkPredictor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fit_and_auc(cfg: HybridConfig, kind: DatasetKind, scale: f64, seed: u64) -> (HybridGnn, f64) {
    let dataset = kind.generate(scale, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    let mut model = HybridGnn::new(cfg);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    model.fit(&data, &mut rng).expect("fit must succeed");
    let auc = evaluate(&model, &split.test).roc_auc;
    (model, auc)
}

#[test]
fn learns_taobao_structure() {
    let mut cfg = HybridConfig::fast();
    cfg.common.epochs = 15;
    cfg.common.patience = 8;
    let (_, auc) = fit_and_auc(cfg, DatasetKind::Taobao, 0.015, 31);
    assert!(auc > 0.55, "HybridGNN failed to learn: auc {auc}");
}

#[test]
fn learns_amazon_structure() {
    let mut cfg = HybridConfig::fast();
    cfg.common.epochs = 8;
    let (_, auc) = fit_and_auc(cfg, DatasetKind::Amazon, 0.008, 32);
    assert!(auc > 0.6, "HybridGNN failed to learn: auc {auc}");
}

#[test]
fn attention_profile_populated() {
    let mut cfg = HybridConfig::fast();
    cfg.common.epochs = 2;
    let (model, _) = fit_and_auc(cfg, DatasetKind::Taobao, 0.006, 33);
    let profile = model.attention_profile();
    assert_eq!(profile.len(), 4, "one entry per relation");
    for rel in profile {
        assert!(!rel.is_empty(), "no attention observations");
        for (label, mass) in rel {
            assert!(
                (0.0..=1.0).contains(mass),
                "attention mass {mass} for {label} out of range"
            );
        }
        // The random-exploration flow must appear by default.
        assert!(rel.iter().any(|(l, _)| l == "random"), "{rel:?}");
    }
}

#[test]
fn all_ablations_run_and_learn_something() {
    for (name, cfg) in [
        (
            "w/o metapath attn",
            HybridConfig::fast().without_metapath_attention(),
        ),
        (
            "w/o relationship attn",
            HybridConfig::fast().without_relationship_attention(),
        ),
        (
            "w/o randomized",
            HybridConfig::fast().without_randomized_exploration(),
        ),
        (
            "w/o hybrid flows",
            HybridConfig::fast().without_hybrid_flows(),
        ),
    ] {
        let mut cfg = cfg;
        cfg.common.epochs = 6;
        let (_, auc) = fit_and_auc(cfg, DatasetKind::Taobao, 0.01, 34);
        assert!(auc > 0.5, "{name}: auc {auc}");
    }
}

#[test]
fn exploration_depths_all_work() {
    for depth in 1..=3 {
        let mut cfg = HybridConfig::fast();
        cfg.common.epochs = 3;
        cfg.exploration_depth = depth;
        let (_, auc) = fit_and_auc(cfg, DatasetKind::Amazon, 0.006, 35);
        assert!(auc > 0.5, "depth {depth}: auc {auc}");
    }
}

#[test]
fn alternative_aggregators_work() {
    for agg in [
        AggregatorKind::Sum,
        AggregatorKind::MaxPool,
        AggregatorKind::Lstm,
    ] {
        let mut cfg = HybridConfig::fast();
        // The LSTM aggregator multiplies tape size; keep its smoke test short.
        cfg.common.epochs = if agg == AggregatorKind::Lstm { 2 } else { 6 };
        cfg.aggregator = agg;
        let scale = if agg == AggregatorKind::Lstm {
            0.006
        } else {
            0.01
        };
        let (_, auc) = fit_and_auc(cfg, DatasetKind::Amazon, scale, 36);
        let floor = if agg == AggregatorKind::Lstm {
            0.45
        } else {
            0.5
        };
        assert!(auc > floor, "{agg:?}: auc {auc}");
    }
}

#[test]
fn relation_specific_embeddings_differ() {
    let mut cfg = HybridConfig::fast();
    cfg.common.epochs = 3;
    let (model, _) = fit_and_auc(cfg, DatasetKind::Taobao, 0.006, 37);
    // Same node, two relations: the multiplex representations must not be
    // identical (Eq. 10 applies a per-relation projection).
    use mhg_graph::{NodeId, RelationId};
    let a = model.embedding(NodeId(0), RelationId(0)).to_vec();
    let b = model.embedding(NodeId(0), RelationId(1)).to_vec();
    assert_ne!(a, b);
}
