//! Diagnostic driver: fits the full HybridGNN on a tiny synthetic dataset
//! and prints ROC-AUC, for quick eyeballing during development.

use hybridgnn::{HybridConfig, HybridGnn};
use mhg_datasets::{DatasetKind, EdgeSplit};
use mhg_models::{evaluate, FitData, LinkPredictor};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let epochs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(15);
    let ds = args.get(3).map(|s| s.as_str()).unwrap_or("Taobao");
    let dataset = DatasetKind::parse(ds).unwrap().generate(scale, 10);
    println!(
        "{} nodes {} edges",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges()
    );
    let mut rng = StdRng::seed_from_u64(11);
    let split = EdgeSplit::default_split(&dataset.graph, &mut rng);
    let mut cfg = HybridConfig::fast();
    cfg.common.epochs = epochs;
    cfg.common.patience = 100;
    let mut model = HybridGnn::new(cfg);
    let data = FitData {
        graph: &split.train_graph,
        metapath_shapes: &dataset.metapath_shapes,
        val: &split.val,
    };
    let t0 = std::time::Instant::now();
    let report = model.fit(&data, &mut rng).expect("fit must succeed");
    let m = evaluate(&model, &split.test);
    println!(
        "hybrid: epochs {} loss {:.4} best_val {:.4} test_auc {:.4} ({:?})",
        report.epochs_run,
        report.final_loss,
        report.best_val_auc,
        m.roc_auc,
        t0.elapsed()
    );
}
