//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] schedules faults by *occurrence index*, not by time: the
//! plan "fail the 2nd checkpoint write" fires when the process hits its 2nd
//! write, wherever and whenever that happens. Schedules are therefore a pure
//! function of the plan (and, via [`FaultPlan::seeded`], of a seed), which
//! keeps fault runs exactly reproducible — the property the recovery tests
//! rely on.
//!
//! Injection sites live in the production crates (`mhg-sampling`'s prefetch
//! worker, `mhg-ckpt`'s IO paths, `mhg-train`'s loss accounting) and are
//! compiled in unconditionally: when no plan is installed the only cost is
//! one relaxed atomic load. A plan is installed either programmatically
//! ([`install`], used by the test suites) or from the `MHG_FAULTS`
//! environment variable (used by the CI fault matrix), e.g.
//!
//! ```text
//! MHG_FAULTS="sampler_panic:1,nan_loss:2,io_write:1" cargo test
//! ```
//!
//! meaning: panic the 1st background-sampler buffer production, turn the 2nd
//! epoch loss into NaN, and fail the 1st atomic file write. The recovery
//! machinery is designed so that any such plan still produces bit-identical
//! final results — fault runs can assert the same golden hashes as clean
//! runs.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Number of distinct injection sites (length of the per-site tables).
const NUM_SITES: usize = 6;

/// Where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic inside the background sampling worker, mid-production.
    SamplerPanic,
    /// IO error in an atomic file write (checkpoint / graph persist).
    IoWrite,
    /// IO error when reading a persisted file back.
    IoRead,
    /// Replace an epoch's training loss with NaN.
    NanLoss,
    /// IO error reading one shard file of the sharded graph store at
    /// page-load time (counted per shard read, independent of `IoRead`).
    ShardRead,
    /// Corruption detected while decoding a shard page that was read
    /// successfully (surfaces as a checksum mismatch to the heal path).
    ShardDecode,
}

impl FaultSite {
    /// All sites, in schedule-table order.
    pub const ALL: [FaultSite; NUM_SITES] = [
        FaultSite::SamplerPanic,
        FaultSite::IoWrite,
        FaultSite::IoRead,
        FaultSite::NanLoss,
        FaultSite::ShardRead,
        FaultSite::ShardDecode,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::SamplerPanic => 0,
            FaultSite::IoWrite => 1,
            FaultSite::IoRead => 2,
            FaultSite::NanLoss => 3,
            FaultSite::ShardRead => 4,
            FaultSite::ShardDecode => 5,
        }
    }

    /// The spec token used by `MHG_FAULTS`.
    pub fn token(self) -> &'static str {
        match self {
            FaultSite::SamplerPanic => "sampler_panic",
            FaultSite::IoWrite => "io_write",
            FaultSite::IoRead => "io_read",
            FaultSite::NanLoss => "nan_loss",
            FaultSite::ShardRead => "shard_read",
            FaultSite::ShardDecode => "shard_decode",
        }
    }

    fn from_token(token: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.token() == token)
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// A malformed `MHG_FAULTS` specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpecError(String);

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// A deterministic fault schedule: per site, the sorted 1-based occurrence
/// indices at which the fault fires.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    schedule: [Vec<u64>; NUM_SITES],
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `site` to fire at its `occurrence`-th hit (1-based).
    pub fn inject(mut self, site: FaultSite, occurrence: u64) -> Self {
        let slot = &mut self.schedule[site.index()];
        if occurrence >= 1 && !slot.contains(&occurrence) {
            slot.push(occurrence);
            slot.sort_unstable();
        }
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.schedule.iter().all(Vec::is_empty)
    }

    /// Parses a comma-separated `site:occurrence` list, e.g.
    /// `"sampler_panic:1,io_write:2,nan_loss:1"`. Whitespace around entries
    /// is ignored; an empty spec yields an empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (token, occ) = entry
                .split_once(':')
                .ok_or_else(|| FaultSpecError(format!("entry `{entry}` is not `site:occ`")))?;
            let site = FaultSite::from_token(token.trim())
                .ok_or_else(|| FaultSpecError(format!("unknown site `{token}`")))?;
            let occurrence: u64 = occ
                .trim()
                .parse()
                .map_err(|_| FaultSpecError(format!("bad occurrence `{occ}`")))?;
            if occurrence == 0 {
                return Err(FaultSpecError("occurrences are 1-based".into()));
            }
            plan = plan.inject(site, occurrence);
        }
        Ok(plan)
    }

    /// Derives a plan from a seed: `per_site` occurrences per site, each in
    /// `1..=horizon`. Same seed → same plan, always.
    pub fn seeded(seed: u64, per_site: usize, horizon: u64) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let horizon = horizon.max(1);
        let mut state = seed;
        for site in FaultSite::ALL {
            for _ in 0..per_site {
                let occurrence = 1 + splitmix64(&mut state) % horizon;
                plan = plan.inject(site, occurrence);
            }
        }
        plan
    }

    /// The scheduled occurrence indices for `site` (sorted, 1-based).
    pub fn occurrences(&self, site: FaultSite) -> &[u64] {
        &self.schedule[site.index()]
    }

    /// Renders the plan back into `MHG_FAULTS` spec syntax. The output is
    /// canonical (site-table order, occurrences ascending) and round-trips
    /// through [`FaultPlan::parse`]: `parse(&plan.to_spec()) == plan` for
    /// every plan, pinned by the property tests in `crates/faults`.
    pub fn to_spec(&self) -> String {
        let mut out = String::new();
        for site in FaultSite::ALL {
            for &occ in self.occurrences(site) {
                if !out.is_empty() {
                    out.push(',');
                }
                out.push_str(site.token());
                out.push(':');
                out.push_str(&occ.to_string());
            }
        }
        out
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct ActiveState {
    plan: FaultPlan,
    counters: [u64; NUM_SITES],
    fired: Vec<(FaultSite, u64)>,
}

static ANY_ACTIVE: AtomicBool = AtomicBool::new(false);
static ENV_BOOTSTRAP: Once = Once::new();

fn active() -> &'static Mutex<Option<ActiveState>> {
    static ACTIVE: OnceLock<Mutex<Option<ActiveState>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(None))
}

fn lock_active() -> std::sync::MutexGuard<'static, Option<ActiveState>> {
    active().lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `plan` process-wide, resetting all occurrence counters.
pub fn install(plan: FaultPlan) {
    let empty = plan.is_empty();
    *lock_active() = Some(ActiveState {
        plan,
        counters: [0; NUM_SITES],
        fired: Vec::new(),
    });
    ANY_ACTIVE.store(!empty, Ordering::Release);
}

/// Removes any installed plan (faults stop firing; counters are dropped).
pub fn clear() {
    *lock_active() = None;
    ANY_ACTIVE.store(false, Ordering::Release);
}

/// Serializes tests that install process-global fault plans: hold the
/// returned guard for the whole test so concurrently running tests in the
/// same binary cannot consume each other's scheduled occurrences. A
/// poisoned guard (a previous holder panicked) is recovered, not
/// propagated, so one failing test doesn't cascade.
pub fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    GUARD
        .get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Whether a non-empty plan is currently installed.
pub fn is_active() -> bool {
    ensure_env_bootstrap();
    ANY_ACTIVE.load(Ordering::Acquire)
}

/// The `(site, occurrence)` events that have fired since [`install`].
pub fn fired() -> Vec<(FaultSite, u64)> {
    lock_active()
        .as_ref()
        .map(|s| s.fired.clone())
        .unwrap_or_default()
}

fn ensure_env_bootstrap() {
    ENV_BOOTSTRAP.call_once(|| {
        let Ok(spec) = std::env::var("MHG_FAULTS") else {
            return;
        };
        match FaultPlan::parse(&spec) {
            Ok(plan) if !plan.is_empty() => {
                // Only bootstrap if nothing was installed programmatically.
                // Activation is visible through `is_active` / `fired` (the
                // observability layer reports it) rather than stderr noise.
                if lock_active().is_none() {
                    install(plan);
                }
            }
            // A malformed spec is ignored; `is_active()` stays false, which
            // the fault-matrix CI legs would surface immediately.
            Ok(_) | Err(_) => {}
        }
    });
}

/// Reports (and consumes) one hit of `site`: returns `true` when the
/// schedule says this occurrence must fault. Counts from 1 on each
/// [`install`]; always `false` when no plan is installed.
pub fn should_inject(site: FaultSite) -> bool {
    ensure_env_bootstrap();
    if !ANY_ACTIVE.load(Ordering::Acquire) {
        return false;
    }
    let mut guard = lock_active();
    let Some(state) = guard.as_mut() else {
        return false;
    };
    let idx = site.index();
    state.counters[idx] += 1;
    let occurrence = state.counters[idx];
    if state.plan.schedule[idx].contains(&occurrence) {
        // The injection is recorded in `fired` for the observability
        // layer's summary; no direct stderr reporting from this crate.
        state.fired.push((site, occurrence));
        true
    } else {
        false
    }
}

/// Panics if the schedule injects at this hit of `site` (used inside the
/// background sampler, where the pipeline contains the unwind).
pub fn panic_if_scheduled(site: FaultSite) {
    if should_inject(site) {
        panic!("injected fault: {site}");
    }
}

/// Returns an injected IO error if the schedule fires at this hit of
/// `site`; `Ok(())` otherwise. `what` names the operation for the message.
pub fn io_error_if_scheduled(site: FaultSite, what: &str) -> io::Result<()> {
    if should_inject(site) {
        return Err(io::Error::other(format!("injected fault: {site} ({what})")));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plan registry is process-global; serialize the tests that use it.
    fn registry_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parse_roundtrips_tokens() {
        let plan = FaultPlan::parse("sampler_panic:2, io_write:1,nan_loss:3").unwrap();
        assert_eq!(plan.occurrences(FaultSite::SamplerPanic), &[2]);
        assert_eq!(plan.occurrences(FaultSite::IoWrite), &[1]);
        assert_eq!(plan.occurrences(FaultSite::IoRead), &[] as &[u64]);
        assert_eq!(plan.occurrences(FaultSite::NanLoss), &[3]);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("bogus_site:1").is_err());
        assert!(FaultPlan::parse("io_write").is_err());
        assert!(FaultPlan::parse("io_write:zero").is_err());
        assert!(FaultPlan::parse("io_write:0").is_err());
    }

    #[test]
    fn seeded_plans_are_reproducible_and_bounded() {
        let a = FaultPlan::seeded(99, 2, 10);
        let b = FaultPlan::seeded(99, 2, 10);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(100, 2, 10);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
        for site in FaultSite::ALL {
            assert!(a.occurrences(site).iter().all(|&o| (1..=10).contains(&o)));
        }
    }

    #[test]
    fn occurrence_counting_fires_exactly_on_schedule() {
        let _g = registry_guard();
        install(FaultPlan::new().inject(FaultSite::NanLoss, 2));
        assert!(!should_inject(FaultSite::NanLoss)); // occurrence 1
        assert!(should_inject(FaultSite::NanLoss)); // occurrence 2
        assert!(!should_inject(FaultSite::NanLoss)); // occurrence 3
        assert!(!should_inject(FaultSite::SamplerPanic));
        assert_eq!(fired(), vec![(FaultSite::NanLoss, 2)]);
        clear();
        assert!(!should_inject(FaultSite::NanLoss));
    }

    #[test]
    fn to_spec_is_canonical_and_roundtrips() {
        let plan = FaultPlan::new()
            .inject(FaultSite::ShardDecode, 3)
            .inject(FaultSite::SamplerPanic, 2)
            .inject(FaultSite::ShardRead, 1)
            .inject(FaultSite::ShardRead, 4);
        let spec = plan.to_spec();
        assert_eq!(
            spec,
            "sampler_panic:2,shard_read:1,shard_read:4,shard_decode:3"
        );
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
        assert_eq!(FaultPlan::new().to_spec(), "");
    }

    #[test]
    fn io_helper_surfaces_typed_error() {
        let _g = registry_guard();
        install(FaultPlan::new().inject(FaultSite::IoWrite, 1));
        let err = io_error_if_scheduled(FaultSite::IoWrite, "test write").unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert!(io_error_if_scheduled(FaultSite::IoWrite, "again").is_ok());
        clear();
    }
}
