//! Property tests for `MHG_FAULTS` spec parsing: arbitrary input never
//! panics (the env variable is attacker-ish surface — a typo must degrade
//! to a typed error, not abort the run), and every valid plan round-trips
//! bytes-exactly through `to_spec` → `parse`.

use proptest::prelude::*;

use mhg_faults::{FaultPlan, FaultSite};

/// A strategy over valid plans: up to 8 `(site, occurrence)` injections.
fn plan() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec((0usize..FaultSite::ALL.len(), 1u64..10_000), 0..8).prop_map(
        |entries| {
            let mut plan = FaultPlan::new();
            for (site, occ) in entries {
                plan = plan.inject(FaultSite::ALL[site], occ);
            }
            plan
        },
    )
}

proptest! {
    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        // Lossy conversion keeps every byte pattern reachable as input.
        let spec = String::from_utf8_lossy(&bytes).into_owned();
        let _ = FaultPlan::parse(&spec);
    }

    #[test]
    fn parse_never_panics_on_token_shaped_garbage(
        pieces in proptest::collection::vec((0usize..FaultSite::ALL.len(), any::<u64>(), 0usize..4), 0..8)
    ) {
        // Near-miss specs: real tokens with mangled separators/occurrences.
        let seps = [":", "", "::", "="];
        let mut spec = String::new();
        for (site, occ, sep) in pieces {
            if !spec.is_empty() {
                spec.push(',');
            }
            spec.push_str(FaultSite::ALL[site].token());
            spec.push_str(seps[sep]);
            spec.push_str(&occ.to_string());
        }
        let _ = FaultPlan::parse(&spec);
    }

    #[test]
    fn valid_plans_roundtrip_through_spec_syntax(p in plan()) {
        let spec = p.to_spec();
        let back = FaultPlan::parse(&spec);
        prop_assert_eq!(back.ok(), Some(p.clone()));
        // Canonical form is a fixed point: re-rendering changes nothing.
        prop_assert_eq!(FaultPlan::parse(&spec).unwrap().to_spec(), spec);
    }

    #[test]
    fn parse_ignores_whitespace_padding(p in plan(), pad in 0usize..3) {
        let padding = ["", " ", "\t"][pad];
        let spec: String = p
            .to_spec()
            .split(',')
            .map(|entry| format!("{padding}{entry}{padding}"))
            .collect::<Vec<_>>()
            .join(",");
        prop_assert_eq!(FaultPlan::parse(&spec).ok(), Some(p));
    }
}
