//! Deterministic schedule-exploring race harness (a poor-man's loom).
//!
//! The workspace's concurrency claims — `mhg-obs` registry updates converge
//! under any interleaving of their Relaxed atomic steps, and the `mhg-par`
//! partition-order reduction is bit-identical for any worker completion
//! order — are *linearizability-by-commutativity* arguments. This crate
//! checks them by brute force: it enumerates **every** interleaving of the
//! threads' atomic sub-operations for small thread counts (≤3) and asserts
//! each schedule's outcome equals the serial replay.
//!
//! Schedules are executed on a single OS thread: a schedule is a sequence
//! of thread indices, and "running" it steps the named thread's next
//! sub-operation. Each sub-operation models one hardware-atomic step (a
//! single `fetch_add` / `fetch_max` / `load` / `store`), so interleaving at
//! sub-operation granularity is exactly the set of behaviours a weakly
//! ordered machine can produce for these data-race-free programs. No real
//! threads are spawned, so every run explores the full schedule space and
//! the suite is deterministic.
//!
//! Two model families live here:
//!
//! * [`hist`] — the four-step `mhg_obs::Histogram::record` decomposition
//!   (bucket, count, sum, max), verified against the real histogram's
//!   serial snapshot; plus a deliberately broken load-then-store counter
//!   the harness must catch.
//! * [`reduce`] — the `mhg_par` scatter-add reduction: destination-
//!   partitioned workers merged in partition order (the shipped contract)
//!   versus input-partitioned workers merged in completion order (the bug
//!   the contract exists to prevent).

use std::ops::Range;

/// Enumerates every interleaving of `counts[t]` steps per thread `t`,
/// calling `f` with each complete schedule (a sequence of thread indices).
///
/// The number of schedules is the multinomial coefficient
/// `(Σcounts)! / Π(counts[t]!)` — see [`num_schedules`]. Keep totals small:
/// three threads of four steps each is already 34 650 schedules.
pub fn for_each_schedule<F: FnMut(&[usize])>(counts: &[usize], mut f: F) {
    let total: usize = counts.iter().sum();
    let mut remaining = counts.to_vec();
    let mut prefix = Vec::with_capacity(total);
    descend(&mut remaining, &mut prefix, total, &mut f);
}

fn descend<F: FnMut(&[usize])>(
    remaining: &mut [usize],
    prefix: &mut Vec<usize>,
    total: usize,
    f: &mut F,
) {
    if prefix.len() == total {
        f(prefix);
        return;
    }
    for t in 0..remaining.len() {
        if remaining[t] > 0 {
            remaining[t] -= 1;
            prefix.push(t);
            descend(remaining, prefix, total, f);
            prefix.pop();
            remaining[t] += 1;
        }
    }
}

/// The exact number of schedules [`for_each_schedule`] visits for
/// `counts`: the multinomial coefficient `(Σcounts)! / Π(counts[t]!)`.
///
/// # Panics
///
/// Panics if the count overflows `u64` (far beyond anything enumerable).
pub fn num_schedules(counts: &[usize]) -> u64 {
    let mut result: u128 = 1;
    let mut seen: u128 = 0;
    for &c in counts {
        for k in 1..=c as u128 {
            seen += 1;
            result = result * seen / k; // exact: binomial prefix products
        }
    }
    assert!(
        result <= u128::from(u64::MAX),
        "schedule count overflows u64"
    );
    result as u64
}

/// A program counter per thread over per-thread step lists, driven by a
/// schedule. `steps[t]` is thread `t`'s ordered sub-operation list; the
/// schedule names which thread takes its next step.
pub fn run_schedule<S, St: Copy, F: FnMut(&mut S, usize, St)>(
    state: &mut S,
    steps: &[Vec<St>],
    schedule: &[usize],
    mut apply: F,
) {
    let mut pc = vec![0usize; steps.len()];
    for &t in schedule {
        let op = steps[t][pc[t]];
        pc[t] += 1;
        apply(state, t, op);
    }
    for (t, &done) in pc.iter().enumerate() {
        assert!(
            done == steps[t].len(),
            "schedule did not drain thread {t}: {done}/{} steps",
            steps[t].len()
        );
    }
}

pub mod hist {
    //! Sub-operation models of the `mhg-obs` registry cells.

    use mhg_obs::{Histogram, HistogramSnapshot, Registry, HISTOGRAM_BUCKETS};

    /// One hardware-atomic step of [`mhg_obs::Histogram::record`], in the
    /// order `record` performs them. A concurrent reader can observe the
    /// state between any two of these; the design claim is that the *final*
    /// state (once all recorders finish) is interleaving-invariant.
    #[derive(Clone, Copy, Debug)]
    pub enum SubOp {
        /// `buckets[bucket_index(v)].fetch_add(1, Relaxed)`.
        Bucket(u64),
        /// `count.fetch_add(1, Relaxed)`.
        Count,
        /// `sum.fetch_add(v, Relaxed)` (wrapping, like the real cell).
        Sum(u64),
        /// `max.fetch_max(v, Relaxed)`.
        Max(u64),
    }

    /// Plain-integer model of a histogram's cells. Each [`SubOp`] applies
    /// as one indivisible step — exactly the atomicity the real `AtomicU64`
    /// RMW operations guarantee — so single-threaded schedule execution
    /// covers every cross-thread interleaving of those steps.
    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    pub struct HistModel {
        /// Per-bucket observation counts, indexed like the real histogram.
        pub buckets: Vec<u64>,
        /// Observation count cell.
        pub count: u64,
        /// Value sum cell (wrapping).
        pub sum: u64,
        /// Maximum cell.
        pub max: u64,
    }

    impl HistModel {
        /// A model with every bucket zeroed, shaped like the real histogram.
        pub fn new() -> Self {
            Self {
                buckets: vec![0; HISTOGRAM_BUCKETS],
                ..Self::default()
            }
        }

        /// Applies one atomic step.
        pub fn apply(&mut self, op: SubOp) {
            match op {
                SubOp::Bucket(v) => self.buckets[Histogram::bucket_index(v)] += 1,
                SubOp::Count => self.count += 1,
                SubOp::Sum(v) => self.sum = self.sum.wrapping_add(v),
                SubOp::Max(v) => self.max = self.max.max(v),
            }
        }

        /// The model state in the real snapshot's shape, for comparison
        /// against `Histogram::snapshot()` of a serial replay.
        pub fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot {
                count: self.count,
                sum: self.sum,
                max: self.max,
                buckets: self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &n)| (n > 0).then_some((i, n)))
                    .collect(),
            }
        }
    }

    /// Thread `t`'s step list for recording `values` into a histogram:
    /// the four sub-operations of each `record`, in program order.
    pub fn record_steps(values: &[u64]) -> Vec<SubOp> {
        values
            .iter()
            .flat_map(|&v| [SubOp::Bucket(v), SubOp::Count, SubOp::Sum(v), SubOp::Max(v)])
            .collect()
    }

    /// The serial-replay reference: every thread's values recorded into a
    /// real `mhg_obs::Histogram` (obtained through a [`Registry`], the only
    /// public constructor path), in thread order.
    pub fn serial_snapshot(per_thread_values: &[Vec<u64>]) -> HistogramSnapshot {
        let h = Registry::new().histogram("race-model");
        for values in per_thread_values {
            for &v in values {
                h.record(v);
            }
        }
        h.snapshot()
    }

    /// A **deliberately broken** counter whose increment is a non-atomic
    /// load-then-store pair. The harness must find schedules where
    /// increments are lost — proving it can detect real races, not just
    /// bless correct code.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    pub struct TornCounter {
        /// The shared cell.
        pub cell: u64,
        /// Per-thread temporaries holding the loaded value (index = thread).
        pub loaded: [u64; 3],
    }

    /// One step of the broken read-modify-write.
    #[derive(Clone, Copy, Debug)]
    pub enum TornOp {
        /// `loaded[t] = cell` (the read half).
        Load,
        /// `cell = loaded[t] + 1` (the write half).
        Store,
    }

    impl TornCounter {
        /// Applies thread `t`'s step.
        pub fn apply(&mut self, t: usize, op: TornOp) {
            match op {
                TornOp::Load => self.loaded[t] = self.cell,
                TornOp::Store => self.cell = self.loaded[t] + 1,
            }
        }
    }
}

pub mod reduce {
    //! Sub-operation models of the `mhg-par` scatter-add reduction
    //! (`par_partitions` + caller-side merge), mirroring
    //! `GradStore::accumulate_gather`.

    use super::Range;

    /// A scatter-add instance: `grad[r]` accumulates into `dense[indices[r]]`.
    #[derive(Debug, Clone)]
    pub struct Scatter {
        /// Destination row per input row.
        pub indices: Vec<usize>,
        /// One value per input row (single-column gradients keep the model
        /// small without losing the float-associativity structure).
        pub grad: Vec<f32>,
        /// Number of destination rows.
        pub span: usize,
    }

    impl Scatter {
        /// The serial replay: inputs folded in input order.
        pub fn serial(&self) -> Vec<f32> {
            let mut dense = vec![0.0f32; self.span];
            for (r, &idx) in self.indices.iter().enumerate() {
                dense[idx] += self.grad[r];
            }
            dense
        }

        /// Worker `w` of `workers`' partial under the **shipped contract**:
        /// workers own fixed *destination* ranges (`mhg_par::split_range`
        /// over the destination span) and scan all inputs in input order.
        pub fn dest_partial(&self, workers: usize, w: usize) -> Vec<(usize, f32)> {
            let range: Range<usize> = mhg_par::split_range(self.span, workers, w);
            let mut out: Vec<(usize, f32)> = Vec::new();
            for (r, &idx) in self.indices.iter().enumerate() {
                if range.contains(&idx) {
                    match out.iter_mut().find(|(d, _)| *d == idx) {
                        Some((_, v)) => *v += self.grad[r],
                        None => out.push((idx, self.grad[r])),
                    }
                }
            }
            out
        }

        /// Worker `w` of `workers`' partial under the **broken scheme** the
        /// contract exists to prevent: workers split the *input* rows, so
        /// one destination's sum is spread across partials and the merge
        /// order decides the float association.
        pub fn input_partial(&self, workers: usize, w: usize) -> Vec<(usize, f32)> {
            let range: Range<usize> = mhg_par::split_range(self.indices.len(), workers, w);
            let mut out: Vec<(usize, f32)> = Vec::new();
            for r in range {
                let idx = self.indices[r];
                match out.iter_mut().find(|(d, _)| *d == idx) {
                    Some((_, v)) => *v += self.grad[r],
                    None => out.push((idx, self.grad[r])),
                }
            }
            out
        }
    }

    /// Merges partials into a dense vector in the order given (each partial
    /// added entry by entry).
    pub fn merge(span: usize, partials: &[Vec<(usize, f32)>], order: &[usize]) -> Vec<f32> {
        let mut dense = vec![0.0f32; span];
        for &p in order {
            for &(idx, v) in &partials[p] {
                dense[idx] += v;
            }
        }
        dense
    }

    /// Exact bitwise equality of two float vectors (the workspace's
    /// determinism contract is byte-identical, not approximately equal).
    pub fn bits_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_counts_match_the_multinomial() {
        assert_eq!(num_schedules(&[1]), 1);
        assert_eq!(num_schedules(&[2, 2]), 6);
        assert_eq!(num_schedules(&[4, 4]), 70);
        assert_eq!(num_schedules(&[4, 4, 4]), 34_650);
        let mut seen = 0u64;
        for_each_schedule(&[2, 2, 1], |_| seen += 1);
        assert_eq!(seen, num_schedules(&[2, 2, 1]));
    }

    #[test]
    fn schedules_are_distinct_and_complete() {
        let mut all: Vec<Vec<usize>> = Vec::new();
        for_each_schedule(&[2, 1], |s| all.push(s.to_vec()));
        assert_eq!(all, vec![vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0],]);
    }

    #[test]
    fn run_schedule_drains_every_thread() {
        let steps = vec![vec![1u64, 2], vec![10u64]];
        let mut log = Vec::new();
        run_schedule(&mut log, &steps, &[1, 0, 0], |log, t, op| {
            log.push((t, op));
        });
        assert_eq!(log, vec![(1, 10), (0, 1), (0, 2)]);
    }
}
